"""Compatibility shim: enables `python setup.py develop` in offline
environments that lack the `wheel` package (PEP 517 editable installs need
it).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
