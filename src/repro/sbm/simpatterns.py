"""Simulation pattern store for simulation-guided resubstitution.

Simulation-Guided Boolean Resubstitution (Lee et al., arXiv:2007.02579)
replaces the BDD filters of the classical SBM engines with *expressive
simulation patterns*: candidate resubstitutions are proposed only when the
target and the divisors agree on every stored pattern, SAT validates the
survivors, and every counterexample a refuted proof produces becomes a new
pattern — the CEGAR loop that makes later proposals strictly harder to
fool.

The :class:`PatternStore` is that growing pattern set for one window:

* it is seeded **deterministically** from a config-carried seed, so a
  window worker stays a pure function of ``(sub-network, config)`` and the
  ``jobs=N == jobs=1`` bit-identity contract of :mod:`repro.parallel`
  holds;
* patterns are stored column-packed — one ``W x 64``-bit integer per
  input, bit *b* holding the input's value under pattern *b* — exactly the
  wide layout :func:`repro.aig.simprogram.simulate_wide` consumes, so all
  patterns simulate in a single compiled pass;
* :meth:`signatures` computes per-node signature words over the current
  pattern set, through the compiled :class:`~repro.aig.simprogram
  .SimProgram` on the hot path and through per-round interpreted
  :func:`~repro.aig.simulate.simulate_words` walks on the reference path
  (``repro.hotpath`` disabled) — bit-identical by construction;
* :meth:`add_pattern` appends a counterexample.  A counterexample from a
  refuted candidate necessarily differs from every stored pattern (the
  candidate agreed with the target on all of them), so no dedup pass is
  needed; growth is bounded by ``max_patterns``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro import hotpath
from repro.aig.aig import Aig
from repro.aig.simprogram import WORD_BITS, WORD_MASK, sim_program
from repro.aig.simulate import simulate_words
from repro.errors import AigError

#: Default seed of the random pattern prefix (any fixed value works; it is
#: part of the engine configuration so it reaches the cache key).
DEFAULT_SEED = 0x51328E5


class PatternStore:
    """A deterministic, growing set of simulation patterns over N inputs."""

    def __init__(self, num_inputs: int, num_words: int = 4,
                 max_patterns: int = 1024,
                 seed: int = DEFAULT_SEED) -> None:
        if num_inputs <= 0:
            raise AigError("PatternStore needs at least one input")
        if num_words <= 0:
            raise AigError("PatternStore needs at least one pattern word")
        self.num_inputs = num_inputs
        self.num_patterns = WORD_BITS * num_words
        self.max_patterns = max(max_patterns, self.num_patterns)
        rng = random.Random(seed)
        #: column-packed patterns: ``_words[i]`` bit *b* = input *i* under
        #: pattern *b* (the :func:`simulate_wide` wide-word layout)
        self._words: List[int] = [rng.getrandbits(self.num_patterns)
                                  for _ in range(num_inputs)]

    @property
    def width_words(self) -> int:
        """64-bit simulation rounds covering the current pattern count."""
        return (self.num_patterns + WORD_BITS - 1) // WORD_BITS

    @property
    def mask(self) -> int:
        """All-ones mask over the current pattern count."""
        return (1 << self.num_patterns) - 1

    @property
    def full(self) -> bool:
        """True when counterexample growth has reached ``max_patterns``."""
        return self.num_patterns >= self.max_patterns

    def pi_words(self) -> List[int]:
        """The packed per-input pattern words (copy)."""
        return list(self._words)

    def add_pattern(self, bits: Sequence[bool]) -> bool:
        """Append one pattern (e.g. a SAT counterexample); False when full."""
        if len(bits) != self.num_inputs:
            raise AigError(f"pattern has {len(bits)} bits, store has "
                           f"{self.num_inputs} inputs")
        if self.full:
            return False
        position = self.num_patterns
        for i, bit in enumerate(bits):
            if bit:
                self._words[i] |= 1 << position
        self.num_patterns += 1
        return True

    def signatures(self, aig: Aig) -> List[int]:
        """Node-indexed signature words of *aig* under the stored patterns.

        Entry *n* is node *n*'s output over all patterns (bit *b* =
        pattern *b*); dead/unsimulated slots are 0.  The hot path runs the
        compiled program once over the packed wide words; the reference
        path assembles the same integers from per-round interpreted
        simulations — callers observe identical values either way.
        """
        if aig.num_pis != self.num_inputs:
            raise AigError(f"network has {aig.num_pis} PIs, store has "
                           f"{self.num_inputs} inputs")
        mask = self.mask
        if hotpath.enabled():
            return sim_program(aig).run(self._words, mask)
        values = [0] * (aig.max_node + 1)
        for r in range(self.width_words):
            shift = WORD_BITS * r
            round_words = [(w >> shift) & WORD_MASK for w in self._words]
            round_values = simulate_words(aig, round_words)
            for node, word in round_values.items():
                values[node] |= word << shift
        return [v & mask for v in values]
