"""Optimization *moves* for the gradient engine (Section IV-A).

"We define AIG optimization moves, which are primitive transformations
applicable locally.  We consider the following moves: rewriting,
refactoring, resub, mspf resub and eliminate, simplify & kerneling.  All
moves other than rewriting are available in low and high effort modes,
trading runtime for QoR.  All moves have an associated cost, which depends
on their runtime complexity."

Every move takes the network and one partition window and returns its gain
(node saving, always ≥ 0 — unprofitable changes are reverted inside the
primitive engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.aig.aig import Aig
from repro.opt.refactor import refactor
from repro.opt.resub import resub
from repro.opt.rewrite import rewrite
from repro.partition.partitioner import Window
from repro.sbm import hetero_kernel
from repro.sbm import mspf as mspf_mod
from repro.sbm.config import KernelConfig, MspfConfig


@dataclass(frozen=True)
class Move:
    """A locally applicable transformation with an abstract runtime cost."""

    name: str
    cost: int
    apply: Callable[[Aig, Window], int]


def _rewrite_move(aig: Aig, window: Window) -> int:
    return rewrite(aig, node_filter=set(window.nodes))


def _refactor_low(aig: Aig, window: Window) -> int:
    return refactor(aig, max_leaves=8, node_filter=set(window.nodes))


def _refactor_high(aig: Aig, window: Window) -> int:
    return refactor(aig, max_leaves=12, node_filter=set(window.nodes))


def _resub_low(aig: Aig, window: Window) -> int:
    return resub(aig, max_leaves=8, max_inserted=1,
                 node_filter=set(window.nodes))


def _resub_high(aig: Aig, window: Window) -> int:
    return resub(aig, max_leaves=10, max_inserted=2, max_divisors=80,
                 node_filter=set(window.nodes))


def _mspf_low(aig: Aig, window: Window) -> int:
    stats = mspf_mod.MspfStats()
    config = MspfConfig(max_connectable_fanins=4)
    mspf_mod.optimize_partition(aig, window, config, stats)
    mspf_mod.publish_metrics(stats)
    return stats.gain


def _mspf_high(aig: Aig, window: Window) -> int:
    stats = mspf_mod.MspfStats()
    config = MspfConfig(max_connectable_fanins=12)
    mspf_mod.optimize_partition(aig, window, config, stats)
    mspf_mod.publish_metrics(stats)
    return stats.gain


def _kernel_low(aig: Aig, window: Window) -> int:
    stats = hetero_kernel.KernelStats()
    config = KernelConfig(eliminate_thresholds=(-1, 5, 50), kernel_rounds=8)
    hetero_kernel.optimize_partition(aig, window, config, stats)
    hetero_kernel.publish_metrics(stats)
    return stats.node_gain


def _kernel_high(aig: Aig, window: Window) -> int:
    stats = hetero_kernel.KernelStats()
    config = KernelConfig()
    hetero_kernel.optimize_partition(aig, window, config, stats)
    hetero_kernel.publish_metrics(stats)
    return stats.node_gain


#: The move set of the gradient engine, unit-cost moves first.
DEFAULT_MOVES: List[Move] = [
    Move("rewrite", 1, _rewrite_move),
    Move("resub_lo", 2, _resub_low),
    Move("refactor_lo", 2, _refactor_low),
    Move("kernel_lo", 4, _kernel_low),
    Move("mspf_lo", 4, _mspf_low),
    Move("resub_hi", 5, _resub_high),
    Move("refactor_hi", 5, _refactor_high),
    Move("kernel_hi", 8, _kernel_high),
    Move("mspf_hi", 8, _mspf_high),
]
