"""The Scalable Boolean Method (SBM) framework — the paper's contribution.

Four engines (Sections III and IV) plus the integrated Boolean resynthesis
flow (Section V-A):

* :func:`boolean_difference_pass` — resubstitution via ``f = ∂f/∂g ⊕ g``,
* :func:`gradient_optimize` — adaptive move-based AIG minimization,
* :func:`hetero_kernel_pass` — heterogeneous elimination for kerneling,
* :func:`mspf_pass` — MSPF don't-care optimization with BDDs,
* :func:`sbm_flow` — the full script combining them with the baseline.
"""

from repro.sbm.boolean_difference import (
    BooleanDifferenceStats,
    boolean_difference_pass,
)
from repro.sbm.config import (
    BooleanDifferenceConfig,
    FlowConfig,
    GradientConfig,
    KernelConfig,
    MspfConfig,
)
from repro.sbm.flow import FlowStats, StageRecord, sbm_flow
from repro.sbm.gradient import GradientStats, gradient_optimize
from repro.sbm.hetero_kernel import (
    KernelStats,
    hetero_kernel_pass,
    homogeneous_kernel_pass,
)
from repro.sbm.moves import DEFAULT_MOVES, Move
from repro.sbm.mspf import MspfStats, mspf_pass

__all__ = [
    "boolean_difference_pass", "BooleanDifferenceStats",
    "gradient_optimize", "GradientStats",
    "hetero_kernel_pass", "homogeneous_kernel_pass", "KernelStats",
    "mspf_pass", "MspfStats",
    "sbm_flow", "FlowStats", "StageRecord",
    "BooleanDifferenceConfig", "MspfConfig", "KernelConfig",
    "GradientConfig", "FlowConfig",
    "Move", "DEFAULT_MOVES",
]
