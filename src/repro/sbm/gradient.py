"""Gradient-based AIG optimization (Section IV-A).

The engine makes AIG optimization *adaptive* (it learns which moves succeed
on the current design and prioritizes them) and *diverse* (different move
types compete locally on each partition).  The mechanics follow the paper:

* best-result selection runs in a **waterfall**: per partition, moves are
  tried in priority order and the first successful one is kept ("the first
  successful move is picked, and all other moves are not tried ... a good
  tradeoff between runtime and QoR");
* the engine starts with **unit-cost moves** only; when the cheap moves hit
  a local minimum (gain = 0), **higher-cost moves are introduced**;
* move **success history** re-prioritizes the waterfall ("the most
  successful moves and their sequence are recorded ... to allow moves with
  high success likelihood ... to be tried with higher priority");
* a **cost budget** limits the total move cost (default 100); it is
  automatically extended while the **gain gradient** over the last ``k``
  iterations exceeds the threshold (defaults: k = 20, 3%), and the run
  terminates early when the gradient reaches 0 over the last ``k``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.aig.aig import Aig
from repro.partition.partitioner import PartitionConfig, Window, partition_network
from repro.sbm.config import GradientConfig
from repro.sbm.moves import DEFAULT_MOVES, Move


@dataclass
class GradientStats:
    """Counters and history reported by a gradient-engine run."""

    moves_tried: int = 0
    moves_succeeded: int = 0
    cost_spent: int = 0
    budget_extensions: int = 0
    total_gain: int = 0
    gain_history: List[int] = field(default_factory=list)
    move_success: Dict[str, int] = field(default_factory=dict)
    move_attempts: Dict[str, int] = field(default_factory=dict)
    terminated_early: bool = False

    def success_rate(self, name: str) -> float:
        """Observed success likelihood of a move on this design."""
        attempts = self.move_attempts.get(name, 0)
        if attempts == 0:
            return 0.5  # optimistic prior for untried moves
        return self.move_success.get(name, 0) / attempts


def gradient_optimize(aig: Aig, config: Optional[GradientConfig] = None,
                      moves: Optional[List[Move]] = None,
                      selection: str = "waterfall") -> GradientStats:
    """Run the gradient-based engine in place; returns its statistics.

    ``selection`` is ``"waterfall"`` (default; first successful move wins)
    or ``"parallel"`` (every admissible move is evaluated on a scratch copy
    and only the best is applied — better QoR, much slower; provided for the
    ablation experiment).
    """
    config = config or GradientConfig()
    moves = list(moves) if moves is not None else list(DEFAULT_MOVES)
    stats = GradientStats()
    budget = config.cost_budget
    max_unlocked_cost = 1  # start with unit-cost moves
    size_at_start = max(1, aig.num_ands)

    with obs.span("gradient_engine", kind="engine", selection=selection,
                  nodes_before=aig.num_ands) as engine_span:
        while stats.cost_spent < budget:
            partitions = _partitions(aig, config)
            if not partitions:
                break
            sweep_gain = 0
            with obs.span("sweep", kind="sweep", windows=len(partitions),
                          unlocked_cost=max_unlocked_cost) as sweep_span:
                for window in partitions:
                    if stats.cost_spent >= budget:
                        break
                    admissible = [m for m in moves
                                  if m.cost <= max_unlocked_cost]
                    # Adaptive priority: cheap first, then observed success
                    # rate.
                    admissible.sort(
                        key=lambda m: (m.cost, -stats.success_rate(m.name)))
                    if selection == "waterfall":
                        gain = _waterfall(aig, window, admissible, stats)
                    else:
                        gain = _parallel(aig, window, admissible, stats)
                    sweep_gain += gain
                    stats.gain_history.append(gain)
                    # Gradient bookkeeping over the last k move applications.
                    k = config.window_k
                    if len(stats.gain_history) >= k:
                        recent = sum(stats.gain_history[-k:])
                        gradient = recent / size_at_start
                        if gradient == 0:
                            stats.terminated_early = True
                            sweep_span.set("gain", sweep_gain)
                            _publish_gradient(engine_span, stats, aig,
                                              size_at_start, budget)
                            obs.metrics().inc("gradient.early_terminations")
                            return stats
                        if (gradient > config.min_gain_gradient
                                and stats.cost_spent > budget - 10):
                            budget += config.budget_extension
                            stats.budget_extensions += 1
                            obs.metrics().inc("gradient.budget_extensions")
                sweep_span.set("gain", sweep_gain)
                sweep_span.set("cost_spent", stats.cost_spent)
            if sweep_gain == 0:
                if max_unlocked_cost >= max(m.cost for m in moves):
                    break  # full local minimum
                # Local minimum with the current move set: unlock costlier
                # moves.
                max_unlocked_cost = min(m.cost for m in moves
                                        if m.cost > max_unlocked_cost)
                obs.metrics().inc("gradient.cost_unlocks")
            stats.total_gain = size_at_start - aig.num_ands
        stats.total_gain = size_at_start - aig.num_ands
        _publish_gradient(engine_span, stats, aig, size_at_start, budget)
    return stats


def _publish_gradient(engine_span, stats: GradientStats, aig: Aig,
                      size_at_start: int, budget: int) -> None:
    """Engine-run summary: span attributes + registry counters."""
    engine_span.set("nodes_after", aig.num_ands)
    engine_span.set("cost_spent", stats.cost_spent)
    engine_span.set("total_gain", size_at_start - aig.num_ands)
    registry = obs.metrics()
    registry.inc("gradient.cost_spent", stats.cost_spent)
    registry.set_gauge("gradient.final_budget", budget)


def _waterfall(aig: Aig, window: Window, admissible: List[Move],
               stats: GradientStats) -> int:
    """Try moves in order; keep the first that improves the partition."""
    registry = obs.metrics()
    with obs.span("window", kind="window",
                  size=len(window.nodes)) as window_span:
        for move in admissible:
            if all(aig.is_dead(n) for n in window.nodes):
                return 0
            stats.moves_tried += 1
            stats.cost_spent += move.cost
            stats.move_attempts[move.name] = (
                stats.move_attempts.get(move.name, 0) + 1)
            registry.inc("gradient.moves_tried", move=move.name)
            t0 = time.perf_counter()
            gain = move.apply(aig, window)
            if gain > 0:
                stats.moves_succeeded += 1
                stats.move_success[move.name] = (
                    stats.move_success.get(move.name, 0) + 1)
                stats.total_gain += 0  # recomputed at sweep end
                registry.inc("gradient.moves_succeeded", move=move.name)
                registry.inc("gradient.gain", gain, move=move.name)
                obs.tracer().record("move", kind="move",
                                    wall_s=time.perf_counter() - t0,
                                    move=move.name, cost=move.cost,
                                    gain=gain)
                window_span.set("winner", move.name)
                window_span.set("gain", gain)
                return gain
    return 0


def _parallel(aig: Aig, window: Window, admissible: List[Move],
              stats: GradientStats) -> int:
    """Evaluate every move on a scratch copy; apply the best on the network.

    This is the paper's parallel best-result selection; it "may overlook"
    nothing but costs one full-network clone per move, so it is only
    practical on small networks (the ablation uses it there).
    """
    registry = obs.metrics()
    best_move = None
    best_gain = 0
    for move in admissible:
        stats.moves_tried += 1
        stats.cost_spent += move.cost
        registry.inc("gradient.moves_tried", move=move.name)
        stats.move_attempts[move.name] = stats.move_attempts.get(move.name, 0) + 1
        scratch, mapping = aig.cleanup_with_map()
        from repro.aig.aig import lit_node
        remapped_nodes = [lit_node(mapping[n]) for n in window.nodes
                          if n in mapping and not aig.is_dead(n)]
        scratch_window = Window(nodes=remapped_nodes,
                                leaves=[lit_node(mapping[l]) for l in window.leaves
                                        if l in mapping],
                                roots=[lit_node(mapping[r]) for r in window.roots
                                       if r in mapping])
        gain = move.apply(scratch, scratch_window)
        if gain > best_gain:
            best_gain = gain
            best_move = move
    if best_move is None:
        return 0
    gain = best_move.apply(aig, window)
    if gain > 0:
        stats.moves_succeeded += 1
        stats.move_success[best_move.name] = (
            stats.move_success.get(best_move.name, 0) + 1)
        registry.inc("gradient.moves_succeeded", move=best_move.name)
        registry.inc("gradient.gain", gain, move=best_move.name)
    return gain


def _partitions(aig: Aig, config: GradientConfig) -> List[Window]:
    pc = config.partition or PartitionConfig(max_levels=16, max_size=300,
                                             max_leaves=30)
    return partition_network(aig, pc)
