"""Simulation-guided Boolean resubstitution (the fifth SBM engine).

The paper's four Boolean engines all filter candidates with BDDs, which
bail out on the large arithmetic EPFL benchmarks (log2, mult, div,
hypotenuse).  Simulation-Guided Boolean Resubstitution (Lee et al.,
arXiv:2007.02579) is the scalable alternative this engine implements:

1. every node carries a **simulation signature** over a growing pattern
   set (:class:`repro.sbm.simpatterns.PatternStore`) — seeded random
   patterns plus every counterexample earlier proofs produced;
2. resubstitution candidates are proposed by **signature matching** only:
   constants (0 divisors), single wires (1 divisor, possibly inverted),
   and two-divisor AND/NAND/XOR/XNOR gates whose signature reproduces the
   target's — no BDDs anywhere;
3. each surviving candidate is **validated by SAT** on the window's
   incremental Tseitin encoding (:class:`repro.sat.cnf.AigCnf`) under a
   per-proof conflict budget;
4. a refuted proof's counterexample is fed back into the pattern store
   (the CEGAR loop): the refuted candidate can never be proposed again,
   and all later filtering is strictly stronger.

The engine runs under the :class:`repro.parallel.scheduler
.PartitionScheduler` like its four siblings: partitions are snapshot into
picklable sub-networks, each window worker is a pure function of
``(sub-network, config)`` (the pattern seed travels in the config), and
results merge in deterministic partition order — ``jobs=N`` is
bit-identical to ``jobs=1``.  Signatures use the compiled simulation
program on the hot path and the interpreted reference walk when
:mod:`repro.hotpath` is disabled, with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.aig.aig import Aig, lit, lit_notcond
from repro.opt.shared import try_replace
from repro.parallel.scheduler import register_engine
from repro.sat.cnf import AigCnf
from repro.sbm.config import SimresubConfig
from repro.sbm.simpatterns import PatternStore

#: AIG node cost of a two-input XOR (matches the Boolean-difference
#: engine's default ``xor_cost``): an XOR candidate must reclaim more.
_XOR_COST = 3

#: candidate tuples: ("const", literal) | ("wire", literal)
#: | ("and"/"xor", lit_a, lit_b, output_complemented)
Candidate = Tuple[Any, ...]


@dataclass
class SimresubStats:
    """Counters reported by one simulation-guided resubstitution pass."""

    partitions: int = 0
    nodes_processed: int = 0
    candidates_proposed: int = 0
    candidates_validated: int = 0
    candidates_refuted: int = 0
    sat_unknown: int = 0
    cex_patterns: int = 0
    rewrites: int = 0
    gain: int = 0


def publish_metrics(stats: SimresubStats) -> None:
    """Push one pass's counters into the active metrics registry.

    Called from the worker entry point against the worker's local
    registry (shipped back in the window payload), so ``simresub.*``
    counters aggregate every execution of the run.
    """
    registry = obs.metrics()
    if not registry.enabled:
        return
    # The CEGAR loop's health indicators are reported even at zero —
    # "no candidate was refuted / no pattern was learned" is itself the
    # answer the report exists to give.
    registry.inc("simresub.candidates_proposed", stats.candidates_proposed)
    registry.inc("simresub.candidates_validated", stats.candidates_validated)
    registry.inc("simresub.candidates_refuted", stats.candidates_refuted)
    registry.inc("simresub.cex_patterns", stats.cex_patterns)
    for name, value in (("nodes_processed", stats.nodes_processed),
                        ("sat_unknown", stats.sat_unknown),
                        ("rewrites", stats.rewrites),
                        ("gain", stats.gain)):
        if value:
            registry.inc(f"simresub.{name}", value)


def simresub_pass(aig: Aig, config: Optional[SimresubConfig] = None,
                  jobs: int = 1, window_timeout_s: Optional[float] = None,
                  chaos: Any = None, chaos_scope: str = "",
                  pool: Any = None) -> SimresubStats:
    """Run simulation-guided resubstitution over every partition; edits in
    place.

    Partitions are snapshot up front and optimized independently — inline
    and in partition order when ``jobs=1``, over a process pool when
    ``jobs>1`` — then spliced back in deterministic partition order, so
    the result is identical for every ``jobs`` value.  Unlike MSPF, no
    observability boundary is involved: every accepted rewrite preserves
    the replaced node's function exactly (SAT-proven over the window
    inputs), so window extraction never changes what is provable.
    """
    config = config or SimresubConfig()
    from repro.parallel.scheduler import run_partitioned_pass
    report = run_partitioned_pass(aig, "simresub", config, config.partition,
                                  jobs=jobs,
                                  window_timeout_s=window_timeout_s,
                                  chaos=chaos, chaos_scope=chaos_scope,
                                  pool=pool)
    stats = SimresubStats(partitions=report.num_windows)
    for record in report.records:
        payload = record.payload
        stats.nodes_processed += payload.get("nodes_processed", 0)
        stats.candidates_proposed += payload.get("candidates_proposed", 0)
        stats.candidates_validated += payload.get("candidates_validated", 0)
        stats.candidates_refuted += payload.get("candidates_refuted", 0)
        stats.sat_unknown += payload.get("sat_unknown", 0)
        stats.cex_patterns += payload.get("cex_patterns", 0)
        if record.applied:
            stats.rewrites += payload.get("rewrites", 0)
            stats.gain += record.gain
    return stats


def optimize_subaig(sub: Aig, config: Optional[SimresubConfig] = None
                    ) -> Tuple[bool, Optional[Aig], Dict[str, Any]]:
    """Worker entry point: CEGAR resubstitution on one extracted sub-AIG.

    Pure function of ``(sub, config)``: the pattern store is seeded from
    ``config.seed``, so two workers given the same window compute the same
    result.  Returns ``(changed, optimized sub-AIG or None, payload)``.
    """
    config = config or SimresubConfig()
    stats = SimresubStats()
    if sub.num_pis and sub.num_ands:
        optimize_network(sub, config, stats)
    payload = {
        "nodes_processed": stats.nodes_processed,
        "candidates_proposed": stats.candidates_proposed,
        "candidates_validated": stats.candidates_validated,
        "candidates_refuted": stats.candidates_refuted,
        "sat_unknown": stats.sat_unknown,
        "cex_patterns": stats.cex_patterns,
        "rewrites": stats.rewrites,
        "gain": stats.gain,
    }
    publish_metrics(stats)
    changed = stats.rewrites > 0
    return changed, (sub.cleanup() if changed else None), payload


class _SigState:
    """Current signatures + topological order of the window network.

    Refreshed after every accepted rewrite (node set changed) and every
    learned counterexample pattern (signature width changed).
    """

    def __init__(self, aig: Aig, store: PatternStore) -> None:
        self.aig = aig
        self.store = store
        self.values: List[int] = []
        self.order: List[int] = []
        self.position: Dict[int, int] = {}
        self.refresh()

    def refresh(self) -> None:
        self.values = self.store.signatures(self.aig)
        self.order = self.aig.topological_order()
        self.position = {n: i for i, n in enumerate(self.order)}


def optimize_network(aig: Aig, config: SimresubConfig,
                     stats: SimresubStats) -> None:
    """CEGAR resubstitution over one (sub-)network, edited in place."""
    store = PatternStore(aig.num_pis, num_words=config.pattern_words,
                         max_patterns=config.max_patterns, seed=config.seed)
    cnf = AigCnf(aig)
    sig = _SigState(aig, store)
    # Snapshot the target list: nodes created by rewrites are not
    # re-targeted within this pass (they will be next iteration).
    for n in list(sig.order):
        if aig.is_dead(n) or not aig.is_and(n):
            continue
        stats.nodes_processed += 1
        _resub_node(aig, n, sig, store, cnf, config, stats)


def _divisors(aig: Aig, sig: _SigState, n: int,
              max_divisors: int) -> List[int]:
    """Divisor nodes for target *n*: inputs plus topologically earlier
    gates — never in *n*'s transitive fanout, so no cycle is possible.
    Capped to the *nearest* ``max_divisors`` predecessors."""
    pos_n = sig.position[n]
    divs = [p for p in aig.pis()]
    divs.extend(m for m in sig.order[:pos_n] if not aig.is_dead(m))
    if len(divs) > max_divisors:
        divs = divs[-max_divisors:]
    return divs


def iter_candidates(aig: Aig, n: int, divisors: Sequence[int],
                    values: Sequence[int], mask: int, mffc: int,
                    config: SimresubConfig) -> Iterator[Candidate]:
    """Yield signature-matching resub candidates for *n*, best first.

    Every candidate agrees with *n* on **all** stored patterns; because
    the patterns are a subset of the input space, any truly equivalent
    resubstitution within the divisor/pair budgets is always yielded —
    signature filtering can produce false positives (killed later by
    SAT), never false negatives.
    """
    sn = values[n] & mask
    # 0 divisors: constants (always profitable: the whole MFFC goes).
    if sn == 0:
        yield ("const", 0)
    elif sn == mask:
        yield ("const", 1)
    # 1 divisor: a wire, possibly inverted.
    sigs = [values[d] & mask for d in divisors]
    for d, sd in zip(divisors, sigs):
        if sd == sn:
            yield ("wire", lit(d))
        elif sd ^ mask == sn:
            yield ("wire", lit(d, True))
    # 2 divisors: one new AND/NAND/XOR/XNOR gate.  Gated on the MFFC so a
    # provable candidate that cannot possibly yield gain is never proposed.
    if mffc < 2:
        return
    checks = 0
    want_xor = mffc > _XOR_COST
    for i in range(len(divisors)):
        si = sigs[i]
        for j in range(i + 1, len(divisors)):
            checks += 1
            if checks > config.max_pair_checks:
                return
            sj = sigs[j]
            for ca in (False, True):
                va = si ^ mask if ca else si
                for cb in (False, True):
                    vb = sj ^ mask if cb else sj
                    t = va & vb
                    if t == sn:
                        yield ("and", lit(divisors[i], ca),
                               lit(divisors[j], cb), False)
                    elif t ^ mask == sn:
                        yield ("and", lit(divisors[i], ca),
                               lit(divisors[j], cb), True)
            if want_xor:
                x = si ^ sj
                if x == sn:
                    yield ("xor", lit(divisors[i]), lit(divisors[j]), False)
                elif x ^ mask == sn:
                    yield ("xor", lit(divisors[i]), lit(divisors[j]), True)


def _validate(cnf: AigCnf, n: int, cand: Candidate, conflict_limit: int
              ) -> Tuple[Optional[bool], Optional[List[bool]]]:
    """SAT-prove ``node n == candidate function`` on the window inputs.

    Returns ``(True, None)`` proven, ``(False, counterexample)`` refuted,
    ``(None, None)`` when the conflict budget ran out (candidate is then
    simply skipped — never trusted).
    """
    solver = cnf.solver
    sn = cnf.sat_literal(lit(n))
    kind = cand[0]
    if kind == "const":
        # n == const c  <=>  SAT(n != c) is UNSAT: one assumption query.
        probe = sn if cand[1] == 0 else -sn
        res = solver.solve_limited((probe,), conflict_limit)
        if res is None:
            return None, None
        if res:
            return False, cnf.extract_pi_assignment()
        return True, None
    if kind == "wire":
        g = cnf.sat_literal(cand[1])
    else:
        # Encode the tentative gate as a fresh definitional variable —
        # never as AIG nodes, so a refuted candidate leaves no garbage
        # logic (and no stale CNF) behind.
        a = cnf.sat_literal(cand[1])
        b = cnf.sat_literal(cand[2])
        t = solver.new_var()
        if kind == "and":
            solver.add_clause([-t, a])
            solver.add_clause([-t, b])
            solver.add_clause([t, -a, -b])
        else:  # xor
            solver.add_clause([-t, a, b])
            solver.add_clause([-t, -a, -b])
            solver.add_clause([t, a, -b])
            solver.add_clause([t, -a, b])
        g = -t if cand[3] else t
    for pa, pb in ((g, -sn), (-g, sn)):
        res = solver.solve_limited((pa, pb), conflict_limit)
        if res is None:
            return None, None
        if res:
            return False, cnf.extract_pi_assignment()
    return True, None


def _builder(aig: Aig, cand: Candidate):
    """Zero-argument replacement builder for :func:`try_replace`."""
    kind = cand[0]
    if kind in ("const", "wire"):
        return lambda: cand[1]
    if kind == "and":
        return lambda: lit_notcond(aig.add_and(cand[1], cand[2]), cand[3])
    return lambda: lit_notcond(aig.add_xor(cand[1], cand[2]), cand[3])


def _resub_node(aig: Aig, n: int, sig: _SigState, store: PatternStore,
                cnf: AigCnf, config: SimresubConfig,
                stats: SimresubStats) -> int:
    """The per-node CEGAR loop; returns the achieved gain (0 = none).

    Terminates because every turn either (a) returns, (b) learns a fresh
    pattern (bounded by ``store.max_patterns``; a refuted candidate then
    stops signature-matching, so it is never re-proposed), or (c) adds
    the candidate to *tried* (bounded by the finite candidate space).
    """
    tried: Set[Candidate] = set()
    while True:
        if aig.is_dead(n) or not aig.is_and(n):
            return 0
        divisors = _divisors(aig, sig, n, config.max_divisors)
        mffc = aig.mffc_size(n)
        cand = next(
            (c for c in iter_candidates(aig, n, divisors, sig.values,
                                        store.mask, mffc, config)
             if c not in tried), None)
        if cand is None:
            return 0
        stats.candidates_proposed += 1
        verdict, cex = _validate(cnf, n, cand, config.sat_conflict_budget)
        if verdict is None:
            stats.sat_unknown += 1
            tried.add(cand)
            continue
        if not verdict:
            stats.candidates_refuted += 1
            assert cex is not None
            if not store.add_pattern(cex):
                # Pattern budget exhausted: without a growing filter the
                # refuted candidate would be re-proposed forever.
                return 0
            stats.cex_patterns += 1
            sig.refresh()
            continue
        stats.candidates_validated += 1
        gain = try_replace(aig, n, _builder(aig, cand), min_gain=1)
        if gain:
            stats.rewrites += 1
            stats.gain += gain
            sig.refresh()
            return gain
        tried.add(cand)


register_engine("simresub", optimize_subaig)
