"""The SBM Boolean resynthesis flow (Section V-A), hardened by ``repro.guard``.

"We created a Boolean resynthesis script which runs the following
optimizations:

* AIG optimization: ... state-of-the-art methods [1] and our gradient-based
  AIG minimization,
* heterogeneous elimination for kernel extraction, applied on partitioned
  networks of medium-large sizes,
* enhanced MSPF computation, using partitions of medium size and BDDs,
* collapse and Boolean decomposition, applied on reconvergent MFFC of the
  logic network,
* Boolean difference-based optimization to unveil hard to find optimization
  and escape local minima,
* SAT-based sweeping and redundancy removal as in [9].

The optimization flow is iterated twice, with different efforts.  Further,
after each transformation, the logic network is translated into an AIG."

Our networks are always AIGs, so the "translate to AIG" step becomes a
:meth:`~repro.aig.Aig.cleanup` compaction after every stage; the "collapse
and Boolean decomposition on reconvergent MFFCs" stage maps to the
wide-cut refactoring pass.

On top of the paper's engines, the flow runs **simulation-guided
resubstitution** (:mod:`repro.sbm.simresub`, after MSPF) — the
BDD-free fifth engine whose signature-filter/SAT-validate CEGAR loop
stays effective on the large arithmetic benchmarks where the BDD-filtered
engines bail out; disable with ``FlowConfig.enable_simresub = False``.

Execution model
---------------
The iteration body is a **data-driven stage table** (:func:`_stage_specs`)
run through a guarded executor rather than straight-line code.  Each stage
gets a global index (``iteration * stages_per_iteration + position``) —
the cursor that budgets, checkpoints, resume, and fault injection all key
on:

* **budgets** — a :class:`repro.guard.budget.DeadlineManager` splits
  ``FlowConfig.flow_timeout_s`` across the remaining stages and may run a
  stage at reduced effort (fewer kernel thresholds, smaller MSPF
  partitions, halved budgets) or skip it outright; every downgrade is
  recorded in the metrics and the run report.
* **equivalence guard** — with ``verify_each_step``, every stage result
  passes the :class:`repro.guard.stage_guard.StageGuard` ladder
  (256-pattern random simulation, then SAT CEC) and a miscomparing stage
  is rolled back to the last verified network, counterexample attached.
* **checkpoints** — with ``checkpoint_dir``, the current/best networks and
  flow state are snapshotted atomically after every stage;
  ``sbm_flow(..., resume_from=dir)`` skips completed stages.
* **chaos** — a :class:`repro.guard.chaos.FaultPlan` injects
  deterministic faults into the partition scheduler (via per-stage site
  scopes) and the stage runner itself.

With none of those knobs set, the executor is behaviourally identical to
the historical straight-line flow.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.aig.aig import Aig, lit_not
from repro.errors import CheckpointError
from repro.guard.budget import FULL, REDUCED, SKIP, DeadlineManager
from repro.guard.chaos import ChaosInterrupt
from repro.guard.checkpoint import (
    CheckpointState,
    CheckpointStore,
    ResumePoint,
    load_checkpoint,
)
from repro.guard.stage_guard import GuardReport, StageGuard
from repro.opt.balance import balance
from repro.opt.refactor import refactor
from repro.opt.scripts import compress2rs_step
from repro.partition.partitioner import PartitionConfig
from repro.sat.redundancy import remove_redundancies
from repro.sat.sweep import sat_sweep
from repro.sbm.boolean_difference import boolean_difference_pass
from repro.sbm.config import FlowConfig, GradientConfig
from repro.sbm.gradient import gradient_optimize
from repro.sbm.hetero_kernel import hetero_kernel_pass
from repro.sbm.mspf import mspf_pass
from repro.sbm.simresub import simresub_pass


@dataclass
class StageRecord:
    """One flow-stage checkpoint: name, resulting size, elapsed seconds."""

    name: str
    size: int
    elapsed_s: float = 0.0


@dataclass
class FlowStats:
    """Size and timing after every stage of the flow."""

    records: List[StageRecord] = field(default_factory=list)
    runtime_s: float = 0.0
    #: what the hardened execution layer did (degradations, rollbacks,
    #: checkpoints, injected faults); never None after :func:`sbm_flow`
    guard: Optional[GuardReport] = None
    #: pass-ordering search summary (``repro.orchestrate``): per-round
    #: candidates, the chosen ordering, and stage-memo counters; ``None``
    #: for the classic fixed waterfall
    orchestrate: Optional[Dict[str, Any]] = None

    def record(self, stage: str, size: int, elapsed_s: float = 0.0) -> None:
        """Append a stage checkpoint (resulting size, elapsed seconds)."""
        self.records.append(StageRecord(stage, size, elapsed_s))

    @property
    def stages(self) -> List[Tuple[str, int]]:
        """Deprecated ``(name, size)`` tuple view; use :attr:`records`."""
        warnings.warn(
            "FlowStats.stages is deprecated; use FlowStats.records "
            "(StageRecord objects with per-stage elapsed_s)",
            DeprecationWarning, stacklevel=2)
        return [(r.name, r.size) for r in self.records]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation for the run report."""
        doc: Dict[str, Any] = {
            "runtime_s": self.runtime_s,
            "stages": [{"name": r.name, "size": r.size,
                        "elapsed_s": r.elapsed_s} for r in self.records],
        }
        if self.orchestrate is not None:
            doc["orchestrate"] = self.orchestrate
        return doc


# -- stage table ---------------------------------------------------------------

@dataclass(frozen=True)
class _StageSpec:
    """One row of the iteration's stage table."""

    name: str
    run: Callable[[Aig, "_StageCtx"], Aig]
    #: what the depth guard (and the stage span) measures against:
    #: "raw" = the network object itself, "cleanup" = a compacted copy,
    #: "none" = no snapshot (stage is exempt from the depth guard)
    snapshot: str = "cleanup"
    depth_guard: bool = True
    #: exempt from the degradation ladder (cheap normalization stages)
    vital: bool = False


@dataclass
class _StageCtx:
    """Everything a stage runner may consult."""

    config: FlowConfig
    effort: int          #: 1-based iteration number (the paper's effort)
    level: int           #: degradation rung: FULL or REDUCED
    span: Any            #: the stage's open observability span
    chaos_scope: str     #: fault-plan site prefix, ``it<effort>:<stage>``


def _reduced_partition(p: PartitionConfig) -> PartitionConfig:
    """Half-size partitions: the degradation ladder's cheaper windows."""
    return PartitionConfig(max_levels=max(4, p.max_levels // 2),
                           max_size=max(32, p.max_size // 2),
                           max_leaves=max(8, p.max_leaves // 2))


def _run_aig_script(aig: Aig, ctx: _StageCtx) -> Aig:
    if ctx.level == REDUCED:
        # One balance instead of the full b;rs;rw;rf;rs;rwz;rfz script.
        return balance(aig)
    return compress2rs_step(aig)


def _run_gradient(aig: Aig, ctx: _StageCtx) -> Aig:
    g = ctx.config.gradient
    budget = g.cost_budget * ctx.effort
    extension = g.budget_extension
    if ctx.level == REDUCED:
        budget = max(1, budget // 2)
        extension = 0
    gradient_optimize(aig, GradientConfig(
        cost_budget=budget,
        window_k=g.window_k,
        min_gain_gradient=g.min_gain_gradient,
        budget_extension=extension,
        partition=g.partition))
    return aig.cleanup()


def _run_kernel(aig: Aig, ctx: _StageCtx) -> Aig:
    cfg = ctx.config.kernel
    if ctx.level == REDUCED:
        thresholds = cfg.eliminate_thresholds[
            :max(2, len(cfg.eliminate_thresholds) // 2)]
        cfg = dataclasses.replace(
            cfg, eliminate_thresholds=thresholds,
            kernel_rounds=max(1, cfg.kernel_rounds // 2),
            partition=_reduced_partition(cfg.partition))
    hetero_kernel_pass(aig, cfg, jobs=ctx.config.jobs,
                       window_timeout_s=ctx.config.window_timeout_s,
                       chaos=ctx.config.chaos, chaos_scope=ctx.chaos_scope,
                       pool=ctx.config.pool)
    return aig.cleanup()


def _run_mspf(aig: Aig, ctx: _StageCtx) -> Aig:
    cfg = ctx.config.mspf
    if ctx.level == REDUCED:
        cfg = dataclasses.replace(
            cfg, bdd_node_limit=max(10_000, cfg.bdd_node_limit // 4),
            partition=_reduced_partition(cfg.partition))
    mspf_pass(aig, cfg, jobs=ctx.config.jobs,
              window_timeout_s=ctx.config.window_timeout_s,
              chaos=ctx.config.chaos, chaos_scope=ctx.chaos_scope,
              pool=ctx.config.pool)
    return aig.cleanup()


def _run_simresub(aig: Aig, ctx: _StageCtx) -> Aig:
    cfg = ctx.config.simresub
    if ctx.level == REDUCED:
        cfg = dataclasses.replace(
            cfg, pattern_words=max(1, cfg.pattern_words // 2),
            max_divisors=max(8, cfg.max_divisors // 2),
            max_pair_checks=max(50, cfg.max_pair_checks // 4),
            sat_conflict_budget=max(200, cfg.sat_conflict_budget // 4),
            partition=_reduced_partition(cfg.partition))
    simresub_pass(aig, cfg, jobs=ctx.config.jobs,
                  window_timeout_s=ctx.config.window_timeout_s,
                  chaos=ctx.config.chaos, chaos_scope=ctx.chaos_scope,
                  pool=ctx.config.pool)
    return aig.cleanup()


def _run_collapse_decomp(aig: Aig, ctx: _StageCtx) -> Aig:
    max_leaves = 8 if ctx.level == REDUCED else 10 + 2 * ctx.effort
    refactor(aig, max_leaves=max_leaves, min_gain=1)
    return aig.cleanup()


def _run_boolean_diff(aig: Aig, ctx: _StageCtx) -> Aig:
    cfg = ctx.config.boolean_difference
    if ctx.level == REDUCED:
        cfg = dataclasses.replace(
            cfg,
            max_pairs_per_node=max(4, cfg.max_pairs_per_node // 4),
            max_pairs_per_partition=max(
                100, cfg.max_pairs_per_partition // 4),
            bdd_node_limit=max(10_000, cfg.bdd_node_limit // 4),
            partition=_reduced_partition(cfg.partition))
    boolean_difference_pass(aig, cfg, jobs=ctx.config.jobs,
                            window_timeout_s=ctx.config.window_timeout_s,
                            chaos=ctx.config.chaos,
                            chaos_scope=ctx.chaos_scope,
                            pool=ctx.config.pool)
    return aig.cleanup()


def _run_sat_sweep(aig: Aig, ctx: _StageCtx) -> Aig:
    max_proofs = 500 if ctx.level == REDUCED else 2000
    merges = sat_sweep(aig, max_proofs=max_proofs)
    aig = aig.cleanup()
    ctx.span.set("merges", merges)
    obs.metrics().inc("sat_sweep.merges", merges)
    return aig


def _run_redundancy(aig: Aig, ctx: _StageCtx) -> Aig:
    max_checks = 50 if ctx.level == REDUCED else 200
    removed = remove_redundancies(aig, max_checks=max_checks)
    aig = aig.cleanup()
    ctx.span.set("removed", removed)
    obs.metrics().inc("redundancy.removed", removed)
    return aig


def _run_balance(aig: Aig, ctx: _StageCtx) -> Aig:
    return balance(aig)


def _stage_specs(config: FlowConfig) -> List[_StageSpec]:
    """The iteration's stage table for *config* (9 stages by default)."""
    specs = [
        _StageSpec("aig_script", _run_aig_script, snapshot="raw"),
        _StageSpec("gradient", _run_gradient),
        _StageSpec("kernel", _run_kernel),
        _StageSpec("mspf", _run_mspf),
    ]
    if config.enable_simresub:
        specs.append(_StageSpec("simresub", _run_simresub))
    specs.extend([
        _StageSpec("collapse_decomp", _run_collapse_decomp),
        _StageSpec("boolean_diff", _run_boolean_diff),
    ])
    if config.enable_sat_sweep:
        specs.append(_StageSpec("sat_sweep", _run_sat_sweep,
                                snapshot="none", depth_guard=False))
    if config.enable_redundancy_removal:
        specs.append(_StageSpec("redundancy", _run_redundancy,
                                snapshot="none", depth_guard=False))
    specs.append(_StageSpec("balance", _run_balance, snapshot="none",
                            depth_guard=False, vital=True))
    return specs


# -- guarded stage execution ---------------------------------------------------

class _StageRunner:
    """Runs one stage under budget, depth, chaos, and equivalence guards."""

    def __init__(self, config: FlowConfig, stats: FlowStats,
                 report: GuardReport, deadline: DeadlineManager,
                 guard: Optional[StageGuard],
                 depth_limit: Optional[int],
                 total_stages: int = 0) -> None:
        self.config = config
        self.stats = stats
        self.report = report
        self.deadline = deadline
        self.guard = guard
        self.depth_limit = depth_limit
        self.total_stages = total_stages

    def run_stage(self, aig: Aig, spec: _StageSpec, iteration: int,
                  stage_index: int) -> Aig:
        """Execute *spec* on *aig*; returns the (possibly rolled-back) result."""
        effort = iteration + 1
        plan = self.deadline.plan(spec.name)
        level = FULL if spec.vital else plan.level
        bus = obs.live_bus()
        if bus.enabled:
            bus.emit("stage_start", stage=spec.name, effort=effort,
                     index=stage_index, total=self.total_stages)
        if level == SKIP:
            self.stats.record(f"{spec.name}:skipped[{effort}]", aig.num_ands)
            self.report.add("skipped", spec.name, iteration,
                            remaining_s=plan.remaining_s)
            obs.metrics().inc("guard.stage_skipped", stage=spec.name)
            self.deadline.finish(spec.name)
            if bus.enabled:
                bus.emit("stage_end", stage=spec.name, effort=effort,
                         index=stage_index, total=self.total_stages,
                         nodes=aig.num_ands, level="skipped")
            return aig
        if level == REDUCED:
            self.report.add("degraded", spec.name, iteration,
                            remaining_s=plan.remaining_s,
                            share_s=plan.share_s)
            obs.metrics().inc("guard.stage_degraded", stage=spec.name)
        t0 = time.perf_counter()
        if spec.snapshot == "cleanup":
            before = aig.cleanup()
        elif spec.snapshot == "raw":
            before = aig
        else:
            before = None
        nodes_before = (before if before is not None else aig).num_ands
        with obs.span(spec.name, kind="stage", effort=effort,
                      nodes_before=nodes_before) as span:
            ctx = _StageCtx(config=self.config, effort=effort, level=level,
                            span=span,
                            chaos_scope=f"it{effort}:{spec.name}")
            result = spec.run(aig, ctx)
            if spec.depth_guard and before is not None:
                result = self._depth_guard(result, before, spec.name, effort)
            result = self._chaos_stage_fault(result, spec.name, stage_index)
            result = self._equivalence_guard(result, spec.name, iteration,
                                             effort)
            span.set("nodes_after", result.num_ands)
            self.stats.record(f"{spec.name}[{effort}]", result.num_ands,
                              time.perf_counter() - t0)
        self.deadline.finish(spec.name)
        if bus.enabled:
            bus.emit("stage_end", stage=spec.name, effort=effort,
                     index=stage_index, total=self.total_stages,
                     nodes=result.num_ands,
                     level="reduced" if level == REDUCED else "full")
        return result

    def _depth_guard(self, candidate: Aig, previous: Aig, stage: str,
                     effort: int) -> Aig:
        """Level discipline: rebalance, roll back if still over budget."""
        if self.depth_limit is None:
            return candidate
        if candidate.depth > self.depth_limit:
            candidate = balance(candidate)
        if candidate.depth > self.depth_limit \
                and previous.depth <= self.depth_limit:
            self.stats.record(f"{stage}:rolled_back[{effort}]",
                              previous.num_ands)
            return previous
        return candidate

    def _chaos_stage_fault(self, aig: Aig, stage: str,
                           stage_index: int) -> Aig:
        """Stage-runner fault injection: corrupt the stage result."""
        chaos = self.config.chaos
        if chaos is None:
            return aig
        kind = chaos.draw_stage(f"stage:{stage_index}:{stage}")
        if kind != "corrupt-result":
            return aig
        corrupted = aig.cleanup()
        corrupted.set_po(0, lit_not(corrupted.pos()[0]))
        obs.metrics().inc("guard.chaos.injected", kind="stage-corrupt")
        return corrupted

    def _equivalence_guard(self, aig: Aig, stage: str, iteration: int,
                           effort: int) -> Aig:
        """StageGuard ladder; on miscompare, roll back to the last verified
        network and attach the counterexample to the report."""
        if self.guard is None:
            return aig
        cex = self.guard.check(aig)
        if cex is None:
            self.guard.commit(aig)
            return aig
        rolled = self.guard.rollback_copy()
        self.stats.record(f"{stage}:guard_rollback[{effort}]",
                          rolled.num_ands)
        self.report.add("rolled_back", stage, iteration,
                        counterexample=cex.to_dict())
        obs.metrics().inc("guard.rollbacks", stage=stage)
        return rolled


# -- the flow ------------------------------------------------------------------

_warned_inline_timeout = False


def _warn_inline_timeout(config: FlowConfig) -> None:
    """One-time warning: ``window_timeout_s`` needs ``jobs > 1``."""
    global _warned_inline_timeout
    if config.window_timeout_s is None or config.jobs != 1:
        return
    if _warned_inline_timeout:
        return
    _warned_inline_timeout = True
    warnings.warn(
        "FlowConfig.window_timeout_s is ignored when jobs <= 1: the inline "
        "path cannot preempt a window.  Use flow_timeout_s (the repro.guard "
        "stage budget) to bound serial runs.",
        RuntimeWarning, stacklevel=3)


def _check_resume(resume: ResumePoint, aig: Aig, total_stages: int) -> None:
    """Reject checkpoints from a different design or flow shape."""
    state = resume.state
    if state.num_pis != aig.num_pis or state.num_pos != aig.num_pos:
        raise CheckpointError(
            f"checkpoint interface ({state.num_pis} PIs / {state.num_pos} "
            f"POs) does not match the input network ({aig.num_pis} PIs / "
            f"{aig.num_pos} POs)")
    if state.total_stages != total_stages:
        raise CheckpointError(
            f"checkpoint was produced by a flow with {state.total_stages} "
            f"stages; this configuration has {total_stages} — refusing to "
            f"resume across configurations")
    if state.next_index > total_stages:
        raise CheckpointError(
            f"checkpoint cursor {state.next_index} is beyond the flow's "
            f"{total_stages} stages")


def sbm_flow(aig: Aig, config: Optional[FlowConfig] = None,
             resume_from: Optional[str] = None) -> Tuple[Aig, FlowStats]:
    """Run the full SBM Boolean resynthesis script; returns a new network.

    The input network is not modified.  *resume_from* names a checkpoint
    directory written by a previous run (``config.checkpoint_dir``);
    completed stages are skipped and execution continues from the last
    committed network, producing the same final result as an uninterrupted
    run.  :attr:`FlowStats.guard` reports everything the hardened
    execution layer did.
    """
    config = config or FlowConfig()
    if config.orchestrate is not None:
        # The pass-ordering search replaces the fixed waterfall entirely;
        # with ``orchestrate=None`` nothing below this line changes, so
        # the classic flow stays bit-identical to previous releases.
        if resume_from is not None:
            raise ValueError(
                "orchestrate is incompatible with resume_from: the "
                "checkpoint cursor is defined over the fixed waterfall")
        from repro.orchestrate.search import orchestrated_flow
        return orchestrated_flow(aig, config)
    _warn_inline_timeout(config)
    specs = _stage_specs(config)
    per_iter = len(specs)
    total = per_iter * config.iterations
    chaos = config.chaos
    chaos_mark = len(chaos.injected) if chaos is not None else 0
    stats = FlowStats()
    stats.guard = report = GuardReport(
        budget_s=config.flow_timeout_s,
        chaos_seed=chaos.seed if chaos is not None else None)
    resume = load_checkpoint(resume_from) if resume_from is not None else None
    if resume is not None:
        _check_resume(resume, aig, total)
    start = time.time()
    try:
        best = _execute_flow(aig, config, specs, stats, report, resume, start)
    finally:
        if chaos is not None:
            report.faults.extend(chaos.injected_since(chaos_mark))
        obs.record_guard_report(report)
    obs.record_flow_stats(stats)
    return best, stats


def _execute_flow(aig: Aig, config: FlowConfig, specs: List[_StageSpec],
                  stats: FlowStats, report: GuardReport,
                  resume: Optional[ResumePoint], start_wall: float) -> Aig:
    per_iter = len(specs)
    total = per_iter * config.iterations
    chaos = config.chaos
    with obs.span("flow", kind="flow", design=aig.name,
                  iterations=config.iterations,
                  jobs=config.jobs) as flow_span:
        if resume is not None:
            current = resume.network
            best = resume.best
            depth_limit = resume.state.depth_limit
            start_index = resume.state.next_index
            prior_runtime = resume.state.runtime_s
            stats.records = [StageRecord(r["name"], r["size"],
                                         r.get("elapsed_s", 0.0))
                             for r in resume.state.records]
            report.resumed_from = start_index
            report.add("resume", resume.state.stage, resume.state.iteration,
                       next_index=start_index)
            obs.metrics().inc("guard.resumes")
        else:
            best = aig.cleanup()
            current = best
            stats.record("initial", best.num_ands)
            depth_limit = None
            if config.max_depth_growth is not None:
                depth_limit = max(1, int(best.depth * config.max_depth_growth))
            start_index = 0
            prior_runtime = 0.0
        flow_span.set("nodes_before", best.num_ands)
        bus = obs.live_bus()
        if bus.enabled:
            bus.emit("flow_start", design=aig.name, nodes=best.num_ands,
                     stages=total, iterations=config.iterations,
                     resumed_at=start_index)
        deadline = DeadlineManager(config.flow_timeout_s,
                                   total - start_index)
        store = CheckpointStore(config.checkpoint_dir) \
            if config.checkpoint_dir else None
        guard = StageGuard(current.cleanup()) \
            if config.verify_each_step else None
        runner = _StageRunner(config, stats, report, deadline, guard,
                              depth_limit, total_stages=total)

        def checkpoint(stage_index: int, iteration: int,
                       stage_name: str) -> None:
            """Commit a checkpoint (if configured), then honour a scheduled
            chaos interrupt — the deterministic stand-in for ``kill -9``."""
            if store is not None:
                state = CheckpointState(
                    next_index=stage_index + 1, iteration=iteration,
                    stage=stage_name, total_stages=total, design=aig.name,
                    num_pis=current.num_pis, num_pos=current.num_pos,
                    depth_limit=depth_limit,
                    runtime_s=prior_runtime + (time.time() - start_wall),
                    records=[{"name": r.name, "size": r.size,
                              "elapsed_s": r.elapsed_s}
                             for r in stats.records])
                store.save(state, current, best)
                report.add("checkpoint", stage_name, iteration,
                           next_index=stage_index + 1)
                obs.metrics().inc("guard.checkpoints")
            if chaos is not None and chaos.should_interrupt(stage_index):
                report.add("interrupted", stage_name, iteration,
                           stage_index=stage_index)
                raise ChaosInterrupt(stage_index, config.checkpoint_dir)

        for iteration in range(config.iterations):
            base = iteration * per_iter
            if base + per_iter <= start_index:
                continue  # iteration fully covered by the checkpoint
            effort = iteration + 1
            with obs.span(f"iteration[{effort}]", kind="iteration",
                          effort=effort,
                          nodes_before=current.num_ands) as it_span:
                for pos, spec in enumerate(specs):
                    stage_index = base + pos
                    if stage_index < start_index:
                        continue  # stage covered by the checkpoint
                    current = runner.run_stage(current, spec, iteration,
                                               stage_index)
                    if pos < per_iter - 1:
                        checkpoint(stage_index, iteration, spec.name)
                it_span.set("nodes_after", current.num_ands)
            if current.num_ands < best.num_ands:
                best = current.cleanup()
            # The iteration's last checkpoint lands after the best-so-far
            # update so a resumed run carries the same `best` an
            # uninterrupted one would.
            checkpoint(base + per_iter - 1, iteration, specs[-1].name)
        stats.runtime_s = prior_runtime + (time.time() - start_wall)
        stats.record("final", best.num_ands)
        flow_span.set("nodes_after", best.num_ands)
        if bus.enabled:
            bus.emit("flow_end", design=aig.name, nodes=best.num_ands)
    return best
