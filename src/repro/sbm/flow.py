"""The SBM Boolean resynthesis flow (Section V-A).

"We created a Boolean resynthesis script which runs the following
optimizations:

* AIG optimization: ... state-of-the-art methods [1] and our gradient-based
  AIG minimization,
* heterogeneous elimination for kernel extraction, applied on partitioned
  networks of medium-large sizes,
* enhanced MSPF computation, using partitions of medium size and BDDs,
* collapse and Boolean decomposition, applied on reconvergent MFFC of the
  logic network,
* Boolean difference-based optimization to unveil hard to find optimization
  and escape local minima,
* SAT-based sweeping and redundancy removal as in [9].

The optimization flow is iterated twice, with different efforts.  Further,
after each transformation, the logic network is translated into an AIG."

Our networks are always AIGs, so the "translate to AIG" step becomes a
:meth:`~repro.aig.Aig.cleanup` compaction after every stage; the "collapse
and Boolean decomposition on reconvergent MFFCs" stage maps to the
wide-cut refactoring pass.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.aig.aig import Aig
from repro.opt.balance import balance
from repro.opt.refactor import refactor
from repro.opt.scripts import compress2rs_step
from repro.sat.equivalence import assert_equivalent
from repro.sat.redundancy import remove_redundancies
from repro.sat.sweep import sat_sweep
from repro.sbm.boolean_difference import boolean_difference_pass
from repro.sbm.config import FlowConfig, GradientConfig
from repro.sbm.gradient import gradient_optimize
from repro.sbm.hetero_kernel import hetero_kernel_pass
from repro.sbm.mspf import mspf_pass


@dataclass
class StageRecord:
    """One flow-stage checkpoint: name, resulting size, elapsed seconds."""

    name: str
    size: int
    elapsed_s: float = 0.0


@dataclass
class FlowStats:
    """Size and timing after every stage of the flow."""

    records: List[StageRecord] = field(default_factory=list)
    runtime_s: float = 0.0

    def record(self, stage: str, size: int, elapsed_s: float = 0.0) -> None:
        """Append a stage checkpoint (resulting size, elapsed seconds)."""
        self.records.append(StageRecord(stage, size, elapsed_s))

    @property
    def stages(self) -> List[Tuple[str, int]]:
        """Deprecated ``(name, size)`` tuple view; use :attr:`records`."""
        warnings.warn(
            "FlowStats.stages is deprecated; use FlowStats.records "
            "(StageRecord objects with per-stage elapsed_s)",
            DeprecationWarning, stacklevel=2)
        return [(r.name, r.size) for r in self.records]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation for the run report."""
        return {
            "runtime_s": self.runtime_s,
            "stages": [{"name": r.name, "size": r.size,
                        "elapsed_s": r.elapsed_s} for r in self.records],
        }


def sbm_flow(aig: Aig, config: Optional[FlowConfig] = None) -> Tuple[Aig, FlowStats]:
    """Run the full SBM Boolean resynthesis script; returns a new network.

    The input network is not modified.
    """
    config = config or FlowConfig()
    stats = FlowStats()
    start = time.time()
    with obs.span("flow", kind="flow", design=aig.name,
                  iterations=config.iterations,
                  jobs=config.jobs) as flow_span:
        original = aig.cleanup() if config.verify_each_step else None
        best = aig.cleanup()
        stats.record("initial", best.num_ands)
        flow_span.set("nodes_before", best.num_ands)
        depth_limit = None
        if config.max_depth_growth is not None:
            depth_limit = max(1, int(best.depth * config.max_depth_growth))
        current = best
        for iteration in range(config.iterations):
            effort_scale = iteration + 1
            with obs.span(f"iteration[{effort_scale}]", kind="iteration",
                          effort=effort_scale,
                          nodes_before=current.num_ands) as it_span:
                current = _one_iteration(current, config, stats, effort_scale,
                                         depth_limit)
                it_span.set("nodes_after", current.num_ands)
            if config.verify_each_step:
                assert_equivalent(original, current)
            if current.num_ands < best.num_ands:
                best = current.cleanup()
        stats.runtime_s = time.time() - start
        stats.record("final", best.num_ands)
        flow_span.set("nodes_after", best.num_ands)
    obs.record_flow_stats(stats)
    return best, stats


def _one_iteration(aig: Aig, config: FlowConfig, stats: FlowStats,
                   effort: int, depth_limit: Optional[int] = None) -> Aig:

    def guard(candidate: Aig, previous: Aig, stage: str) -> Aig:
        """Level discipline: rebalance, roll back if still over budget."""
        if depth_limit is None:
            return candidate
        if candidate.depth > depth_limit:
            candidate = balance(candidate)
        if candidate.depth > depth_limit and previous.depth <= depth_limit:
            stats.record(f"{stage}:rolled_back[{effort}]", previous.num_ands)
            return previous
        return candidate

    def finish(span, stage: str, t0: float) -> None:
        """Close out one stage: span node delta + FlowStats timing."""
        span.set("nodes_after", aig.num_ands)
        stats.record(f"{stage}[{effort}]", aig.num_ands,
                     time.perf_counter() - t0)

    # 1. AIG optimization: baseline script + gradient engine.
    t0 = time.perf_counter()
    before = aig
    with obs.span("aig_script", kind="stage", effort=effort,
                  nodes_before=before.num_ands) as sp:
        aig = guard(compress2rs_step(aig), before, "aig_script")
        finish(sp, "aig_script", t0)
    gradient_cfg = GradientConfig(
        cost_budget=config.gradient.cost_budget * effort,
        window_k=config.gradient.window_k,
        min_gain_gradient=config.gradient.min_gain_gradient,
        budget_extension=config.gradient.budget_extension,
        partition=config.gradient.partition)
    t0 = time.perf_counter()
    before = aig.cleanup()
    with obs.span("gradient", kind="stage", effort=effort,
                  nodes_before=before.num_ands) as sp:
        gradient_optimize(aig, gradient_cfg)
        aig = guard(aig.cleanup(), before, "gradient")
        finish(sp, "gradient", t0)
    # 2. Heterogeneous elimination for kernel extraction.
    t0 = time.perf_counter()
    before = aig.cleanup()
    with obs.span("kernel", kind="stage", effort=effort,
                  nodes_before=before.num_ands) as sp:
        hetero_kernel_pass(aig, config.kernel, jobs=config.jobs,
                           window_timeout_s=config.window_timeout_s)
        aig = guard(aig.cleanup(), before, "kernel")
        finish(sp, "kernel", t0)
    # 3. Enhanced MSPF with BDDs.
    t0 = time.perf_counter()
    before = aig.cleanup()
    with obs.span("mspf", kind="stage", effort=effort,
                  nodes_before=before.num_ands) as sp:
        mspf_pass(aig, config.mspf, jobs=config.jobs,
                  window_timeout_s=config.window_timeout_s)
        aig = guard(aig.cleanup(), before, "mspf")
        finish(sp, "mspf", t0)
    # 4. Collapse + Boolean decomposition on reconvergent MFFCs.
    t0 = time.perf_counter()
    before = aig.cleanup()
    with obs.span("collapse_decomp", kind="stage", effort=effort,
                  nodes_before=before.num_ands) as sp:
        refactor(aig, max_leaves=10 + 2 * effort, min_gain=1)
        aig = guard(aig.cleanup(), before, "collapse_decomp")
        finish(sp, "collapse_decomp", t0)
    # 5. Boolean difference to escape local minima.
    t0 = time.perf_counter()
    before = aig.cleanup()
    with obs.span("boolean_diff", kind="stage", effort=effort,
                  nodes_before=before.num_ands) as sp:
        boolean_difference_pass(aig, config.boolean_difference,
                                jobs=config.jobs,
                                window_timeout_s=config.window_timeout_s)
        aig = guard(aig.cleanup(), before, "boolean_diff")
        finish(sp, "boolean_diff", t0)
    # 6. SAT sweeping and redundancy removal.
    if config.enable_sat_sweep:
        t0 = time.perf_counter()
        with obs.span("sat_sweep", kind="stage", effort=effort,
                      nodes_before=aig.num_ands) as sp:
            merges = sat_sweep(aig, max_proofs=2000)
            aig = aig.cleanup()
            sp.set("merges", merges)
            obs.metrics().inc("sat_sweep.merges", merges)
            finish(sp, "sat_sweep", t0)
    if config.enable_redundancy_removal:
        t0 = time.perf_counter()
        with obs.span("redundancy", kind="stage", effort=effort,
                      nodes_before=aig.num_ands) as sp:
            removed = remove_redundancies(aig, max_checks=200)
            aig = aig.cleanup()
            sp.set("removed", removed)
            obs.metrics().inc("redundancy.removed", removed)
            finish(sp, "redundancy", t0)
    t0 = time.perf_counter()
    with obs.span("balance", kind="stage", effort=effort,
                  nodes_before=aig.num_ands) as sp:
        aig = balance(aig)
        finish(sp, "balance", t0)
    return aig
