"""The SBM Boolean resynthesis flow (Section V-A).

"We created a Boolean resynthesis script which runs the following
optimizations:

* AIG optimization: ... state-of-the-art methods [1] and our gradient-based
  AIG minimization,
* heterogeneous elimination for kernel extraction, applied on partitioned
  networks of medium-large sizes,
* enhanced MSPF computation, using partitions of medium size and BDDs,
* collapse and Boolean decomposition, applied on reconvergent MFFC of the
  logic network,
* Boolean difference-based optimization to unveil hard to find optimization
  and escape local minima,
* SAT-based sweeping and redundancy removal as in [9].

The optimization flow is iterated twice, with different efforts.  Further,
after each transformation, the logic network is translated into an AIG."

Our networks are always AIGs, so the "translate to AIG" step becomes a
:meth:`~repro.aig.Aig.cleanup` compaction after every stage; the "collapse
and Boolean decomposition on reconvergent MFFCs" stage maps to the
wide-cut refactoring pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aig.aig import Aig
from repro.opt.balance import balance
from repro.opt.refactor import refactor
from repro.opt.scripts import compress2rs_step
from repro.sat.equivalence import assert_equivalent
from repro.sat.redundancy import remove_redundancies
from repro.sat.sweep import sat_sweep
from repro.sbm.boolean_difference import boolean_difference_pass
from repro.sbm.config import FlowConfig, GradientConfig
from repro.sbm.gradient import gradient_optimize
from repro.sbm.hetero_kernel import hetero_kernel_pass
from repro.sbm.mspf import mspf_pass


@dataclass
class FlowStats:
    """Sizes after every stage of the flow, for reporting and debugging."""

    stages: List[Tuple[str, int]] = field(default_factory=list)
    runtime_s: float = 0.0

    def record(self, stage: str, size: int) -> None:
        """Append a (stage name, network size) checkpoint."""
        self.stages.append((stage, size))


def sbm_flow(aig: Aig, config: Optional[FlowConfig] = None) -> Tuple[Aig, FlowStats]:
    """Run the full SBM Boolean resynthesis script; returns a new network.

    The input network is not modified.
    """
    config = config or FlowConfig()
    stats = FlowStats()
    start = time.time()
    original = aig.cleanup() if config.verify_each_step else None
    best = aig.cleanup()
    stats.record("initial", best.num_ands)
    depth_limit = None
    if config.max_depth_growth is not None:
        depth_limit = max(1, int(best.depth * config.max_depth_growth))
    current = best
    for iteration in range(config.iterations):
        effort_scale = iteration + 1
        current = _one_iteration(current, config, stats, effort_scale,
                                 depth_limit)
        if config.verify_each_step:
            assert_equivalent(original, current)
        if current.num_ands < best.num_ands:
            best = current.cleanup()
    stats.runtime_s = time.time() - start
    stats.record("final", best.num_ands)
    return best, stats


def _one_iteration(aig: Aig, config: FlowConfig, stats: FlowStats,
                   effort: int, depth_limit: Optional[int] = None) -> Aig:

    def guard(candidate: Aig, previous: Aig, stage: str) -> Aig:
        """Level discipline: rebalance, roll back if still over budget."""
        if depth_limit is None:
            return candidate
        if candidate.depth > depth_limit:
            candidate = balance(candidate)
        if candidate.depth > depth_limit and previous.depth <= depth_limit:
            stats.record(f"{stage}:rolled_back[{effort}]", previous.num_ands)
            return previous
        return candidate

    # 1. AIG optimization: baseline script + gradient engine.
    before = aig
    aig = guard(compress2rs_step(aig), before, "aig_script")
    stats.record(f"aig_script[{effort}]", aig.num_ands)
    gradient_cfg = GradientConfig(
        cost_budget=config.gradient.cost_budget * effort,
        window_k=config.gradient.window_k,
        min_gain_gradient=config.gradient.min_gain_gradient,
        budget_extension=config.gradient.budget_extension,
        partition=config.gradient.partition)
    before = aig.cleanup()
    gradient_optimize(aig, gradient_cfg)
    aig = guard(aig.cleanup(), before, "gradient")
    stats.record(f"gradient[{effort}]", aig.num_ands)
    # 2. Heterogeneous elimination for kernel extraction.
    before = aig.cleanup()
    hetero_kernel_pass(aig, config.kernel, jobs=config.jobs,
                       window_timeout_s=config.window_timeout_s)
    aig = guard(aig.cleanup(), before, "kernel")
    stats.record(f"kernel[{effort}]", aig.num_ands)
    # 3. Enhanced MSPF with BDDs.
    before = aig.cleanup()
    mspf_pass(aig, config.mspf, jobs=config.jobs,
              window_timeout_s=config.window_timeout_s)
    aig = guard(aig.cleanup(), before, "mspf")
    stats.record(f"mspf[{effort}]", aig.num_ands)
    # 4. Collapse + Boolean decomposition on reconvergent MFFCs.
    before = aig.cleanup()
    refactor(aig, max_leaves=10 + 2 * effort, min_gain=1)
    aig = guard(aig.cleanup(), before, "collapse_decomp")
    stats.record(f"collapse_decomp[{effort}]", aig.num_ands)
    # 5. Boolean difference to escape local minima.
    before = aig.cleanup()
    boolean_difference_pass(aig, config.boolean_difference, jobs=config.jobs,
                            window_timeout_s=config.window_timeout_s)
    aig = guard(aig.cleanup(), before, "boolean_diff")
    stats.record(f"boolean_diff[{effort}]", aig.num_ands)
    # 6. SAT sweeping and redundancy removal.
    if config.enable_sat_sweep:
        sat_sweep(aig, max_proofs=2000)
        aig = aig.cleanup()
        stats.record(f"sat_sweep[{effort}]", aig.num_ands)
    if config.enable_redundancy_removal:
        remove_redundancies(aig, max_checks=200)
        aig = aig.cleanup()
        stats.record(f"redundancy[{effort}]", aig.num_ands)
    aig = balance(aig)
    stats.record(f"balance[{effort}]", aig.num_ands)
    return aig
