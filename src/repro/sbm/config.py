"""Configuration dataclasses for the SBM engines.

Default values follow the paper's empirical settings:

* Boolean difference: BDD size filter 10 (Section III-C), xor_cost 3 (the
  AIG node count of a two-input XOR; "according to the specific technology
  involved ... the xor_cost can have a different value"), partition levels
  between 5 and 30 with ≤1000 nodes (Section III-B).
* Gradient engine: cost budget 100, k = 20, minimum gain gradient 3%
  (Section IV-A).
* Heterogeneous eliminate thresholds (-1, 2, 5, 20, 50, 100, 200, 300)
  (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.partition.partitioner import PartitionConfig

if TYPE_CHECKING:
    from repro.guard.chaos import FaultPlan
    from repro.parallel.shared_pool import SharedProcessPool


@dataclass
class BooleanDifferenceConfig:
    """Knobs of the Boolean-difference resubstitution engine (Section III)."""

    xor_cost: int = 3
    bdd_size_limit: int = 10
    bdd_node_limit: int = 200_000
    max_pairs_per_node: int = 40
    max_pairs_per_partition: int = 5_000
    min_shared_support: int = 1
    max_inclusion: float = 0.999
    accept_zero_gain: bool = True
    #: Reorder partition BDDs by sifting before pairing.  The paper keeps
    #: this OFF ("we did not perform any BDD variables ordering ... saves
    #: runtime, but requires a higher amount of memory", Section III-C);
    #: ON trades runtime for memory — measured by the ablation bench.
    reorder: bool = False
    partition: PartitionConfig = field(default_factory=lambda: PartitionConfig(
        max_levels=20, max_size=400, max_leaves=24))


@dataclass
class MspfConfig:
    """Knobs of the BDD-based MSPF engine (Section IV-C)."""

    bdd_node_limit: int = 300_000
    max_connectable_fanins: int = 8
    partition: PartitionConfig = field(default_factory=lambda: PartitionConfig(
        max_levels=24, max_size=500, max_leaves=28))


@dataclass
class KernelConfig:
    """Knobs of the heterogeneous elimination/kerneling engine (Section IV-B)."""

    eliminate_thresholds: Tuple[int, ...] = (-1, 2, 5, 20, 50, 100, 200, 300)
    max_cubes: int = 256
    kernel_rounds: int = 20
    partition: PartitionConfig = field(default_factory=lambda: PartitionConfig(
        max_levels=12, max_size=200, max_leaves=40))


@dataclass
class SimresubConfig:
    """Knobs of the simulation-guided resubstitution engine.

    The fifth engine (Simulation-Guided Boolean Resubstitution, Lee et
    al., arXiv:2007.02579) carries no BDD limits: candidates are filtered
    by simulation signatures and validated by budgeted SAT proofs, so its
    knobs are the pattern width, the divisor/pair search bounds, and the
    per-proof conflict budget — exactly the degradation-ladder handles.
    """

    #: 64-bit words of seeded random patterns (4 → 256 patterns).
    pattern_words: int = 4
    #: Hard cap on pattern growth from counterexamples.
    max_patterns: int = 1024
    #: Nearest topological predecessors considered as divisors per node.
    max_divisors: int = 48
    #: Divisor-pair signature checks per node (two-divisor candidates).
    max_pair_checks: int = 300
    #: SAT conflicts allowed per candidate proof; over budget = skip.
    sat_conflict_budget: int = 3000
    #: Seed of the random pattern prefix (semantic: part of the cache key).
    seed: int = 0x51328E5
    partition: PartitionConfig = field(default_factory=lambda: PartitionConfig(
        max_levels=24, max_size=500, max_leaves=30))


@dataclass
class GradientConfig:
    """Knobs of the gradient-based AIG engine (Section IV-A)."""

    cost_budget: int = 100
    window_k: int = 20
    min_gain_gradient: float = 0.03
    budget_extension: int = 50
    partition: Optional[PartitionConfig] = None  # None = whole network


@dataclass
class OrchestrateConfig:
    """Knobs of the DAG-aware pass-ordering search (``repro.orchestrate``).

    The search replaces the fixed stage waterfall with rounds of K
    candidate stage sequences (vital stages pinned), evaluated through the
    content-addressed stage memo and scored by node count.  Every knob
    here except :attr:`threads` is **semantic** — part of the campaign
    cache key — because it changes which ordering wins and therefore the
    result network.  :attr:`threads` only changes where candidates are
    evaluated, never what they compute (candidates are pure functions of
    (input network, sequence, config)), so it is excluded like
    ``FlowConfig.jobs``.
    """

    #: Candidate stage sequences proposed per round.
    k: int = 4
    #: Search rounds; each round seeds the next with its winner.
    rounds: int = 2
    #: Seed of the bandit prior's RNG — the only randomness source, so
    #: candidate generation is bit-for-bit reproducible.
    seed: int = 0xD46A11
    #: Exploration probability of the bandit's next-stage draw.
    explore: float = 0.25
    #: Minimum movable stages kept when a candidate drops stages.
    min_stages: int = 3
    #: Concurrent candidate evaluations (execution-side; ``None`` = derive
    #: from ``k`` and the worker pool).
    threads: Optional[int] = None


@dataclass
class FlowConfig:
    """The full Boolean resynthesis script of Section V-A."""

    iterations: int = 2
    #: Worker processes for the partition-based engines (hetero-kernel,
    #: MSPF, Boolean difference).  ``1`` (default) executes every partition
    #: inline in partition order — the exact serial path, no process
    #: machinery; ``0``/``None`` means ``os.cpu_count()``.  The result is
    #: identical for every value: partitions are snapshot up front, workers
    #: are pure functions, and results merge in deterministic partition
    #: order (see :mod:`repro.parallel`).
    jobs: int = 1
    #: Per-window wall-clock budget (seconds) when ``jobs > 1``; an
    #: overrunning window falls back to its original logic.  ``None``
    #: disables the timeout, which keeps parallel runs deterministic.
    #: **Silently ignored when** ``jobs <= 1``: the inline path executes
    #: windows in the flow's own process and cannot preempt them, so the
    #: flow emits a one-time warning when this is set without ``jobs > 1``.
    #: Serial runs are bounded by the guard layer's *stage* budget instead
    #: (:attr:`flow_timeout_s` and the ``repro.guard`` degradation ladder).
    window_timeout_s: Optional[float] = None
    #: Flow-level wall-clock budget (seconds; CLI ``--timeout``).  The
    #: :class:`repro.guard.budget.DeadlineManager` splits it across the
    #: remaining stages: a stage is run at reduced effort when the run
    #: falls behind schedule, and skipped once the budget is exhausted —
    #: the flow degrades instead of hanging or dying.  ``None`` (default)
    #: disables all time discipline.
    flow_timeout_s: Optional[float] = None
    #: Directory for crash-safe checkpoints (CLI ``--checkpoint-dir``).
    #: After every (verified) stage the current and best networks plus the
    #: flow state are snapshotted via atomic write-then-rename;
    #: ``sbm_flow(..., resume_from=dir)`` / CLI ``--resume`` continues a
    #: killed run from the last committed checkpoint.
    checkpoint_dir: Optional[str] = None
    #: Optional :class:`repro.guard.chaos.FaultPlan` (CLI ``--chaos SEED``)
    #: injecting deterministic faults into the partition scheduler and the
    #: stage runner.  Corrupt-result faults need
    #: :attr:`verify_each_step` to keep the final network correct.
    chaos: Optional["FaultPlan"] = None
    #: Optional :class:`repro.parallel.shared_pool.SharedProcessPool`: the
    #: campaign orchestrator's worker pool, shared by every flow of a batch
    #: instead of one pool per pass.  Execution-side only — it changes
    #: where windows run, never what they compute, so it is excluded from
    #: the campaign cache key (like :attr:`jobs`).
    pool: Optional["SharedProcessPool"] = None
    #: Optional level discipline (Section V-A: "we enforced a tight control
    #: on the number of levels ... as this is known to correlate with delay
    #: and congestion later on in the flow").  When set, a stage whose
    #: result exceeds ``initial_depth × max_depth_growth`` even after
    #: rebalancing is rolled back.
    max_depth_growth: Optional[float] = None
    boolean_difference: BooleanDifferenceConfig = field(
        default_factory=BooleanDifferenceConfig)
    mspf: MspfConfig = field(default_factory=MspfConfig)
    simresub: SimresubConfig = field(default_factory=SimresubConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    gradient: GradientConfig = field(default_factory=GradientConfig)
    #: Simulation-guided resubstitution (the fifth engine): signature
    #: filtering + budgeted SAT, no BDDs — the scalable path on the large
    #: arithmetic benchmarks where the BDD-filtered engines bail out.
    enable_simresub: bool = True
    enable_sat_sweep: bool = True
    enable_redundancy_removal: bool = False  # expensive; on for final effort
    #: Verify every stage through the :class:`repro.guard.stage_guard
    #: .StageGuard` ladder (256-pattern random-simulation fast check, then
    #: SAT CEC) and roll a miscomparing stage back to the last verified
    #: network instead of aborting.  Historically this was an
    #: end-of-iteration ``assert_equivalent`` that raised on failure.
    verify_each_step: bool = False
    #: Optional :class:`OrchestrateConfig`: replace the fixed waterfall
    #: with the DAG-aware pass-ordering search (``repro.orchestrate``).
    #: ``None`` (default) keeps the flow bit-identical to the classic
    #: stage table.  Semantic — part of the campaign cache key.
    orchestrate: Optional[OrchestrateConfig] = None
