"""Heterogeneous elimination for kernel extraction (Section IV-B).

Elimination (forward node collapsing) grows SOPs before kernel extraction,
and its threshold decides which sharing opportunities become visible.  The
paper's observation: running one network-wide threshold ("homogeneously")
produces SOPs of similar *size* but not similar *characteristics*; instead,

    "We first partition the network ... and we apply elimination - kernel
    extraction to each partition with different eliminate thresholds.  We
    only keep the best one, e.g., the one reducing the largest number of
    literals of the partition. ... Empirically, we found useful to try the
    following eliminate thresholds: (-1, 2, 5, 20, 50, 100, 200, 300)."

Per partition each threshold is tried on a private SOP copy; the winner is
factored back to an AIG and spliced in only when it does not increase the
node count (the move contract of the gradient engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import hotpath, obs
from repro.aig.aig import Aig
from repro.opt.balance import balance
from repro.parallel.scheduler import register_engine
from repro.partition.partitioner import (
    Window,
    extract_window_aig,
    splice_window,
)
from repro.sbm.config import KernelConfig
from repro.sop.network import SopNetwork


@dataclass
class KernelStats:
    """Counters reported by a heterogeneous elimination/kerneling pass."""

    partitions: int = 0
    partitions_improved: int = 0
    literal_saving: int = 0
    node_gain: int = 0
    threshold_wins: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.threshold_wins is None:
            self.threshold_wins = {}


def publish_metrics(stats: KernelStats) -> None:
    """Push one kernel run's counters into the active metrics registry."""
    registry = obs.metrics()
    if not registry.enabled:
        return
    for name, value in (("partitions_improved", stats.partitions_improved),
                        ("literal_saving", stats.literal_saving),
                        ("node_gain", stats.node_gain)):
        if value:
            registry.inc(f"kernel.{name}", value)
    for threshold, wins in stats.threshold_wins.items():
        registry.inc("kernel.threshold_win", wins, threshold=threshold)


def hetero_kernel_pass(aig: Aig, config: Optional[KernelConfig] = None,
                       jobs: int = 1,
                       window_timeout_s: Optional[float] = None,
                       chaos=None, chaos_scope: str = "",
                       pool=None) -> KernelStats:
    """Run heterogeneous eliminate+kernel over every partition; edits in place.

    Partitions are snapshot up front and optimized independently — inline
    and in partition order when ``jobs=1`` (the serial path), over a process
    pool when ``jobs>1`` — then spliced back in deterministic partition
    order, so the result is identical for every ``jobs`` value.  *chaos* /
    *chaos_scope* thread a :class:`repro.guard.chaos.FaultPlan` into the
    scheduler.
    """
    config = config or KernelConfig()
    from repro.parallel.scheduler import run_partitioned_pass
    report = run_partitioned_pass(aig, "kernel", config, config.partition,
                                  jobs=jobs,
                                  window_timeout_s=window_timeout_s,
                                  chaos=chaos, chaos_scope=chaos_scope,
                                  pool=pool)
    stats = KernelStats(partitions=report.num_windows)
    for record in report.records:
        if not record.applied:
            continue
        stats.partitions_improved += 1
        stats.literal_saving += int(record.payload.get("literal_saving", 0))
        stats.node_gain += record.gain
        threshold = record.payload.get("threshold")
        if threshold is not None:
            stats.threshold_wins[threshold] = (
                stats.threshold_wins.get(threshold, 0) + 1)
    return stats


def optimize_subaig(sub: Aig, config: Optional[KernelConfig] = None):
    """Worker entry point: heterogeneous eliminate+kernel on one sub-AIG.

    Pure function of *sub* (the extracted window with leaves as PIs and
    roots as POs): returns ``(changed, optimized sub-AIG or None, payload)``
    for the parallel scheduler.
    """
    config = config or KernelConfig()
    if sub.num_ands < 4:
        return False, None, {}
    best = _best_threshold_result(sub, config)
    if best is None:
        return False, None, {}
    threshold, optimized, saving = best
    if optimized.num_ands >= sub.num_ands:
        return False, None, {}  # not an improvement at the AIG level
    registry = obs.metrics()
    registry.inc("kernel.threshold_win", threshold=threshold)
    if saving:
        registry.inc("kernel.literal_saving", saving)
    return True, optimized, {"threshold": threshold,
                             "literal_saving": saving}


def optimize_partition(aig: Aig, window: Window, config: KernelConfig,
                       stats: KernelStats) -> None:
    """Try every eliminate threshold on the partition, keep the best."""
    from repro.partition.partitioner import refresh_window
    refreshed = refresh_window(aig, window)
    if refreshed is None or refreshed.size < 4:
        return
    window = refreshed
    sub, _mapping, _root_to_po = extract_window_aig(aig, window)
    best = _best_threshold_result(sub, config)
    if best is None:
        return
    threshold, optimized, saving = best
    if optimized.num_ands >= window.size:
        return  # not an improvement at the AIG level
    delta = splice_window(aig, window, optimized)
    if delta > 0:
        # The strashed result interacted badly with surrounding logic;
        # restore the original structure (function is unchanged either way).
        splice_window(aig, window, sub)
        return
    stats.partitions_improved += 1
    stats.literal_saving += saving
    stats.node_gain -= delta
    stats.threshold_wins[threshold] = stats.threshold_wins.get(threshold, 0) + 1


def _best_threshold_result(sub: Aig, config: KernelConfig
                           ) -> Optional[Tuple[int, Aig, int]]:
    """(threshold, optimized sub-AIG, literal saving) of the best threshold."""
    base_net = SopNetwork.from_aig(sub)
    base_literals = base_net.total_literals()
    best: Optional[Tuple[int, Aig, int]] = None
    # Hot path: one content-keyed kernel/saving memo for the whole threshold
    # sweep — different thresholds eliminate to heavily overlapping covers,
    # so later thresholds replay most kernel evaluations from cache.
    kernel_cache: Optional[dict] = {} if hotpath.enabled() else None
    for threshold in config.eliminate_thresholds:
        net = SopNetwork.from_aig(sub)
        net.eliminate(threshold, max_cubes=config.max_cubes)
        net.extract_kernels(max_rounds=config.kernel_rounds,
                            _cache=kernel_cache)
        net.extract_common_cubes(max_rounds=config.kernel_rounds)
        saving = base_literals - net.total_literals()
        candidate = balance(net.to_aig())
        if best is None or candidate.num_ands < best[1].num_ands:
            best = (threshold, candidate, saving)
    return best


def homogeneous_kernel_pass(aig: Aig, threshold: int,
                            config: Optional[KernelConfig] = None,
                            jobs: int = 1) -> KernelStats:
    """Ablation baseline: one fixed eliminate threshold network-wide.

    Used by the ablation benchmark to quantify the benefit of heterogeneous
    thresholds over the traditional homogeneous setting.
    """
    config = config or KernelConfig()
    single = KernelConfig(eliminate_thresholds=(threshold,),
                          max_cubes=config.max_cubes,
                          kernel_rounds=config.kernel_rounds,
                          partition=config.partition)
    return hetero_kernel_pass(aig, single, jobs=jobs)


register_engine("kernel", optimize_subaig)
