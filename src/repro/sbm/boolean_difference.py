"""Boolean-difference based resubstitution (Section III, Algorithms 1 and 2).

The engine rewrites a node ``f`` as ``f = ∂f/∂g ⊕ g`` where ``g`` is another
node of the same partition and ``∂f/∂g = f ⊕ g`` is the Boolean difference.
When the difference has a compact implementation — it often does for
reconvergent pairs sharing most of their logic — the rewrite reclaims ``f``'s
MFFC at the cost of the difference network plus one XOR.

The flow follows the paper closely:

* partitions come from the topological/support-similarity partitioner
  (Section III-B, :mod:`repro.partition`),
* BDDs for all partition nodes are precomputed into a hash table
  (Alg. 2 line 3) over the partition's leaves,
* per pair, the difference BDD is one XOR (Alg. 1 line 4), filtered by BDD
  size (≤10 by default) and by the saving estimate against ``xor_cost``,
* the accepted difference is strashed into the AIG (Alg. 1 line 15) with
  existing nodes reused via the BDD↔node hash table,
* memory-limit bailouts mark nodes as BDD-size-0 and skip them
  (Section III-C), and
* a new implementation of ``f`` is accepted when it reduces size or keeps it
  equal ("this second case could reshape the network ... and help escaping
  local minima", Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro import obs
from repro.aig.aig import Aig, lit, lit_node
from repro.bdd import pool as bdd_pool
from repro.bdd.manager import BddManager
from repro.bdd.to_aig import aig_window_to_bdds, bdd_to_aig
from repro.errors import BddLimitError
from repro.opt.shared import try_replace
from repro.parallel.scheduler import register_engine
from repro.partition.partitioner import Window
from repro.sbm.config import BooleanDifferenceConfig


@dataclass
class BooleanDifferenceStats:
    """Counters reported by a Boolean-difference pass."""

    partitions: int = 0
    pairs_tried: int = 0
    pairs_filtered_support: int = 0
    pairs_filtered_inclusion: int = 0
    pairs_filtered_bdd_size: int = 0
    pairs_filtered_saving: int = 0
    bdd_bailouts: int = 0
    rewrites: int = 0
    gain: int = 0
    #: total BDD nodes allocated across partition managers (memory proxy)
    bdd_nodes_allocated: int = 0


def publish_metrics(stats: BooleanDifferenceStats) -> None:
    """Push one Boolean-difference run's counters into the active registry."""
    registry = obs.metrics()
    if not registry.enabled:
        return
    # Bailouts and the size-limit filter are reported even at zero — the
    # absence of bailouts is itself what the report exists to show.
    registry.inc("bdiff.bdd_bailouts", stats.bdd_bailouts)
    registry.inc("bdiff.pairs_filtered_bdd_size",
                 stats.pairs_filtered_bdd_size)
    for name, value in (
            ("pairs_tried", stats.pairs_tried),
            ("pairs_filtered_support", stats.pairs_filtered_support),
            ("pairs_filtered_inclusion", stats.pairs_filtered_inclusion),
            ("pairs_filtered_saving", stats.pairs_filtered_saving),
            ("bdd_nodes_allocated", stats.bdd_nodes_allocated),
            ("rewrites", stats.rewrites),
            ("gain", stats.gain)):
        if value:
            registry.inc(f"bdiff.{name}", value)


def boolean_difference_pass(aig: Aig,
                            config: Optional[BooleanDifferenceConfig] = None,
                            jobs: int = 1,
                            window_timeout_s: Optional[float] = None,
                            chaos=None, chaos_scope: str = "",
                            pool=None) -> BooleanDifferenceStats:
    """Run Alg. 2 over every partition of the network; edits in place.

    Partitions are snapshot up front and optimized independently — inline
    and in partition order when ``jobs=1`` (the serial path), over a process
    pool when ``jobs>1`` — then spliced back in deterministic partition
    order, so the result is identical for every ``jobs`` value.
    """
    config = config or BooleanDifferenceConfig()
    from repro.parallel.scheduler import run_partitioned_pass
    report = run_partitioned_pass(aig, "bdiff", config, config.partition,
                                  jobs=jobs,
                                  window_timeout_s=window_timeout_s,
                                  chaos=chaos, chaos_scope=chaos_scope,
                                  pool=pool)
    stats = BooleanDifferenceStats(partitions=report.num_windows)
    for record in report.records:
        payload = record.payload
        stats.pairs_tried += payload.get("pairs_tried", 0)
        stats.pairs_filtered_support += payload.get(
            "pairs_filtered_support", 0)
        stats.pairs_filtered_inclusion += payload.get(
            "pairs_filtered_inclusion", 0)
        stats.pairs_filtered_bdd_size += payload.get(
            "pairs_filtered_bdd_size", 0)
        stats.pairs_filtered_saving += payload.get("pairs_filtered_saving", 0)
        stats.bdd_bailouts += payload.get("bdd_bailouts", 0)
        stats.bdd_nodes_allocated += payload.get("bdd_nodes_allocated", 0)
        if record.applied:
            stats.rewrites += payload.get("rewrites", 0)
            stats.gain += record.gain
    return stats


def optimize_subaig(sub: Aig,
                    config: Optional[BooleanDifferenceConfig] = None):
    """Worker entry point: Boolean-difference resub on one sub-AIG.

    Pure function of *sub* (the extracted window, leaves as PIs): returns
    ``(changed, optimized sub-AIG or None, payload)`` for the scheduler.
    """
    config = config or BooleanDifferenceConfig()
    stats = BooleanDifferenceStats()
    if sub.num_pis and sub.num_ands:
        from repro.parallel.window_io import whole_network_window
        optimize_partition(sub, whole_network_window(sub), config, stats)
    payload = {
        "pairs_tried": stats.pairs_tried,
        "pairs_filtered_support": stats.pairs_filtered_support,
        "pairs_filtered_inclusion": stats.pairs_filtered_inclusion,
        "pairs_filtered_bdd_size": stats.pairs_filtered_bdd_size,
        "pairs_filtered_saving": stats.pairs_filtered_saving,
        "bdd_bailouts": stats.bdd_bailouts,
        "bdd_nodes_allocated": stats.bdd_nodes_allocated,
        "rewrites": stats.rewrites,
        "gain": stats.gain,
    }
    publish_metrics(stats)
    changed = stats.rewrites > 0
    return changed, (sub.cleanup() if changed else None), payload


def optimize_partition(aig: Aig, window: Window,
                       config: BooleanDifferenceConfig,
                       stats: BooleanDifferenceStats) -> None:
    """Apply the Boolean-difference resubstitution inside one partition."""
    leaves = window.leaves
    if not leaves:
        return
    # Hot path: recycle a pooled manager's container capacity instead of
    # constructing from scratch; reset_for_reuse replays fresh-manager
    # state exactly, so node ids and bailout points are bit-identical.
    manager = bdd_pool.acquire(len(leaves), node_limit=config.bdd_node_limit)
    try:
        try:
            leaf_bdds = {leaf: manager.var(i) for i, leaf in enumerate(leaves)}
            leaf_literals = [2 * leaf for leaf in leaves]
            # Alg. 2 line 3: precompute and store all BDDs in the hash table.
            all_bdds = aig_window_to_bdds(aig, window.nodes, leaf_bdds, manager)
        except BddLimitError:
            # Even the variable nodes blow the budget: skip the partition, as
            # the paper's bailout does.
            stats.bdd_bailouts += 1
            return
        if config.reorder:
            # Extension the paper declines (Section III-C): sift the partition
            # BDDs to cut memory, paying reordering runtime.
            reordered = _reorder_partition(manager, all_bdds, leaf_literals)
            if reordered is None:
                stats.bdd_bailouts += 1
                return
            new_manager, all_bdds, leaf_literals = reordered
            if new_manager is not manager:
                bdd_pool.release(manager)
                manager = new_manager
        # Reverse table: BDD node -> existing AIG literal (first writer wins,
        # leaves preferred).  Implements Alg. 1 lines 5-7 and the sharing credit.
        bdd_to_lit: Dict[int, int] = {}
        for leaf in leaves:
            bdd_to_lit.setdefault(all_bdds[leaf], 2 * leaf)
        for n in window.nodes:
            b = all_bdds.get(n)
            if b is not None:
                bdd_to_lit.setdefault(b, 2 * n)
        supports: Dict[int, int] = {}

        def support_mask(node: int) -> int:
            mask = supports.get(node)
            if mask is None:
                mask = 0
                for v in manager.support(all_bdds[node]):
                    mask |= 1 << v
                supports[node] = mask
            return mask

        pairs_in_partition = 0
        candidates = list(window.nodes)
        for f in candidates:
            if pairs_in_partition >= config.max_pairs_per_partition:
                break
            if aig.is_dead(f) or not aig.is_and(f) or f not in all_bdds:
                continue
            bdd_f = all_bdds[f]
            mffc = aig.mffc_size(f)
            pairs_for_node = 0
            for g in candidates:
                if pairs_for_node >= config.max_pairs_per_node:
                    break
                if g == f or aig.is_dead(g) or g not in all_bdds:
                    continue
                bdd_g = all_bdds[g]
                # Trivial-pair filters (Alg. 2 line 9): direct fanins make
                # degenerate differences, and disjoint supports cannot share.
                if g in (lit_node(x) for x in aig.fanins(f)):
                    stats.pairs_filtered_inclusion += 1
                    continue
                shared = support_mask(f) & support_mask(g)
                if bin(shared).count("1") < config.min_shared_support:
                    stats.pairs_filtered_support += 1
                    continue
                pairs_for_node += 1
                pairs_in_partition += 1
                stats.pairs_tried += 1
                gain = _try_difference(aig, manager, f, g, bdd_f, bdd_g,
                                       leaf_literals, bdd_to_lit, mffc,
                                       config, stats)
                if gain is not None:
                    stats.rewrites += 1
                    stats.gain += gain
                    # The rewrite may have killed nodes the reverse table still
                    # references; drop stale entries so later builds stay valid.
                    stale = [b for b, l in bdd_to_lit.items()
                             if aig.is_dead(lit_node(l))]
                    for b in stale:
                        del bdd_to_lit[b]
                    break  # f was replaced; move to the next node
        stats.bdd_nodes_allocated += manager.num_nodes
    finally:
        # Cache clearing is the paper's per-iteration memory discipline;
        # releasing (hot path) keeps the unique table warm for the next
        # partition instead of discarding it.
        manager.clear_caches()
        bdd_pool.release(manager)


def _reorder_partition(manager: BddManager, all_bdds: Dict[int, int],
                       leaf_literals: List[int]):
    """Sift the partition's BDDs; returns remapped (manager, bdds, literals).

    Returns None when the rebuild trips the node limit.
    """
    from repro.bdd.reorder import sift
    from repro.errors import BddLimitError as _Limit
    nodes = list(all_bdds)
    roots = [all_bdds[n] for n in nodes]
    try:
        new_manager, new_roots, order = sift(manager, roots, max_passes=1)
    except _Limit:
        return None
    remapped = {node: root for node, root in zip(nodes, new_roots)}
    # Position i of the new manager holds old variable order[i], so the
    # AIG literal feeding it moves accordingly.
    new_literals = [leaf_literals[old_var] for old_var in order]
    new_manager.node_limit = manager.node_limit
    return new_manager, remapped, new_literals


def _try_difference(aig: Aig, manager: BddManager, f: int, g: int,
                    bdd_f: int, bdd_g: int, leaf_literals: List[int],
                    bdd_to_lit: Dict[int, int], mffc: int,
                    config: BooleanDifferenceConfig,
                    stats: BooleanDifferenceStats) -> Optional[int]:
    """Alg. 1: compute, filter, and implement ``∂f/∂g ⊕ g`` for one pair."""
    try:
        bdd_diff = manager.apply_xor(bdd_f, bdd_g)
    except BddLimitError:
        stats.bdd_bailouts += 1
        return None
    # Existing-node reuse (lines 5-7): cost of the difference becomes 0.
    known = bdd_to_lit.get(bdd_diff)
    if known is None:
        size = manager.size(bdd_diff)
        if size > config.bdd_size_limit:
            stats.pairs_filtered_bdd_size += 1
            return None
        # Saving filter (lines 11-14).  The BDD size lower-bounds the AIG
        # implementation cost; sharing with existing nodes only helps.
        if size + config.xor_cost > mffc + _sharing_credit(manager, bdd_diff,
                                                           bdd_to_lit):
            stats.pairs_filtered_saving += 1
            return None

    def build() -> int:
        if known is not None:
            diff_lit = known
        else:
            diff_lit = bdd_to_aig(manager, bdd_diff, aig, leaf_literals,
                                  known=bdd_to_lit)
        return aig.add_xor(diff_lit, lit(g))

    min_gain = 0 if config.accept_zero_gain else 1
    return try_replace(aig, f, build, min_gain=min_gain)


def _sharing_credit(manager: BddManager, bdd_diff: int,
                    bdd_to_lit: Dict[int, int]) -> int:
    """Number of difference sub-BDDs that already exist as network nodes.

    Approximates the "total sharing of nodes between the Boolean difference
    implementation and the existing network" term of Alg. 1 line 11.
    """
    credit = 0
    seen: Set[int] = set()
    stack = [bdd_diff]
    while stack:
        node = stack.pop()
        if node <= 1 or node in seen:
            continue
        seen.add(node)
        if node in bdd_to_lit:
            credit += 1
            continue  # everything below is covered by the existing node
        stack.append(manager.low(node))
        stack.append(manager.high(node))
    return credit


register_engine("bdiff", optimize_subaig)
