"""Maximum Set of Permissible Functions (MSPF) computation with BDDs.

Section IV-C revisits MSPF — the strongest classical don't-care
interpretation (Muroga's transduction method) — with BDDs on medium-size
partitions:

* nodes are processed in topological order, "further sorted w.r.t. an
  estimated saving metric" (we use MFFC size),
* per node the positive/negative cofactors of every partition output with
  respect to the node are computed by substituting a fresh BDD variable at
  the node and cofactoring,
* ``mspf(node) = ∧_i ((¬f0(po_i) ⊕ f1(po_i)) ∨ dc(po_i))``, with the loop
  stopping early "if at any point ... mspf(node) = bdd(0)",
* the permissible set then drives resubstitution: a replacement ``new`` is
  *connectable* when ``bdd(new) ∧ ¬mspf = bdd(old) ∧ ¬mspf`` — and thanks to
  BDD canonicity we search for *many* connectable fanins at once and try an
  irredundant subset, the key enhancement over the truth-table MSPF of [1],
* BDD memory-limit bailouts set the node's BDD size to 0 and move on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import hotpath, obs
from repro.aig.aig import Aig, lit, lit_node
from repro.bdd import pool as bdd_pool
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.to_aig import aig_window_to_bdds
from repro.errors import BddLimitError
from repro.opt.shared import try_replace
from repro.parallel.scheduler import register_engine
from repro.partition.partitioner import Window
from repro.sbm.config import MspfConfig


@dataclass
class MspfStats:
    """Counters reported by an MSPF optimization pass."""

    partitions: int = 0
    nodes_processed: int = 0
    mspf_nonzero: int = 0
    bdd_bailouts: int = 0
    connectable_found: int = 0
    rewrites: int = 0
    gain: int = 0


def publish_metrics(stats: MspfStats) -> None:
    """Push one MSPF run's counters into the active metrics registry.

    Called from the worker entry point (against the worker's local
    registry, shipped back in the window payload) and from the gradient
    moves that run MSPF inline (against the parent registry), so
    ``mspf.*`` counters aggregate every MSPF execution of the run.
    """
    registry = obs.metrics()
    if not registry.enabled:
        return
    # Bailouts are reported even at zero — "no bailout happened" is itself
    # the answer the report exists to give.
    registry.inc("mspf.bdd_bailouts", stats.bdd_bailouts)
    for name, value in (("nodes_processed", stats.nodes_processed),
                        ("mspf_nonzero", stats.mspf_nonzero),
                        ("connectable_found", stats.connectable_found),
                        ("rewrites", stats.rewrites),
                        ("gain", stats.gain)):
        if value:
            registry.inc(f"mspf.{name}", value)


def mspf_pass(aig: Aig, config: Optional[MspfConfig] = None, jobs: int = 1,
              window_timeout_s: Optional[float] = None,
              chaos=None, chaos_scope: str = "", pool=None) -> MspfStats:
    """Run BDD-based MSPF optimization over every partition; edits in place.

    Partitions are snapshot up front and optimized independently — inline
    and in partition order when ``jobs=1`` (the serial path), over a process
    pool when ``jobs>1`` — then spliced back in deterministic partition
    order, so the result is identical for every ``jobs`` value.  MSPF
    validity is unaffected by the snapshot: each window's observability
    boundary (its roots) becomes the PO set of the extracted sub-network,
    exactly the boundary the permissible functions are computed against.
    """
    config = config or MspfConfig()
    from repro.parallel.scheduler import run_partitioned_pass
    report = run_partitioned_pass(aig, "mspf", config, config.partition,
                                  jobs=jobs,
                                  window_timeout_s=window_timeout_s,
                                  chaos=chaos, chaos_scope=chaos_scope,
                                  pool=pool)
    stats = MspfStats(partitions=report.num_windows)
    for record in report.records:
        payload = record.payload
        stats.nodes_processed += payload.get("nodes_processed", 0)
        stats.mspf_nonzero += payload.get("mspf_nonzero", 0)
        stats.bdd_bailouts += payload.get("bdd_bailouts", 0)
        stats.connectable_found += payload.get("connectable_found", 0)
        if record.applied:
            stats.rewrites += payload.get("rewrites", 0)
            stats.gain += record.gain
    return stats


def optimize_subaig(sub: Aig, config: Optional[MspfConfig] = None):
    """Worker entry point: MSPF resubstitution on one extracted sub-AIG.

    Pure function of *sub*: the window's leaves are the sub-network's PIs
    and its roots the POs, so the whole sub-network is one MSPF window.
    Returns ``(changed, optimized sub-AIG or None, payload)``.
    """
    config = config or MspfConfig()
    stats = MspfStats()
    if sub.num_pis and sub.num_ands:
        from repro.parallel.window_io import whole_network_window
        optimize_partition(sub, whole_network_window(sub), config, stats)
    payload = {
        "nodes_processed": stats.nodes_processed,
        "mspf_nonzero": stats.mspf_nonzero,
        "bdd_bailouts": stats.bdd_bailouts,
        "connectable_found": stats.connectable_found,
        "rewrites": stats.rewrites,
        "gain": stats.gain,
    }
    publish_metrics(stats)
    changed = stats.rewrites > 0
    return changed, (sub.cleanup() if changed else None), payload


def optimize_partition(aig: Aig, window: Window, config: MspfConfig,
                       stats: MspfStats) -> None:
    """MSPF-based resubstitution inside one partition."""
    # Earlier edits elsewhere can change the window's boundary (fanins
    # rewired outside it) and which nodes are externally referenced; MSPF
    # validity requires the *current* observability boundary, so recompute
    # the whole window against the network's present state.
    from repro.partition.partitioner import refresh_window
    refreshed = refresh_window(aig, window)
    if refreshed is None or not refreshed.leaves:
        return
    window = refreshed
    leaves = window.leaves
    root_set = set(window.roots)
    nodes = [n for n in window.nodes if n not in root_set]
    if not nodes:
        return
    # Estimated-saving ordering: big MFFCs first within the topological list.
    nodes.sort(key=lambda n: -aig.mffc_size(n))
    alive = list(window.nodes)
    rebuilt = _window_bdds(aig, window, alive, config)
    if rebuilt is None:
        return
    manager, all_bdds, z_var = rebuilt
    try:
        for n in nodes:
            if aig.is_dead(n) or not aig.is_and(n) or n not in all_bdds:
                continue
            if n in root_set:
                # Cascade merges during earlier rewrites can promote a member
                # to the observability boundary; never optimize a current root.
                continue
            stats.nodes_processed += 1
            mspf = _compute_mspf(aig, window, manager, all_bdds, z_var, n,
                                 config, stats)
            if mspf is None or mspf == FALSE:
                continue
            stats.mspf_nonzero += 1
            try:
                gain = _resub_under_mspf(aig, window, manager, all_bdds, n,
                                         mspf, config, stats)
            except BddLimitError:
                # Memory-limit bailout (Section IV-C): "the algorithm sets the
                # BDD size of the node to 0 ... the computation can then
                # continue by considering the other nodes."
                stats.bdd_bailouts += 1
                continue
            if gain:
                stats.rewrites += 1
                stats.gain += gain
                # Internal functions changed (within their permissible sets)
                # and cascade merges may have moved the observability
                # boundary: refresh the whole window and its BDDs before
                # judging further nodes.
                refreshed = refresh_window(aig, window)
                if refreshed is None:
                    return
                window = refreshed
                root_set = set(window.roots)
                alive = list(window.nodes)
                # Hot path: recycle the window's own manager (container
                # capacity, not nodes) instead of constructing a fresh
                # one per rebuild; reset_for_reuse replays fresh-manager
                # state exactly.
                reuse, manager = manager, None
                rebuilt = _window_bdds(aig, window, alive, config,
                                       reuse=reuse)
                if rebuilt is None:
                    return
                manager, all_bdds, z_var = rebuilt
    finally:
        if manager is not None:
            bdd_pool.release(manager)


def _window_bdds(aig: Aig, window: Window, alive: List[int],
                 config: MspfConfig, reuse: Optional[BddManager] = None):
    """(manager, node→bdd, z variable) for the window, or None on bailout."""
    num_vars = len(window.leaves) + 1
    if reuse is not None and hotpath.enabled():
        manager = reuse
        manager.reset_for_reuse(num_vars, node_limit=config.bdd_node_limit)
    else:
        manager = bdd_pool.acquire(num_vars,
                                   node_limit=config.bdd_node_limit)
    try:
        z_var = len(window.leaves)
        leaf_bdds = {leaf: manager.var(i)
                     for i, leaf in enumerate(window.leaves)}
        all_bdds = aig_window_to_bdds(aig, [n for n in alive if aig.is_and(n)],
                                      leaf_bdds, manager)
    except BddLimitError:
        return None
    return manager, all_bdds, z_var


def _compute_mspf(aig: Aig, window: Window, manager: BddManager,
                  all_bdds: Dict[int, int], z_var: int, node: int,
                  config: MspfConfig, stats: MspfStats,
                  output_dcs: Optional[Dict[int, int]] = None) -> Optional[int]:
    """The paper's MSPF loop for one node; None on memory bailout.

    ``output_dcs`` optionally maps root node → pre-existing don't-care BDD
    (the ``dc(po_i)`` term).
    """
    try:
        with_z = _bdds_with_free_node(aig, window, manager, all_bdds,
                                      z_var, node)
        if with_z is None:
            return None
        mspf = TRUE
        for root in window.roots:
            fz = with_z.get(root)
            if fz is None:
                return None
            f0 = manager.cofactor(fz, z_var, False)
            f1 = manager.cofactor(fz, z_var, True)
            insensitive = manager.apply_xnor(f0, f1)
            if output_dcs and root in output_dcs:
                insensitive = manager.apply_or(insensitive, output_dcs[root])
            mspf = manager.apply_and(mspf, insensitive)
            if mspf == FALSE:
                return FALSE  # early stop (Section IV-C)
        return mspf
    except BddLimitError:
        stats.bdd_bailouts += 1
        return None


def _bdds_with_free_node(aig: Aig, window: Window, manager: BddManager,
                         all_bdds: Dict[int, int], z_var: int,
                         node: int) -> Optional[Dict[int, int]]:
    """Window BDDs recomputed with *node* treated as free variable ``z``."""
    from repro.aig.aig import lit_is_compl
    values: Dict[int, int] = {}
    for leaf in window.leaves:
        values[leaf] = all_bdds[leaf] if leaf in all_bdds else None
        if values[leaf] is None:
            return None
    values[0] = FALSE
    values[node] = manager.var(z_var)
    for n in window.nodes:
        if n == node or aig.is_dead(n) or not aig.is_and(n):
            continue
        if n in values:
            continue
        f0, f1 = aig.fanins(n)
        b0 = values.get(lit_node(f0), all_bdds.get(lit_node(f0)))
        b1 = values.get(lit_node(f1), all_bdds.get(lit_node(f1)))
        if b0 is None or b1 is None:
            return None
        # Fanins untouched by z keep their cached BDD; reuse saves work.
        if lit_node(f0) not in values:
            values[lit_node(f0)] = b0
        if lit_node(f1) not in values:
            values[lit_node(f1)] = b1
        if lit_is_compl(f0):
            b0 = manager.negate(b0)
        if lit_is_compl(f1):
            b1 = manager.negate(b1)
        values[n] = manager.apply_and(b0, b1)
    return values


def _resub_under_mspf(aig: Aig, window: Window, manager: BddManager,
                      all_bdds: Dict[int, int], node: int, mspf: int,
                      config: MspfConfig, stats: MspfStats) -> int:
    """Try constants and connectable existing nodes under the MSPF."""
    care = manager.negate(mspf)
    bdd_node = all_bdds[node]
    on_care = manager.apply_and(bdd_node, care)
    # Constants first: biggest wins.
    if on_care == FALSE:
        gain = try_replace(aig, node, lambda: 0, min_gain=1)
        if gain:
            return gain
    if manager.apply_and(manager.negate(bdd_node), care) == FALSE:
        gain = try_replace(aig, node, lambda: 1, min_gain=1)
        if gain:
            return gain
    # Many connectable candidates at once (BDD canonicity makes each check a
    # single AND + pointer compare); keep an irredundant subset ordered by
    # the reclaimable MFFC.
    candidates: List[Tuple[int, int]] = []  # (candidate literal, priority)
    for d in window.leaves + window.nodes:
        if d == node or aig.is_dead(d) or d not in all_bdds:
            continue
        bdd_d = all_bdds[d]
        if manager.apply_and(bdd_d, care) == on_care:
            candidates.append((lit(d), 0))
        elif manager.apply_and(manager.negate(bdd_d), care) == on_care:
            candidates.append((lit(d, True), 0))
        if len(candidates) >= config.max_connectable_fanins:
            break
    stats.connectable_found += len(candidates)
    for candidate, _priority in candidates:
        gain = try_replace(aig, node, lambda c=candidate: c, min_gain=1)
        if gain:
            return gain
    return 0


register_engine("mspf", optimize_subaig)
