"""Control-dominated benchmark generators (arbiter, priority, voter, ...).

The EPFL control benchmarks are distributed as AIGER files; offline, we
regenerate their *functions* structurally:

* ``arbiter`` — a round-robin arbiter: requests plus a rotating priority
  mask produce one-hot grants and an "any grant" flag (the EPFL arbiter has
  256 inputs / 129 outputs; ours matches that profile at width 128).
* ``priority`` — a priority encoder (128 requests → 7-bit index + valid).
* ``voter`` — majority-of-N (N = 1001 in the suite).
* ``router`` — longest-prefix-match routing decision logic.
* ``i2c``/``mem_ctrl``/``cavlc`` — flattened controller next-state/output
  logic.  The originals are RTL dumps under NDA-free but unreproducible
  exact netlists; we synthesize *seeded, deterministic* control functions
  with the same I/O profile and comparable gate-count character, which
  exercises the same optimization code paths (documented in DESIGN.md).
"""

from __future__ import annotations

import random
from typing import List

from repro.aig.aig import CONST0, Aig, lit_not
from repro.aig.compose import (
    constant_word,
    decoder,
    equal,
    less_than,
    mux_word,
    onehot_mux,
    popcount,
    ripple_adder,
)
from repro.errors import BenchmarkError


def arbiter(width: int = 128) -> Aig:
    """Round-robin arbiter: ``2*width`` inputs, ``width + 1`` outputs.

    Inputs are *width* request lines and a *width*-bit one-hot-ish priority
    mask; outputs are one-hot grants plus an "any grant" flag.  The grant
    logic is the classic double priority chain: grant the first request at
    or above the masked position, else the first request overall.
    """
    aig = Aig(f"arbiter{width}")
    req = aig.add_pis(width, "req")
    mask = aig.add_pis(width, "mask")
    # Chain 1: requests at positions where the rotating mask has passed.
    masked = [aig.add_and(r, m) for r, m in zip(req, mask)]
    grant_masked = _priority_chain(aig, masked)
    any_masked = aig.add_or_multi(masked)
    # Chain 2: unmasked fallback.
    grant_all = _priority_chain(aig, req)
    grants = mux_word(aig, any_masked, grant_masked, grant_all)
    for i, g in enumerate(grants):
        aig.add_po(g, f"grant{i}")
    aig.add_po(aig.add_or_multi(list(req)), "any")
    return aig


def _priority_chain(aig: Aig, requests: List[int]) -> List[int]:
    """One-hot "first request wins" chain."""
    grants = []
    blocked = CONST0
    for r in requests:
        grants.append(aig.add_and(r, lit_not(blocked)))
        blocked = aig.add_or(blocked, r)
    return grants


def priority_encoder(width: int = 128) -> Aig:
    """Priority encoder: *width* requests → index bits + valid flag.

    Matches the EPFL ``priority`` profile (128 inputs / 8 outputs).
    """
    aig = Aig(f"priority{width}")
    req = aig.add_pis(width, "req")
    index_bits = max(1, (width - 1).bit_length())
    grants = _priority_chain(aig, req)
    for b in range(index_bits):
        terms = [g for i, g in enumerate(grants) if (i >> b) & 1]
        aig.add_po(aig.add_or_multi(terms), f"idx{b}")
    aig.add_po(aig.add_or_multi(list(req)), "valid")
    return aig


def voter(width: int = 1001) -> Aig:
    """Majority voter: 1 when more than half of the inputs are 1."""
    if width % 2 == 0:
        raise BenchmarkError("voter width must be odd")
    aig = Aig(f"voter{width}")
    votes = aig.add_pis(width, "v")
    count = popcount(aig, votes)
    threshold = constant_word(width // 2, len(count))
    aig.add_po(_greater(aig, count, threshold), "maj")
    return aig


def _greater(aig: Aig, a: List[int], b: List[int]) -> int:
    """a > b (unsigned)."""
    return less_than(aig, b, a)


def router(num_entries: int = 8, prefix_bits: int = 6,
           port_bits: int = 4) -> Aig:
    """Longest-prefix-match router decision logic.

    A destination address is compared against *num_entries* table entries
    (address + mask-length, baked in pseudo-randomly but deterministically);
    the matching entry with the longest prefix selects an output port.
    Profile chosen to approximate the EPFL ``router`` (60 in / 30 out):
    inputs = address + per-entry enables, outputs = port one-hot + index.
    """
    rng = random.Random(0x9041)
    aig = Aig(f"router{num_entries}x{prefix_bits}")
    addr = aig.add_pis(prefix_bits * 2, "addr")
    enables = aig.add_pis(num_entries, "en")
    matches: List[int] = []
    lengths: List[int] = []
    for e in range(num_entries):
        plen = rng.randint(1, prefix_bits * 2)
        pattern = rng.getrandbits(plen)
        bits = [lit_not(addr[i]) if not (pattern >> i) & 1 else addr[i]
                for i in range(plen)]
        matches.append(aig.add_and(aig.add_and_multi(bits), enables[e]))
        lengths.append(plen)
    # Longest prefix wins: sort entries by length descending, priority chain.
    order = sorted(range(num_entries), key=lambda e: -lengths[e])
    winners = _priority_chain(aig, [matches[e] for e in order])
    ports = []
    for e in order:
        ports.append(rng.randrange(1 << port_bits))
    for b in range(port_bits):
        aig.add_po(aig.add_or_multi(
            [w for w, p in zip(winners, ports) if (p >> b) & 1]), f"port{b}")
    for i, w in enumerate(winners):
        aig.add_po(w, f"hit{i}")
    aig.add_po(aig.add_or_multi(matches), "match")
    return aig


def control_function(name: str, num_inputs: int, num_outputs: int,
                     num_terms: int = 24, seed: int = 7) -> Aig:
    """Seeded synthetic control logic with a given I/O profile.

    Each output is a deterministic pseudo-random AND-OR expression over the
    inputs plus a few shared sub-expressions (giving the kernels and shared
    divisors real controllers exhibit).  Stands in for the flattened
    ``i2c`` / ``mem_ctrl`` / ``cavlc`` controller dumps.
    """
    rng = random.Random(seed)
    aig = Aig(name)
    inputs = aig.add_pis(num_inputs, "x")
    # Shared sub-expressions: the "state decoding" layer.
    shared: List[int] = []
    for _ in range(max(4, num_inputs // 4)):
        k = rng.randint(2, 4)
        lits = [inputs[rng.randrange(num_inputs)] ^ rng.getrandbits(1)
                for _ in range(k)]
        shared.append(aig.add_and_multi(lits))
    pool = inputs + shared
    for o in range(num_outputs):
        terms = []
        for _ in range(rng.randint(2, max(3, num_terms // 4))):
            k = rng.randint(2, 5)
            lits = [pool[rng.randrange(len(pool))] ^ rng.getrandbits(1)
                    for _ in range(k)]
            terms.append(aig.add_and_multi(lits))
        aig.add_po(aig.add_or_multi(terms) ^ rng.getrandbits(1), f"y{o}")
    return aig


def i2c_like(scale: float = 1.0, seed: int = 0x12C) -> Aig:
    """Flattened I2C-controller-style logic (EPFL profile 147 in / 142 out)."""
    n_in = max(8, int(147 * scale))
    n_out = max(8, int(142 * scale))
    return control_function(f"i2c[{scale}]", n_in, n_out, num_terms=16,
                            seed=seed)


def mem_ctrl_like(scale: float = 1.0, seed: int = 0x3E3) -> Aig:
    """Memory-controller-style logic (EPFL profile 1204 in / 1231 out)."""
    n_in = max(16, int(1204 * scale))
    n_out = max(16, int(1231 * scale))
    return control_function(f"mem_ctrl[{scale}]", n_in, n_out, num_terms=28,
                            seed=seed)


def cavlc_like(seed: int = 0xCA7) -> Aig:
    """CAVLC-encoder-style logic (EPFL profile 10 in / 11 out).

    Dense 10-input control: outputs mix comparisons and table lookups of the
    input word, giving the reconvergent structure the real CAVLC table has.
    """
    aig = Aig("cavlc")
    xs = aig.add_pis(10, "x")
    rng = random.Random(seed)
    lo, hi = xs[:5], xs[5:]
    # Arithmetic spine: sum and comparison of the two halves.
    total, carry = ripple_adder(aig, lo, hi)
    lt = less_than(aig, lo, hi)
    eq = equal(aig, lo, hi)
    pool = total + [carry, lt, eq] + xs
    for o in range(11):
        terms = []
        for _ in range(rng.randint(3, 6)):
            k = rng.randint(2, 4)
            lits = [pool[rng.randrange(len(pool))] ^ rng.getrandbits(1)
                    for _ in range(k)]
            terms.append(aig.add_and_multi(lits))
        aig.add_po(aig.add_or_multi(terms), f"y{o}")
    return aig


def max_unit(width: int = 128, operands: int = 4) -> Aig:
    """EPFL ``max``: the maximum of several words plus its index.

    The native profile (512 in / 130 out) corresponds to four 128-bit
    operands with a 128-bit value output and a 2-bit argmax.
    """
    aig = Aig(f"max{operands}x{width}")
    words = [aig.add_pis(width, f"w{i}_") for i in range(operands)]
    best = words[0]
    index_bits = max(1, (operands - 1).bit_length())
    best_index = constant_word(0, index_bits)
    for i in range(1, operands):
        is_bigger = less_than(aig, best, words[i])
        best = mux_word(aig, is_bigger, words[i], best)
        best_index = mux_word(aig, is_bigger, constant_word(i, index_bits),
                              best_index)
    for i, b in enumerate(best):
        aig.add_po(b, f"max{i}")
    for i, b in enumerate(best_index):
        aig.add_po(b, f"idx{i}")
    return aig
