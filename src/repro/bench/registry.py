"""EPFL benchmark registry: generators plus the paper's reference numbers.

Table I of the paper reports the new best LUT-6 area results and Table II
the smallest-known AIG sizes for the EPFL suite.  This registry records
those reference values next to each generator so the experiment harnesses
can print paper-vs-measured rows, and defines the *scaled* configuration
each experiment uses by default (pure-Python engines are ~100× slower than
the paper's C++ implementation; the scaled widths keep every code path
identical at laptop-scale runtimes — see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.aig.aig import Aig
from repro.bench import arith, control


@dataclass(frozen=True)
class PaperReference:
    """Numbers reported by the paper for one benchmark."""

    io: Tuple[int, int]
    table1_luts: Optional[int] = None     # Table I "LUT-6 count"
    table1_levels: Optional[int] = None   # Table I "Level count"
    table2_size: Optional[int] = None     # Table II "Size AIG"
    table2_levels: Optional[int] = None   # Table II "Level count"


@dataclass(frozen=True)
class Benchmark:
    """A generator with native and scaled configurations."""

    name: str
    native: Callable[[], Aig]
    scaled: Callable[[], Aig]
    reference: PaperReference
    kind: str  # "arith" or "control"


#: Paper values transcribed from Tables I and II.
PAPER = {
    "arbiter": PaperReference((256, 129), 365, 117, 879, 228),
    "cavlc": PaperReference((10, 11), None, None, 483, 78),
    "div": PaperReference((128, 128), 3267, 1211, 19250, 6228),
    "i2c": PaperReference((147, 142), 207, 15, 710, 25),
    "log2": PaperReference((32, 32), 6567, 119, 30522, 348),
    "max": PaperReference((512, 130), 522, 189, None, None),
    "mem_ctrl": PaperReference((1204, 1231), 2086, 23, 7644, 40),
    "mult": PaperReference((128, 128), 4920, 93, 25371, 317),
    "priority": PaperReference((128, 8), 103, 26, None, None),
    "router": PaperReference((60, 30), None, None, 96, 21),
    "sin": PaperReference((24, 25), 1227, 55, 4987, 153),
    "hypotenuse": PaperReference((256, 128), 40377, 4530, 209460, 24926),
    "sqrt": PaperReference((128, 64), 3075, 1106, 19706, 5399),
    "square": PaperReference((64, 128), 3242, 76, 17010, 343),
    "voter": PaperReference((1001, 1), None, None, 9817, 66),
    "adder": PaperReference((256, 129)),
    "bar": PaperReference((135, 128)),
}


BENCHMARKS: Dict[str, Benchmark] = {
    "adder": Benchmark("adder", lambda: arith.adder(128),
                       lambda: arith.adder(16), PAPER["adder"], "arith"),
    "bar": Benchmark("bar", lambda: arith.bar(128),
                     lambda: arith.bar(16), PAPER["bar"], "arith"),
    "div": Benchmark("div", lambda: arith.div(64),
                     lambda: arith.div(8), PAPER["div"], "arith"),
    "hypotenuse": Benchmark("hypotenuse", lambda: arith.hypotenuse_unit(128),
                            lambda: arith.hypotenuse_unit(8),
                            PAPER["hypotenuse"], "arith"),
    "log2": Benchmark("log2", lambda: arith.log2_unit(32),
                      lambda: arith.log2_unit(6), PAPER["log2"], "arith"),
    "max": Benchmark("max", lambda: control.max_unit(128, 4),
                     lambda: control.max_unit(12, 4), PAPER["max"], "control"),
    "mult": Benchmark("mult", lambda: arith.mult(64),
                      lambda: arith.mult(8), PAPER["mult"], "arith"),
    "sin": Benchmark("sin", lambda: arith.sin_unit(24),
                     lambda: arith.sin_unit(8, iterations=6),
                     PAPER["sin"], "arith"),
    "sqrt": Benchmark("sqrt", lambda: arith.sqrt(128),
                      lambda: arith.sqrt(16), PAPER["sqrt"], "arith"),
    "square": Benchmark("square", lambda: arith.square_unit(64),
                        lambda: arith.square_unit(8), PAPER["square"], "arith"),
    "arbiter": Benchmark("arbiter", lambda: control.arbiter(128),
                         lambda: control.arbiter(16),
                         PAPER["arbiter"], "control"),
    "cavlc": Benchmark("cavlc", control.cavlc_like, control.cavlc_like,
                       PAPER["cavlc"], "control"),
    "i2c": Benchmark("i2c", lambda: control.i2c_like(1.0),
                     lambda: control.i2c_like(0.15), PAPER["i2c"], "control"),
    "mem_ctrl": Benchmark("mem_ctrl", lambda: control.mem_ctrl_like(1.0),
                          lambda: control.mem_ctrl_like(0.03),
                          PAPER["mem_ctrl"], "control"),
    "priority": Benchmark("priority", lambda: control.priority_encoder(128),
                          lambda: control.priority_encoder(32),
                          PAPER["priority"], "control"),
    "router": Benchmark("router", control.router, control.router,
                        PAPER["router"], "control"),
    "voter": Benchmark("voter", lambda: control.voter(1001),
                       lambda: control.voter(101), PAPER["voter"], "control"),
    # Mid-width variants of the four BDD-hostile arithmetic benchmarks —
    # the simulation-guided resubstitution coverage cases.  Big enough
    # that the BDD-filtered engines hit their memory bailouts, small
    # enough for the nightly campaign; native == scaled (one config).
    "log2_large": Benchmark("log2_large", lambda: arith.log2_unit(10),
                            lambda: arith.log2_unit(10),
                            PAPER["log2"], "arith"),
    "mult_large": Benchmark("mult_large", lambda: arith.mult(12),
                            lambda: arith.mult(12), PAPER["mult"], "arith"),
    "div_large": Benchmark("div_large", lambda: arith.div(12),
                           lambda: arith.div(12), PAPER["div"], "arith"),
    "hypotenuse_large": Benchmark("hypotenuse_large",
                                  lambda: arith.hypotenuse_unit(12),
                                  lambda: arith.hypotenuse_unit(12),
                                  PAPER["hypotenuse"], "arith"),
    # 2×-width variants of the four fastest scaled benchmarks — the
    # nightly fleet's scale tier (`--tier nightly-scaled`).  Doubling
    # the width roughly quadruples the AND count, which is what makes a
    # three-shard split pay off without blowing the nightly wall clock;
    # native == scaled (one config).
    "adder_x2": Benchmark("adder_x2", lambda: arith.adder(32),
                          lambda: arith.adder(32), PAPER["adder"], "arith"),
    "bar_x2": Benchmark("bar_x2", lambda: arith.bar(32),
                        lambda: arith.bar(32), PAPER["bar"], "arith"),
    "arbiter_x2": Benchmark("arbiter_x2", lambda: control.arbiter(32),
                            lambda: control.arbiter(32),
                            PAPER["arbiter"], "control"),
    "priority_x2": Benchmark("priority_x2",
                             lambda: control.priority_encoder(64),
                             lambda: control.priority_encoder(64),
                             PAPER["priority"], "control"),
}

#: Benchmarks appearing in the paper's Table I (new best LUT-6 results).
TABLE1_BENCHMARKS: List[str] = [
    "arbiter", "div", "i2c", "log2", "max", "mem_ctrl", "mult",
    "priority", "sin", "hypotenuse", "sqrt", "square",
]

#: Benchmarks appearing in the paper's Table II (smallest AIGs).
TABLE2_BENCHMARKS: List[str] = [
    "arbiter", "cavlc", "div", "i2c", "log2", "mem_ctrl", "mult",
    "router", "sin", "hypotenuse", "sqrt", "square", "voter",
]


def get_benchmark(name: str, scaled: bool = True) -> Aig:
    """Instantiate a registered benchmark by name."""
    bench = BENCHMARKS[name]
    return bench.scaled() if scaled else bench.native()


def benchmark_names() -> List[str]:
    """All registered benchmark names, sorted."""
    return sorted(BENCHMARKS)
