"""Arithmetic benchmark generators (adder, mult, div, sqrt, log2, sin, ...).

Wraps the word-level builders of :mod:`repro.aig.compose` into the EPFL
arithmetic benchmark profiles, plus digit-recurrence implementations of the
transcendental ones:

* ``log2`` — binary logarithm by the repeated-squaring digit recurrence
  (normalize, then one mantissa squaring per fraction bit), the same
  multiplier-dominated character as the EPFL ``log2``.
* ``sin`` — CORDIC rotation mode: shift-and-add iterations with baked-in
  arctangent constants.
"""

from __future__ import annotations

import math
from typing import List

from repro.aig.aig import CONST0, Aig, lit_not
from repro.aig.compose import (
    barrel_shifter,
    constant_word,
    divider,
    hypotenuse,
    isqrt,
    less_than,
    multiplier,
    mux_word,
    ripple_adder,
    square,
    subtractor,
)


def adder(width: int = 128) -> Aig:
    """EPFL ``adder``: two *width*-bit operands → sum and carry."""
    aig = Aig(f"adder{width}")
    a = aig.add_pis(width, "a")
    b = aig.add_pis(width, "b")
    total, carry = ripple_adder(aig, a, b)
    for i, s in enumerate(total):
        aig.add_po(s, f"s{i}")
    aig.add_po(carry, "cout")
    return aig


def bar(data_width: int = 128) -> Aig:
    """EPFL ``bar``: barrel shifter (128-bit data, log2 shift amount)."""
    aig = Aig(f"bar{data_width}")
    data = aig.add_pis(data_width, "d")
    shift = aig.add_pis(max(1, (data_width - 1).bit_length()), "s")
    out = barrel_shifter(aig, data, shift)
    for i, o in enumerate(out):
        aig.add_po(o, f"q{i}")
    return aig


def mult(width: int = 128) -> Aig:
    """EPFL ``mult``: *width* × *width* unsigned array multiplier."""
    aig = Aig(f"mult{width}")
    a = aig.add_pis(width, "a")
    b = aig.add_pis(width, "b")
    for i, p in enumerate(multiplier(aig, a, b)):
        aig.add_po(p, f"p{i}")
    return aig


def div(width: int = 128) -> Aig:
    """EPFL ``div``: restoring divider, quotient and remainder outputs."""
    aig = Aig(f"div{width}")
    num = aig.add_pis(width, "n")
    den = aig.add_pis(width, "d")
    quotient, remainder = divider(aig, num, den)
    for i, q in enumerate(quotient):
        aig.add_po(q, f"q{i}")
    for i, r in enumerate(remainder):
        aig.add_po(r, f"r{i}")
    return aig


def sqrt(width: int = 128) -> Aig:
    """EPFL ``sqrt``: integer square root of a *width*-bit operand."""
    aig = Aig(f"sqrt{width}")
    x = aig.add_pis(width, "x")
    for i, r in enumerate(isqrt(aig, x)):
        aig.add_po(r, f"r{i}")
    return aig


def square_unit(width: int = 64) -> Aig:
    """EPFL ``square``: squarer with ``2*width`` outputs."""
    aig = Aig(f"square{width}")
    x = aig.add_pis(width, "x")
    for i, s in enumerate(square(aig, x)):
        aig.add_po(s, f"s{i}")
    return aig


def hypotenuse_unit(width: int = 128) -> Aig:
    """EPFL ``hypotenuse``: ``isqrt(a² + b²)`` of two *width*-bit operands."""
    aig = Aig(f"hyp{width}")
    a = aig.add_pis(width, "a")
    b = aig.add_pis(width, "b")
    for i, h in enumerate(hypotenuse(aig, a, b)):
        aig.add_po(h, f"h{i}")
    return aig


def log2_unit(width: int = 32, fraction_bits: int = None) -> Aig:
    """EPFL ``log2``: fixed-point binary logarithm of a *width*-bit input.

    Digit recurrence: the integer part is the index of the leading one
    (priority encoded); the mantissa is normalized with a one-hot-controlled
    shifter, and each fraction bit comes from squaring the mantissa and
    testing for overflow past 2.0.
    """
    if fraction_bits is None:
        fraction_bits = width - (width - 1).bit_length()
    aig = Aig(f"log2_{width}")
    x = aig.add_pis(width, "x")
    int_bits = max(1, (width - 1).bit_length())
    # Leading-one detection (from the MSB down).
    found = CONST0
    leading: List[int] = []
    for i in range(width - 1, -1, -1):
        sel = aig.add_and(x[i], lit_not(found))
        found = aig.add_or(found, x[i])
        leading.append(sel)  # leading[j] corresponds to bit width-1-j
    leading.reverse()  # leading[i] = 1 iff bit i is the leading one
    # Integer part of the log.
    for b in range(int_bits):
        aig.add_po(aig.add_or_multi(
            [leading[i] for i in range(width) if (i >> b) & 1]), f"int{b}")
    # Normalized mantissa m in [1, 2): m = x >> leading_index, fixed point
    # with `frac_precision` bits after the binary point.
    precision = fraction_bits + 2
    mantissa = [CONST0] * precision + [found]  # 1.000... when x != 0
    for p in range(1, precision + 1):
        # bit at fractional position p = x[leading_index - p]
        sources = [aig.add_and(leading[i], x[i - p])
                   for i in range(p, width)]
        mantissa[precision - p] = aig.add_or_multi(sources)
    # Fraction bits by repeated squaring.
    for fb in range(fraction_bits):
        squared = multiplier(aig, mantissa, mantissa)
        # mantissa has `precision` fraction bits; squared has 2*precision.
        # Value >= 2.0 iff bit (2*precision + 1) of squared is set.
        overflow_bit = squared[2 * precision + 1]
        aig.add_po(overflow_bit, f"frac{fb}")
        # If overflowed, shift right one (divide by 2).
        shifted = squared[1:2 * precision + 2]
        kept = squared[0:2 * precision + 1]
        selected = mux_word(aig, overflow_bit, shifted, kept)
        # Re-truncate to `precision` fraction bits (keep the top bits).
        mantissa = selected[precision:]
    return aig


def sin_unit(width: int = 24, iterations: int = None) -> Aig:
    """EPFL ``sin``: fixed-point sine of a *width*-bit angle via CORDIC.

    Rotation-mode CORDIC with *width*-bit datapath and baked arctangent
    constants; outputs the sine with ``width + 1`` bits (matching the
    24-in/25-out EPFL profile).
    """
    if iterations is None:
        iterations = width
    aig = Aig(f"sin{width}")
    angle = aig.add_pis(width, "a")  # angle in [0, pi/2), fixed point
    guard = 2
    w = width + guard
    # Initial vector: (K, 0) where K is the CORDIC gain correction.
    gain = 1.0
    for i in range(iterations):
        gain *= math.cos(math.atan(2.0 ** -i))
    x = constant_word(int(gain * (1 << (w - 2))), w)
    y = constant_word(0, w)
    z = list(angle) + [CONST0] * guard  # remaining angle
    for i in range(iterations):
        atan_c = constant_word(int(math.atan(2.0 ** -i) / (math.pi / 2)
                                   * (1 << width)), w)
        sign = z[-1]  # z negative (two's complement) => rotate clockwise
        x_shift = _arith_shift_right(aig, x, i)
        y_shift = _arith_shift_right(aig, y, i)
        x_plus, _ = subtractor(aig, x, y_shift)
        x_minus, _ = ripple_adder(aig, x, y_shift)
        y_plus, _ = ripple_adder(aig, y, x_shift)
        y_minus, _ = subtractor(aig, y, x_shift)
        z_plus, _ = subtractor(aig, z, atan_c)
        z_minus, _ = ripple_adder(aig, z, atan_c)
        x = mux_word(aig, sign, x_minus, x_plus)
        y = mux_word(aig, sign, y_minus, y_plus)
        z = mux_word(aig, sign, z_minus, z_plus)
    for i, b in enumerate(y[:width + 1]):
        aig.add_po(b, f"sin{i}")
    return aig


def _arith_shift_right(aig: Aig, word: List[int], amount: int) -> List[int]:
    if amount == 0:
        return list(word)
    sign = word[-1]
    return list(word[amount:]) + [sign] * min(amount, len(word))
