"""Benchmark generators: the EPFL suite rebuilt from function definitions."""

from repro.bench.registry import (
    BENCHMARKS,
    Benchmark,
    PAPER,
    PaperReference,
    TABLE1_BENCHMARKS,
    TABLE2_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS", "Benchmark", "PAPER", "PaperReference",
    "TABLE1_BENCHMARKS", "TABLE2_BENCHMARKS",
    "get_benchmark", "benchmark_names",
]
