"""Partitioning engine (Section III-B).

"The partitions are created by collecting all the nodes in topological order
and by sorting them according to the similarity of their structural support.
Each partition respects some predefined characteristic, e.g., maximum number
of primary inputs, maximum number of internal nodes, maximum number of
levels ... we give priority to the limit on the maximum number of levels."

The implementation orders nodes level-by-level (a valid topological order)
with nodes of equal level sorted by a support signature, then greedily slices
this order into windows bounded by level span, node count, and leaf count.
Because every window is a contiguous slice of a topological order, its leaves
always precede its nodes — replacing a window root with logic over the leaves
can never create a combinational cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.aig.aig import Aig, lit_is_compl, lit_node, lit_notcond
from repro.aig.traversal import all_supports, node_level_map


@dataclass
class Window:
    """A partition of the AIG: internal nodes plus their boundary.

    Attributes
    ----------
    nodes:
        Internal AND nodes, in topological order.
    leaves:
        Boundary inputs (PIs or external ANDs feeding the window), ordered.
    roots:
        Window nodes referenced from outside (fanout outside or PO use).
    """

    nodes: List[int]
    leaves: List[int]
    roots: List[int]
    level_span: Tuple[int, int] = (0, 0)

    @property
    def size(self) -> int:
        """Number of internal nodes."""
        return len(self.nodes)

    @property
    def num_leaves(self) -> int:
        """Number of boundary inputs."""
        return len(self.leaves)


@dataclass
class PartitionConfig:
    """Limits for the partitioner, mirroring the paper's knobs.

    "Experimentally, we found promising bounds on the number of levels
    ranging from 5 to 30, resulting in partitions with controlled maximum
    size of 1000 nodes."
    """

    max_levels: int = 20
    max_size: int = 1000
    max_leaves: int = 64


def partition_network(aig: Aig, config: Optional[PartitionConfig] = None) -> List[Window]:
    """Split the network into topological windows per *config*.

    Every live AND node reachable from a PO lands in exactly one window.
    """
    config = config or PartitionConfig()
    order = aig.topological_order()
    if not order:
        return []
    levels = node_level_map(aig)
    supports = all_supports(aig)

    def signature(node: int) -> Tuple:
        return tuple(sorted(supports[node]))[:8]

    # Level-major order with support-similar nodes adjacent within a level.
    order.sort(key=lambda n: (levels[n], signature(n)))

    windows: List[Window] = []
    current: List[int] = []
    current_leaves: Set[int] = set()
    base_level = None
    members: Set[int] = set()

    def flush() -> None:
        nonlocal current, current_leaves, base_level, members
        if current:
            windows.append(_build_window(aig, current))
        current = []
        current_leaves = set()
        base_level = None
        members = set()

    for node in order:
        node_level = levels[node]
        fanin_nodes = {lit_node(f) for f in aig.fanins(node)}
        new_leaves = {f for f in fanin_nodes if f not in members} - current_leaves
        if current:
            over_levels = node_level - base_level >= config.max_levels
            over_size = len(current) + 1 > config.max_size
            over_leaves = len(current_leaves) + len(new_leaves) > config.max_leaves
            if over_levels or over_size or over_leaves:
                flush()
                new_leaves = fanin_nodes
        if base_level is None:
            base_level = node_level
        current.append(node)
        members.add(node)
        current_leaves |= new_leaves
    flush()
    return windows


def _build_window(aig: Aig, nodes: List[int]) -> Window:
    members = set(nodes)
    leaves: List[int] = []
    seen_leaves: Set[int] = set()
    for n in nodes:
        for f in aig.fanins(n):
            fn = lit_node(f)
            if fn not in members and fn not in seen_leaves and fn != 0:
                seen_leaves.add(fn)
                leaves.append(fn)
    po_nodes = {lit_node(po) for po in aig.pos()}
    roots = []
    for n in nodes:
        external = n in po_nodes or any(t not in members
                                        for t in aig.fanout_nodes(n))
        # Nodes whose reference count exceeds their internal fanouts are
        # also externally referenced (e.g. used by several POs).
        if not external:
            internal_refs = sum(1 for t in aig.fanout_nodes(n) if t in members)
            external = aig.ref_count(n) > internal_refs
        if external:
            roots.append(n)
    levels = node_level_map(aig)
    span = (min(levels[n] for n in nodes), max(levels[n] for n in nodes))
    return Window(nodes=nodes, leaves=leaves, roots=roots, level_span=span)


def refresh_window(aig: Aig, window: Window) -> Optional[Window]:
    """Recompute a window's boundary against the network's current state.

    Engines that keep window snapshots across edits (the gradient engine's
    sweeps) must refresh before extracting: members may have died, and
    surviving members may have been rewired to fanins outside the original
    boundary.  Returns None when no live member remains.
    """
    alive = [n for n in window.nodes if aig.is_and(n)]
    if not alive:
        return None
    # Keep topological order among the survivors.
    position = {n: i for i, n in enumerate(aig.topological_order())}
    alive.sort(key=lambda n: position.get(n, 1 << 60))
    return _build_window(aig, alive)


def extract_window_aig(aig: Aig, window: Window) -> Tuple[Aig, Dict[int, int], Dict[int, int]]:
    """Materialize a window as a standalone AIG.

    Leaves become PIs (in window leaf order) and roots become POs.  Returns
    ``(sub_aig, node_to_sub_literal, root_to_po_index)`` so optimized logic
    can be spliced back via :func:`splice_window`.
    """
    sub = Aig(f"{aig.name}.win")
    mapping: Dict[int, int] = {0: 0}
    for leaf in window.leaves:
        mapping[leaf] = sub.add_pi(f"n{leaf}")
    for n in window.nodes:
        f0, f1 = aig.fanins(n)
        a = lit_notcond(mapping[lit_node(f0)], lit_is_compl(f0))
        b = lit_notcond(mapping[lit_node(f1)], lit_is_compl(f1))
        mapping[n] = sub.add_and(a, b)
    root_to_po = {}
    for i, r in enumerate(window.roots):
        sub.add_po(mapping[r], f"r{r}")
        root_to_po[r] = i
    return sub, mapping, root_to_po


def splice_window(aig: Aig, window: Window, optimized: Aig) -> int:
    """Replace the window's roots with the optimized sub-network's POs.

    *optimized* must have the window's leaves as its PIs (same order) and one
    PO per window root (same order).  Returns the size delta (negative =
    improvement).  The caller is responsible for only splicing functionally
    equivalent logic.
    """
    before = aig.num_ands
    mapping: Dict[int, int] = {0: 0}
    for leaf, pi_node in zip(window.leaves, optimized.pis()):
        mapping[pi_node] = 2 * leaf
    for n in optimized.topological_order():
        f0, f1 = optimized.fanins(n)
        a = lit_notcond(mapping[lit_node(f0)], lit_is_compl(f0))
        b = lit_notcond(mapping[lit_node(f1)], lit_is_compl(f1))
        mapping[n] = aig.add_and(a, b)
    new_literals = []
    for root, po in zip(window.roots, optimized.pos()):
        new_lit = lit_notcond(mapping[lit_node(po)], lit_is_compl(po))
        new_literals.append(new_lit)
        # Protect pending logic so an earlier root replacement cannot
        # garbage-collect it before it is spliced in.
        aig.protect(new_lit)
    for root, new_lit in zip(window.roots, new_literals):
        if aig.is_dead(root) or lit_node(new_lit) == root:
            continue
        # Structural hashing may have mapped part of the new logic onto the
        # root itself; replacing would then create a cycle — skip that root.
        from repro.aig.traversal import transitive_fanin
        if root in transitive_fanin(aig, [lit_node(new_lit)]):
            continue
        aig.replace(root, new_lit)
    for new_lit in new_literals:
        aig.unprotect(new_lit)
    return aig.num_ands - before
