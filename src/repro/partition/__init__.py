"""Partitioning engines: topological windows and pivot-centred windows."""

from repro.partition.partitioner import (
    PartitionConfig,
    Window,
    extract_window_aig,
    partition_network,
    splice_window,
)
from repro.partition.window import NodeWindow, collect_window

__all__ = [
    "PartitionConfig", "Window", "partition_network",
    "extract_window_aig", "splice_window",
    "NodeWindow", "collect_window",
]
