"""Node-centric reconvergent windows for resubstitution.

While :mod:`repro.partition.partitioner` slices the whole network, the
resubstitution moves need a *window around one pivot node*: a small cut of
leaves below it, the cone in between, and a set of candidate divisor nodes
whose functions are expressible over the same leaves but which do not depend
on the pivot (so substituting them cannot create cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.aig.aig import Aig, lit_node
from repro.aig.traversal import node_level_map, transitive_fanout


@dataclass
class NodeWindow:
    """A pivot-centred window.

    Attributes
    ----------
    pivot:
        The node being resynthesized.
    leaves:
        Cut nodes treated as window inputs (ordered).
    cone:
        Nodes between the leaves and the pivot, topological, pivot last.
    divisors:
        Candidate replacement nodes: inside the window's input space but
        outside the pivot's fanout cone (pivot excluded).
    """

    pivot: int
    leaves: List[int]
    cone: List[int]
    divisors: List[int]


def collect_window(aig: Aig, pivot: int, max_leaves: int = 8,
                   max_divisors: int = 150,
                   levels: Optional[Dict[int, int]] = None) -> Optional[NodeWindow]:
    """Build a reconvergence-driven window around *pivot*.

    Returns None when the pivot has no suitable cut (e.g. it is a PI).
    """
    if not aig.is_and(pivot):
        return None
    levels = levels if levels is not None else node_level_map(aig)
    leaves = _reconvergent_cut(aig, pivot, max_leaves, levels)
    leaf_set = set(leaves)
    # Cone between leaves and pivot.
    cone: List[int] = []
    seen: Set[int] = set(leaf_set)
    stack = [pivot]
    post: List[int] = []
    visiting: Set[int] = set()
    while stack:
        n = stack[-1]
        if n in seen:
            stack.pop()
            continue
        if n in visiting:
            seen.add(n)
            post.append(n)
            stack.pop()
            continue
        visiting.add(n)
        for f in aig.fanins(n):
            fn = lit_node(f)
            if fn not in seen and aig.is_and(fn):
                stack.append(fn)
    cone = post
    # Divisors: grow from leaves/cone through fanouts that stay inside the
    # leaf-supported space and avoid the pivot's transitive fanout.
    tfo = transitive_fanout(aig, [pivot])
    inside: Set[int] = leaf_set | set(cone)
    divisors: List[int] = [n for n in cone if n != pivot]
    frontier = list(inside)
    pivot_level = levels.get(pivot, 0)
    while frontier and len(divisors) < max_divisors:
        node = frontier.pop()
        for t in aig.fanout_nodes(node):
            if t in inside or t in tfo or not aig.is_and(t):
                continue
            f0, f1 = (lit_node(f) for f in aig.fanins(t))
            if (f0 in inside and f1 in inside
                    and levels.get(t, pivot_level + 3) <= pivot_level + 2):
                inside.add(t)
                divisors.append(t)
                frontier.append(t)
                if len(divisors) >= max_divisors:
                    break
    return NodeWindow(pivot=pivot, leaves=leaves, cone=cone, divisors=divisors)


def _reconvergent_cut(aig: Aig, pivot: int, max_leaves: int,
                      levels: Dict[int, int]) -> List[int]:
    """Grow a cut below *pivot* by repeatedly expanding the deepest leaf."""
    cut: Set[int] = {lit_node(f) for f in aig.fanins(pivot)}
    for _iteration in range(60):
        # Prefer expanding AND leaves whose expansion keeps the cut small
        # (cost = extra leaves introduced; reconvergence gives cost <= 0).
        best = None
        best_cost = 10 ** 9
        for leaf in cut:
            if not aig.is_and(leaf):
                continue
            fanin_nodes = {lit_node(f) for f in aig.fanins(leaf)}
            cost = len((fanin_nodes - cut) - {leaf}) - 1
            if cost < best_cost or (cost == best_cost and best is not None
                                    and levels.get(leaf, 0) > levels.get(best, 0)):
                best = leaf
                best_cost = cost
        if best is None:
            break
        if len(cut) + best_cost > max_leaves:
            break
        cut.discard(best)
        cut |= {lit_node(f) for f in aig.fanins(best)}
        if len(cut) > max_leaves:  # safety net
            break
    return sorted(cut)
