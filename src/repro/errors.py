"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AigError(ReproError):
    """Raised on structural misuse of an :class:`repro.aig.Aig`."""


class BddLimitError(ReproError):
    """Raised when a BDD operation exceeds the manager's node/memory limit.

    The paper (Sections III-C and IV-C) bails out of BDD construction when a
    memory limit is hit and treats the offending node as having BDD size 0;
    callers catch this exception to implement that behaviour.
    """


class SatError(ReproError):
    """Raised on malformed CNF input or solver misuse."""


class BenchmarkError(ReproError):
    """Raised when a benchmark generator receives unsupported parameters."""
