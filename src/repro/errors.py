"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AigError(ReproError):
    """Raised on structural misuse of an :class:`repro.aig.Aig`."""


class AigerParseError(AigError):
    """Malformed AIGER input (ASCII ``.aag`` or binary ``.aig``).

    Carries the location of the defect: ``line`` (1-based) for the ASCII
    reader and the text parts of the binary format, ``offset`` (0-based
    byte position) for the binary delta stream.  Subclasses
    :class:`AigError` so existing ``except AigError`` call sites keep
    catching malformed files; fuzzed inputs must never surface a bare
    ``ValueError``/``IndexError`` or silently misparse.
    """

    def __init__(self, message: str, line=None, offset=None):
        where = []
        if line is not None:
            where.append(f"line {line}")
        if offset is not None:
            where.append(f"byte offset {offset}")
        super().__init__(f"{message} ({', '.join(where)})" if where
                         else message)
        self.line = line
        self.offset = offset


class BddLimitError(ReproError):
    """Raised when a BDD operation exceeds the manager's node/memory limit.

    The paper (Sections III-C and IV-C) bails out of BDD construction when a
    memory limit is hit and treats the offending node as having BDD size 0;
    callers catch this exception to implement that behaviour.
    """


class SatError(ReproError):
    """Raised on malformed CNF input or solver misuse."""


class EquivalenceError(ReproError, AssertionError):
    """Two networks that must be equivalent miscompare.

    Carries the evidence: ``cex`` is the primary-input assignment (list of
    bools, PI order) under which the networks differ, ``po_index`` /
    ``po_name`` identify the first miscomparing primary output.
    ``AssertionError`` stays in the bases for callers that still catch the
    historical failure type of :func:`repro.sat.equivalence.assert_equivalent`.
    """

    def __init__(self, message: str, cex=None, po_index=None, po_name=None):
        super().__init__(message)
        self.cex = cex
        self.po_index = po_index
        self.po_name = po_name


class CheckpointError(ReproError):
    """Raised when a flow checkpoint is missing, corrupt, or incompatible
    with the network/configuration it is being resumed against."""


class BenchmarkError(ReproError):
    """Raised when a benchmark generator receives unsupported parameters."""
