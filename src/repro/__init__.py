"""repro — reproduction of "Scalable Boolean Methods in a Modern Synthesis Flow".

Testa et al., DATE 2019.  The package provides the four SBM optimization
engines (:mod:`repro.sbm`) on top of from-scratch logic-synthesis substrates:
AIGs, truth tables, BDDs, SAT, SOP algebra, partitioning, classic AIG
optimization, LUT/cell mapping, and a synthetic ASIC back-end flow.
"""

__version__ = "1.0.0"
