"""SAT engine: CDCL solver, Tseitin encodings, sweeping, redundancy removal."""

from repro.sat.cnf import AigCnf, build_miter, prove_equivalent
from repro.sat.equivalence import assert_equivalent, check_equivalence
from repro.sat.redundancy import remove_redundancies
from repro.sat.solver import SatSolver
from repro.sat.sweep import sat_sweep

__all__ = [
    "SatSolver", "AigCnf", "build_miter", "prove_equivalent",
    "check_equivalence", "assert_equivalent", "sat_sweep",
    "remove_redundancies",
]
