"""CNF encodings of AIGs (Tseitin transformation) and miter construction.

These encodings back the SAT-based steps of the SBM flow (Section V-A):
equivalence checking of optimized networks, SAT sweeping, and redundancy
removal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.aig.aig import Aig, lit_is_compl, lit_node
from repro.sat.solver import SatSolver


class AigCnf:
    """Incremental Tseitin encoding of an AIG into a :class:`SatSolver`.

    Each live AIG node gets one SAT variable; AND gates produce the three
    standard clauses.  The encoding is lazy: only the cones of requested
    literals are encoded, so sweeping many small queries stays cheap.
    """

    def __init__(self, aig: Aig, solver: Optional[SatSolver] = None) -> None:
        self.aig = aig
        self.solver = solver if solver is not None else SatSolver()
        self._node_var: Dict[int, int] = {}
        self._const_var: Optional[int] = None

    def sat_literal(self, aig_literal: int) -> int:
        """SAT (DIMACS) literal encoding an AIG literal, encoding its cone."""
        node = lit_node(aig_literal)
        var = self._encode_node(node)
        return -var if lit_is_compl(aig_literal) else var

    def _encode_node(self, node: int) -> int:
        cached = self._node_var.get(node)
        if cached is not None:
            return cached
        if node == 0:
            var = self.solver.new_var()
            self.solver.add_clause([-var])  # constant FALSE
            self._node_var[0] = var
            return var
        if self.aig.is_pi(node):
            var = self.solver.new_var()
            self._node_var[node] = var
            return var
        stack = [node]
        while stack:
            n = stack[-1]
            if n in self._node_var:
                stack.pop()
                continue
            f0, f1 = self.aig.fanins(n)
            pending = [lit_node(f) for f in (f0, f1)
                       if lit_node(f) not in self._node_var]
            if pending:
                for p in pending:
                    if p == 0 or self.aig.is_pi(p):
                        self._encode_node(p)
                    else:
                        stack.append(p)
                continue
            var = self.solver.new_var()
            self._node_var[n] = var
            a = self._fanin_sat_lit(f0)
            b = self._fanin_sat_lit(f1)
            # var <-> a & b
            self.solver.add_clause([-var, a])
            self.solver.add_clause([-var, b])
            self.solver.add_clause([var, -a, -b])
            stack.pop()
        return self._node_var[node]

    def _fanin_sat_lit(self, aig_literal: int) -> int:
        var = self._node_var[lit_node(aig_literal)]
        return -var if lit_is_compl(aig_literal) else var

    def pi_var(self, pi_index: int) -> int:
        """SAT variable of the *pi_index*-th primary input."""
        return self._encode_node(self.aig.pis()[pi_index])

    def extract_pi_assignment(self) -> List[bool]:
        """PI values of the current model (False for unencoded PIs)."""
        out = []
        for node in self.aig.pis():
            var = self._node_var.get(node)
            out.append(self.solver.model_value(var) if var else False)
        return out


def prove_equivalent(cnf: AigCnf, lit_a: int, lit_b: int,
                     assumptions: Tuple[int, ...] = ()) -> Tuple[bool, Optional[List[bool]]]:
    """Check two AIG literals for functional equivalence via two SAT calls.

    Returns ``(True, None)`` when equivalent, or ``(False, counterexample)``
    with the distinguishing PI assignment.
    """
    sa = cnf.sat_literal(lit_a)
    sb = cnf.sat_literal(lit_b)
    for pa, pb in ((sa, -sb), (-sa, sb)):
        if cnf.solver.solve(tuple(assumptions) + (pa, pb)):
            return False, cnf.extract_pi_assignment()
    return True, None


def build_miter(aig_a: Aig, aig_b: Aig) -> Aig:
    """Combinational miter of two networks with identical PI/PO counts.

    The miter's single output is 1 iff some PO differs under the shared
    inputs — UNSAT miter ⇔ networks equivalent (the "industrial formal
    equivalence checking" step of Section V-C).
    """
    if aig_a.num_pis != aig_b.num_pis or aig_a.num_pos != aig_b.num_pos:
        raise ValueError("miter requires matching interfaces")
    miter = Aig(f"miter({aig_a.name},{aig_b.name})")
    pis = [miter.add_pi(aig_a.pi_name(i)) for i in range(aig_a.num_pis)]
    outs_a = _copy_into(aig_a, miter, pis)
    outs_b = _copy_into(aig_b, miter, pis)
    diffs = [miter.add_xor(x, y) for x, y in zip(outs_a, outs_b)]
    miter.add_po(miter.add_or_multi(diffs), "diff")
    return miter


def _copy_into(src: Aig, dst: Aig, pi_literals: List[int]) -> List[int]:
    from repro.aig.aig import lit_notcond
    mapping: Dict[int, int] = {0: 0}
    for node, literal in zip(src.pis(), pi_literals):
        mapping[node] = literal
    for n in src.topological_order():
        f0, f1 = src.fanins(n)
        a = lit_notcond(mapping[lit_node(f0)], lit_is_compl(f0))
        b = lit_notcond(mapping[lit_node(f1)], lit_is_compl(f1))
        mapping[n] = dst.add_and(a, b)
    outs = []
    for po in src.pos():
        outs.append(lit_notcond(mapping[lit_node(po)], lit_is_compl(po)))
    return outs
