"""SAT-based redundancy removal.

Reimplements the flow step the paper cites as [9] (Debnath et al., DATE'18):
an AND-gate fanin is *redundant* when forcing it to constant 1 (a stuck-at-1
fault on the edge) is undetectable at every primary output; the gate then
collapses to its other fanin.  Candidates are filtered by random simulation
and proven with a SAT miter, after which the edge is removed in place.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro import hotpath
from repro.aig.aig import Aig, lit_node
from repro.aig.simprogram import pack_rounds, sim_program, wide_mask
from repro.aig.simulate import po_words, simulate_words
from repro.sat.equivalence import check_equivalence


def remove_redundancies(aig: Aig, max_checks: Optional[int] = None,
                        rng: Optional[random.Random] = None,
                        sim_rounds: int = 4) -> int:
    """Remove SAT-proven redundant AND fanin edges in place.

    Returns the number of edges removed.  Each proof is a full
    network-equivalence check, so *max_checks* bounds runtime; random
    simulation discards the vast majority of non-redundant candidates first.
    """
    rng = rng or random.Random(0x9ED)
    removed = 0
    checks = 0
    progress = True
    while progress:
        progress = False
        baseline = aig.cleanup()
        patterns = [[rng.getrandbits(64) for _ in range(aig.num_pis)]
                    for _ in range(sim_rounds)]
        if hotpath.enabled():
            # Wide hot path: the per-round golden references collapse into
            # one W x 64-bit PO word list; every candidate clone is then
            # screened with a single compiled pass instead of *sim_rounds*
            # interpreted walks.  The refutation decision is identical —
            # a clone fails iff any round miscompares.
            packed = pack_rounds(patterns)
            mask = wide_mask(sim_rounds)
            program = sim_program(baseline)
            golden_wide = program.po_words(program.run(packed, mask), mask)
            wide = (packed, golden_wide, mask)
            golden = None
        else:
            golden = [po_words(baseline, simulate_words(baseline, words))
                      for words in patterns]
            wide = None
        for node in list(baseline.topological_order()):
            for keep_index in (0, 1):
                if max_checks is not None and checks >= max_checks:
                    return removed
                candidate = _try_edge(baseline, node, keep_index,
                                      patterns, golden, wide)
                if candidate is None:
                    continue
                checks += 1
                ok, _cex = check_equivalence(baseline, candidate)
                if ok:
                    baseline = candidate
                    removed += 1
                    progress = True
                    break
            if progress:
                break
        if progress:
            _replace_network(aig, baseline)
    return removed


def _try_edge(aig: Aig, node: int, keep_index: int,
              patterns: List[List[int]],
              golden: Optional[List[List[int]]],
              wide: Optional[tuple] = None) -> Optional[Aig]:
    """Clone *aig* with one fanin of *node* forced to 1; None if sim refutes."""
    if not aig.is_and(node):
        return None
    clone, mapping = aig.cleanup_with_map()
    from repro.aig.aig import lit_is_compl
    mapped = mapping.get(node)
    if mapped is None or lit_is_compl(mapped):
        return None
    clone_node = lit_node(mapped)
    if not clone.is_and(clone_node):
        return None
    kept = clone.fanins(clone_node)[keep_index]
    clone.replace(clone_node, kept)
    if wide is not None:
        packed, golden_wide, mask = wide
        program = sim_program(clone)
        if program.po_words(program.run(packed, mask), mask) != golden_wide:
            return None
        return clone.cleanup()
    for words, reference in zip(patterns, golden):
        if po_words(clone, simulate_words(clone, words)) != reference:
            return None
    return clone.cleanup()


def _replace_network(target: Aig, source: Aig) -> None:
    """Overwrite *target*'s contents with *source* (same interface)."""
    fresh = source.cleanup()
    target.__dict__.update(fresh.__dict__)
