"""A CDCL SAT solver.

SAT is the third reasoning engine of Section II-A; the SBM flow uses it for
"SAT-based sweeping and redundancy removal as in [9]" (Section V-A).  This is
a from-scratch conflict-driven clause-learning solver with:

* two-watched-literal propagation,
* first-UIP conflict analysis with clause minimization,
* VSIDS-style activity decay and phase saving,
* Luby restarts and learned-clause garbage collection,
* incremental solving under assumptions.

Variables are positive integers; literals follow the DIMACS convention
(negative integer = negated variable).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SatError

TRUE = 1
FALSE = 0
UNASSIGNED = 2


class SatSolver:
    """Conflict-driven clause-learning solver with assumptions.

    Example
    -------
    >>> solver = SatSolver()
    >>> solver.add_clause([1, 2])
    >>> solver.add_clause([-1])
    >>> solver.solve()
    True
    >>> solver.model_value(2)
    True
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._learned: List[List[int]] = []
        self._watches: Dict[int, List[List[int]]] = {}
        self._assign: List[int] = [UNASSIGNED]  # 1-indexed
        self._level: List[int] = [0]
        self._reason: List[Optional[List[int]]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._ok = True
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0

    # -- problem construction ---------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) index."""
        self._num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        return self._num_vars

    def ensure_var(self, var: int) -> None:
        """Grow the variable table so that *var* is valid."""
        while self._num_vars < var:
            self.new_var()

    @property
    def num_vars(self) -> int:
        """Number of allocated variables."""
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False when the formula became trivially UNSAT."""
        if not self._ok:
            return False
        clause: List[int] = []
        seen = set()
        for literal in literals:
            if literal == 0:
                raise SatError("literal 0 is not allowed")
            self.ensure_var(abs(literal))
            if -literal in seen:
                return True  # tautology
            if literal in seen:
                continue
            # Skip literals already falsified at level 0; satisfied ⇒ drop clause.
            value = self._lit_value(literal)
            if value == TRUE and self._level[abs(literal)] == 0:
                return True
            if value == FALSE and self._level[abs(literal)] == 0:
                continue
            seen.add(literal)
            clause.append(literal)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self._clauses.append(clause)
        self._watch_clause(clause)
        return True

    # -- solving -----------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under optional *assumptions*.

        Returns True (SAT — model available via :meth:`model_value`) or
        False (UNSAT under the assumptions).
        """
        result = self.solve_limited(assumptions)
        assert result is not None  # no budget, so always a verdict
        return result

    def solve_limited(self, assumptions: Sequence[int] = (),
                      conflict_limit: Optional[int] = None) -> Optional[bool]:
        """Like :meth:`solve`, but give up after *conflict_limit* conflicts.

        Returns ``True`` (SAT), ``False`` (UNSAT under the assumptions), or
        ``None`` when the conflict budget ran out before a verdict.  The
        solver state (learned clauses included) stays valid for further
        calls, so a budgeted caller can retry or move on — the SBM
        simulation-guided resubstitution engine uses this to bound each
        candidate proof.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False
        restart_count = 0
        conflict_budget = 64 * _luby(restart_count)
        conflicts_here = 0
        conflicts_total = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                conflicts_here += 1
                conflicts_total += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                if self._decision_level() <= len(assumptions):
                    # Conflict forced by assumptions alone.
                    self._backtrack(0)
                    return False
                learned, backtrack_level = self._analyze(conflict)
                self._backtrack(max(backtrack_level, 0))
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return False
                else:
                    self._learned.append(learned)
                    self._watch_clause(learned)
                    self._enqueue(learned[0], learned)
                self._decay_activities()
                if conflict_limit is not None \
                        and conflicts_total >= conflict_limit:
                    self._backtrack(0)
                    return None
                continue
            if conflicts_here >= conflict_budget:
                # Restart, keeping learned clauses.
                restart_count += 1
                conflict_budget = 64 * _luby(restart_count)
                conflicts_here = 0
                self._backtrack(0)
                continue
            # Apply assumptions in order before free decisions.
            level = self._decision_level()
            if level < len(assumptions):
                literal = assumptions[level]
                self.ensure_var(abs(literal))
                value = self._lit_value(literal)
                if value == TRUE:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == FALSE:
                    self._backtrack(0)
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(literal, None)
                continue
            literal = self._pick_branch()
            if literal is None:
                return True
            self.num_decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(literal, None)

    def model_value(self, var: int) -> bool:
        """Value of *var* in the last satisfying assignment."""
        if var > self._num_vars:
            return False
        value = self._assign[var]
        return value == TRUE

    def model(self) -> List[bool]:
        """The full model as a list indexed by variable (index 0 unused)."""
        return [self._assign[v] == TRUE for v in range(self._num_vars + 1)]

    # -- internals ------------------------------------------------------------------

    def _lit_value(self, literal: int) -> int:
        value = self._assign[abs(literal)]
        if value == UNASSIGNED:
            return UNASSIGNED
        if literal > 0:
            return value
        return TRUE if value == FALSE else FALSE

    def _watch_clause(self, clause: List[int]) -> None:
        self._watches.setdefault(-clause[0], []).append(clause)
        self._watches.setdefault(-clause[1], []).append(clause)

    def _enqueue(self, literal: int, reason: Optional[List[int]]) -> bool:
        value = self._lit_value(literal)
        if value == FALSE:
            return False
        if value == TRUE:
            return True
        var = abs(literal)
        self._assign[var] = TRUE if literal > 0 else FALSE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = literal > 0
        self._trail.append(literal)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _propagate(self) -> Optional[List[int]]:
        while self._qhead < len(self._trail):
            literal = self._trail[self._qhead]
            self._qhead += 1
            self.num_propagations += 1
            watch_list = self._watches.get(literal)
            if not watch_list:
                continue
            new_list: List[List[int]] = []
            conflict: Optional[List[int]] = None
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                index += 1
                # Normalize: watched literals are clause[0] and clause[1].
                if clause[0] == -literal:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._lit_value(clause[0]) == TRUE:
                    new_list.append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(-clause[1], []).append(clause)
                        found = True
                        break
                if found:
                    continue
                new_list.append(clause)
                if not self._enqueue(clause[0], clause):
                    conflict = clause
                    new_list.extend(watch_list[index:])
                    break
            self._watches[literal] = new_list
            if conflict is not None:
                return conflict
        return None

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learned clause, backtrack level)."""
        learned: List[int] = []
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = None
        reason: List[int] = list(conflict)
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()
        while True:
            for q in reason:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_activity(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            literal = self._trail[trail_index]
            var = abs(literal)
            seen[var] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
            clause_reason = self._reason[var]
            reason = [q for q in clause_reason if abs(q) != var] if clause_reason else []
        learned = [-literal] + learned
        # Clause minimization: drop literals implied by the rest.
        learned = self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Second-highest level determines the backtrack point.
        levels = sorted((self._level[abs(q)] for q in learned[1:]), reverse=True)
        backtrack = levels[0]
        # Move a literal of the backtrack level to position 1 for watching.
        for k in range(1, len(learned)):
            if self._level[abs(learned[k])] == backtrack:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backtrack

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        marked = set(abs(q) for q in learned)
        kept = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason is None:
                kept.append(q)
                continue
            if all(abs(r) in marked or self._level[abs(r)] == 0
                   for r in reason if abs(r) != abs(q)):
                continue  # dominated: implied by other learned literals
            kept.append(q)
        return kept

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for literal in reversed(self._trail[limit:]):
            var = abs(literal)
            self._assign[var] = UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    def _pick_branch(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == UNASSIGNED and self._activity[var] > best_activity:
                best_activity = self._activity[var]
                best_var = var
        if best_var is None:
            return None
        return best_var if self._phase[best_var] else -best_var

    def _bump_activity(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay


def _luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed."""
    # Port of MiniSat's luby() with unit base.
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i = i % size
    return 1 << seq
