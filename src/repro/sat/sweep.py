"""SAT sweeping: merging functionally equivalent nodes.

Part of the SBM flow's final stage, "SAT-based sweeping and redundancy
removal as in [9]" (Section V-A).  Random simulation partitions nodes into
candidate equivalence classes (equal fingerprints); a SAT solver then proves
or refutes each candidate pair, and proven-equivalent nodes are merged with
:meth:`Aig.replace`.  Counterexamples returned by the solver refine the
remaining classes, so refuted candidates are never retried.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro import hotpath
from repro.aig.aig import Aig, lit
from repro.aig.simprogram import sim_program, wide_mask
from repro.aig.simulate import WORD_MASK, simulate_words
from repro.sat.cnf import AigCnf, prove_equivalent


def sat_sweep(aig: Aig, num_sim_rounds: int = 8,
              max_proofs: Optional[int] = None,
              rng: Optional[random.Random] = None) -> int:
    """Merge SAT-proven equivalent (or antivalent) nodes in place.

    Returns the number of merges performed.  ``max_proofs`` caps SAT calls
    for runtime control (the scalability lever of the paper's engines).
    """
    rng = rng or random.Random(20190311)
    if aig.num_pis == 0:
        return 0
    # Fingerprint every node; bit-complement-normalized so that antivalent
    # nodes land in the same class.
    signatures: Dict[int, int] = {}
    patterns: List[List[int]] = [
        [rng.getrandbits(64) for _ in range(aig.num_pis)]
        for _ in range(num_sim_rounds)
    ]
    if hotpath.enabled():
        # Wide hot path: all rounds in one compiled pass.  Round 0 is
        # packed into the HIGH 64 bits (matching the reference signature
        # construction ``sig = (sig << 64) | round_word``), so a node's
        # wide simulation value IS its fingerprint, bit for bit.
        program = sim_program(aig)
        full = wide_mask(num_sim_rounds)
        packed = [0] * aig.num_pis
        for r, words in enumerate(patterns):
            shift = 64 * (num_sim_rounds - 1 - r)
            for i in range(aig.num_pis):
                packed[i] |= (words[i] & WORD_MASK) << shift
        wide_values = program.run(packed, full)

        def signature(node: int) -> int:
            return wide_values[node]
    else:
        values_per_round = [simulate_words(aig, words) for words in patterns]

        def signature(node: int) -> int:
            sig = 0
            for values in values_per_round:
                sig = (sig << 64) | values[node]
            return sig

    classes: Dict[int, List[int]] = {}
    order = aig.topological_order()
    for node in [0] + aig.pis() + order:
        sig = signature(node)
        norm = sig if not (sig & 1) else sig ^ ((1 << (64 * num_sim_rounds)) - 1)
        classes.setdefault(norm, []).append(node)

    cnf = AigCnf(aig)
    merges = 0
    proofs = 0
    mask = (1 << (64 * num_sim_rounds)) - 1
    for norm in list(classes):
        members = classes[norm]
        if len(members) < 2:
            continue
        representative = members[0]
        rep_sig = signature(representative)
        for node in members[1:]:
            if aig.is_dead(node) or aig.is_dead(representative):
                continue
            if node == representative:
                continue
            if max_proofs is not None and proofs >= max_proofs:
                return merges
            complemented = signature(node) != rep_sig
            target_lit = lit(representative, complemented)
            proofs += 1
            equivalent, _cex = prove_equivalent(cnf, lit(node), target_lit)
            if equivalent and not aig.is_pi(node):
                aig.replace(node, target_lit)
                merges += 1
    return merges
