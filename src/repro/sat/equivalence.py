"""Combinational equivalence checking (CEC).

Every experiment in the reproduction verifies its optimized network against
the original — the paper's "all benchmarks are verified with an industrial
formal equivalence checking flow" (Section V-C).  Small networks are checked
exhaustively by simulation; larger ones through a SAT miter.

Miscompares are reported as a structured :class:`Counterexample` (the PI
assignment plus the first miscomparing PO), and :func:`assert_equivalent`
raises :class:`repro.errors.EquivalenceError` carrying that evidence — the
guard layer (:mod:`repro.guard.stage_guard`) attaches it to the run report
instead of aborting the flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.aig.aig import Aig
from repro.aig.simprogram import sim_program, wide_mask
from repro.aig.simulate import WORD_MASK, po_tables, po_words, simulate_words
from repro import hotpath
from repro.errors import EquivalenceError
from repro.sat.cnf import AigCnf, build_miter


@dataclass
class Counterexample:
    """Evidence that two networks differ: an input pattern and where."""

    inputs: List[bool]     #: PI assignment, in PI order
    po_index: int          #: first miscomparing primary output
    po_name: str = ""

    def format(self) -> str:
        """Render as ``PO 'name' (#i) differs under PIs 0101...``."""
        bits = "".join("1" if b else "0" for b in self.inputs)
        label = f"{self.po_name!r} (#{self.po_index})" if self.po_name \
            else f"#{self.po_index}"
        return f"PO {label} differs under PI assignment {bits}"

    def to_dict(self) -> dict:
        """JSON-safe representation for the run report."""
        return {"inputs": [bool(b) for b in self.inputs],
                "po_index": self.po_index, "po_name": self.po_name}


def _first_miscomparing_po(aig_a: Aig, aig_b: Aig,
                           inputs: List[bool]) -> int:
    """Index of the first PO that differs under *inputs* (or 0)."""
    words = [(1 << 64) - 1 if bit else 0 for bit in inputs]
    wa = po_words(aig_a, simulate_words(aig_a, words))
    wb = po_words(aig_b, simulate_words(aig_b, words))
    for po, (x, y) in enumerate(zip(wa, wb)):
        if (x ^ y) & 1:
            return po
    return 0


def find_counterexample(aig_a: Aig, aig_b: Aig,
                        exhaustive_limit: int = 12
                        ) -> Optional[Counterexample]:
    """Return a :class:`Counterexample` if the networks differ, else ``None``.

    Networks with at most *exhaustive_limit* inputs are compared by complete
    simulation; larger ones by random-simulation filtering followed by a SAT
    miter proof.
    """
    if aig_a.num_pis != aig_b.num_pis or aig_a.num_pos != aig_b.num_pos:
        raise ValueError("equivalence requires matching interfaces")
    if aig_a.num_pis <= exhaustive_limit:
        ta = po_tables(aig_a)
        tb = po_tables(aig_b)
        if ta == tb:
            return None
        for po, (x, y) in enumerate(zip(ta, tb)):
            diff = x ^ y
            if diff:
                row = (diff & -diff).bit_length() - 1
                inputs = [bool((row >> i) & 1) for i in range(aig_a.num_pis)]
                return Counterexample(inputs, po, aig_a.po_name(po))
        return None
    # Random simulation first: a cheap refutation path.
    import random
    rng = random.Random(0xCEC)
    if hotpath.enabled():
        # Wide hot path: one 256-bit pass per network replaces four 64-bit
        # walks.  Patterns are drawn round-major (identical RNG sequence)
        # and the miscompare scan below visits (round, po, bit) in the
        # reference loop's order, so the counterexample is bit-identical.
        rounds = [[rng.getrandbits(64) for _ in range(aig_a.num_pis)]
                  for _ in range(4)]
        packed = [rounds[0][i] | (rounds[1][i] << 64) | (rounds[2][i] << 128)
                  | (rounds[3][i] << 192) for i in range(aig_a.num_pis)]
        mask = wide_mask(4)
        prog_a = sim_program(aig_a)
        prog_b = sim_program(aig_b)
        wa = prog_a.po_words(prog_a.run(packed, mask), mask)
        wb = prog_b.po_words(prog_b.run(packed, mask), mask)
        for r in range(4):
            shift = 64 * r
            for po, (x, y) in enumerate(zip(wa, wb)):
                diff = ((x >> shift) ^ (y >> shift)) & WORD_MASK
                if diff:
                    bit = (diff & -diff).bit_length() - 1
                    inputs = [bool((w >> bit) & 1) for w in rounds[r]]
                    return Counterexample(inputs, po, aig_a.po_name(po))
    else:
        for _ in range(4):
            words = [rng.getrandbits(64) for _ in range(aig_a.num_pis)]
            wa = po_words(aig_a, simulate_words(aig_a, words))
            wb = po_words(aig_b, simulate_words(aig_b, words))
            for po, (x, y) in enumerate(zip(wa, wb)):
                diff = x ^ y
                if diff:
                    bit = (diff & -diff).bit_length() - 1
                    inputs = [bool((w >> bit) & 1) for w in words]
                    return Counterexample(inputs, po, aig_a.po_name(po))
    miter = build_miter(aig_a, aig_b)
    cnf = AigCnf(miter)
    out = cnf.sat_literal(miter.pos()[0])
    if cnf.solver.solve((out,)):
        inputs = cnf.extract_pi_assignment()
        po = _first_miscomparing_po(aig_a, aig_b, inputs)
        return Counterexample(inputs, po, aig_a.po_name(po))
    return None


def check_equivalence(aig_a: Aig, aig_b: Aig,
                      exhaustive_limit: int = 12) -> Tuple[bool, Optional[List[bool]]]:
    """Decide whether two networks are combinationally equivalent.

    Returns ``(True, None)`` or ``(False, counterexample_pi_assignment)``.
    Thin compatibility wrapper over :func:`find_counterexample`.
    """
    cex = find_counterexample(aig_a, aig_b, exhaustive_limit=exhaustive_limit)
    if cex is None:
        return True, None
    return False, cex.inputs


def assert_equivalent(aig_a: Aig, aig_b: Aig) -> None:
    """Raise :class:`EquivalenceError` with a counterexample if networks differ."""
    cex = find_counterexample(aig_a, aig_b)
    if cex is not None:
        raise EquivalenceError(
            f"networks {aig_a.name!r} and {aig_b.name!r} differ: "
            f"{cex.format()}",
            cex=cex.inputs, po_index=cex.po_index, po_name=cex.po_name)
