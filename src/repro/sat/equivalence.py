"""Combinational equivalence checking (CEC).

Every experiment in the reproduction verifies its optimized network against
the original — the paper's "all benchmarks are verified with an industrial
formal equivalence checking flow" (Section V-C).  Small networks are checked
exhaustively by simulation; larger ones through a SAT miter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.aig.aig import Aig
from repro.aig.simulate import po_tables, po_words, simulate_words
from repro.sat.cnf import AigCnf, build_miter
from repro.sat.solver import SatSolver


def check_equivalence(aig_a: Aig, aig_b: Aig,
                      exhaustive_limit: int = 12) -> Tuple[bool, Optional[List[bool]]]:
    """Decide whether two networks are combinationally equivalent.

    Returns ``(True, None)`` or ``(False, counterexample_pi_assignment)``.
    Networks with at most *exhaustive_limit* inputs are compared by complete
    simulation; larger ones by random-simulation filtering followed by a SAT
    miter proof.
    """
    if aig_a.num_pis != aig_b.num_pis or aig_a.num_pos != aig_b.num_pos:
        raise ValueError("equivalence requires matching interfaces")
    if aig_a.num_pis <= exhaustive_limit:
        ta = po_tables(aig_a)
        tb = po_tables(aig_b)
        if ta == tb:
            return True, None
        for po, (x, y) in enumerate(zip(ta, tb)):
            diff = x ^ y
            if diff:
                row = (diff & -diff).bit_length() - 1
                return False, [bool((row >> i) & 1) for i in range(aig_a.num_pis)]
        return True, None
    # Random simulation first: a cheap refutation path.
    import random
    rng = random.Random(0xCEC)
    for _ in range(4):
        words = [rng.getrandbits(64) for _ in range(aig_a.num_pis)]
        wa = po_words(aig_a, simulate_words(aig_a, words))
        wb = po_words(aig_b, simulate_words(aig_b, words))
        for x, y in zip(wa, wb):
            diff = x ^ y
            if diff:
                bit = (diff & -diff).bit_length() - 1
                return False, [bool((w >> bit) & 1) for w in words]
    miter = build_miter(aig_a, aig_b)
    cnf = AigCnf(miter)
    out = cnf.sat_literal(miter.pos()[0])
    if cnf.solver.solve((out,)):
        return False, cnf.extract_pi_assignment()
    return True, None


def assert_equivalent(aig_a: Aig, aig_b: Aig) -> None:
    """Raise ``AssertionError`` with a counterexample if networks differ."""
    ok, cex = check_equivalence(aig_a, aig_b)
    if not ok:
        raise AssertionError(
            f"networks {aig_a.name!r} and {aig_b.name!r} differ, e.g. under "
            f"PI assignment {cex}")
