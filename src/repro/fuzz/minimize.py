"""Deterministic delta-debugging over AIGs: shrink, keep the failure.

Classic ddmin works on flat token lists; an AIG's tokens are gates with
dependency structure, so the reducer works on the byte-stable
:class:`CompactAig` form where every transformation is *acyclic by
construction* — a gate can only ever be replaced by something built
strictly earlier in the topological order:

* **chunk projection** — replace a contiguous run of gates by their
  first fanins (binary-search chunk sizes, largest first, the ddmin
  part);
* **output dropping** — try single surviving outputs, then halves;
* **constant grounding** — replace one remaining gate by FALSE;
* **PI dropping** — rebuild without PIs nothing references (shrinks the
  CEC input space, which speeds the predicate up as the network gets
  smaller).

The reducer is greedy to a fixpoint under a predicate-evaluation budget
and entirely deterministic: fixed pass order, no randomness, and every
candidate is re-canonicalized through ``to_aig()``/``from_aig()`` so
strash-level simplification is part of the shrink.  The predicate is
arbitrary ("the same oracle rung still fails", usually) but must be a
pure function of the network.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.aig.aig import Aig
from repro.parallel.window_io import CompactAig

Predicate = Callable[[Aig], bool]


@dataclasses.dataclass
class MinimizeResult:
    """Outcome of one reduction: the smaller network plus bookkeeping."""

    network: Aig
    nodes_before: int
    nodes_after: int
    evals: int          #: predicate evaluations spent
    rounds: int         #: full fixpoint rounds completed

    @property
    def ratio(self) -> float:
        """Final size as a fraction of the original (0 when already empty)."""
        if self.nodes_before == 0:
            return 0.0
        return self.nodes_after / self.nodes_before


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit


def _normalize(compact: CompactAig) -> CompactAig:
    """Round-trip through ``Aig`` so strashing/cleanup take effect."""
    return CompactAig.from_aig(compact.to_aig().cleanup())


def _rebuild(compact: CompactAig,
             replace: Dict[int, int],
             keep_outputs: Optional[List[int]] = None) -> CompactAig:
    """Rebuild *compact* with local node -> literal substitutions applied.

    ``replace`` maps a local gate id to the literal (in local numbering)
    that takes its place; the referenced node is always strictly earlier,
    so resolution is a single forward pass.
    """
    aig = Aig(compact.name)
    lits: List[int] = [0]
    lits.extend(aig.add_pis(compact.num_pis, "w"))
    first_gate = compact.num_pis + 1
    for index, (f0, f1) in enumerate(compact.gates):
        node = first_gate + index
        if node in replace:
            local = replace[node]
            lits.append(lits[local >> 1] ^ (local & 1))
            continue
        a = lits[f0 >> 1] ^ (f0 & 1)
        b = lits[f1 >> 1] ^ (f1 & 1)
        lits.append(aig.add_and(a, b))
    outputs = compact.outputs if keep_outputs is None \
        else [compact.outputs[i] for i in keep_outputs]
    for i, out in enumerate(outputs):
        aig.add_po(lits[out >> 1] ^ (out & 1), f"r{i}")
    return CompactAig.from_aig(aig.cleanup())


def _drop_unused_pis(compact: CompactAig) -> CompactAig:
    """Renumber away PIs no gate or output references."""
    used = set()
    for f0, f1 in compact.gates:
        used.add(f0 >> 1)
        used.add(f1 >> 1)
    for out in compact.outputs:
        used.add(out >> 1)
    keep = [pi for pi in range(1, compact.num_pis + 1) if pi in used]
    if len(keep) == compact.num_pis:
        return compact
    remap = {0: 0}
    for new, old in enumerate(keep):
        remap[old] = new + 1
    first_gate = compact.num_pis + 1
    new_first = len(keep) + 1
    for index in range(len(compact.gates)):
        remap[first_gate + index] = new_first + index

    def lit(old: int) -> int:
        return 2 * remap[old >> 1] + (old & 1)

    return CompactAig(num_pis=len(keep),
                      gates=[(lit(a), lit(b)) for a, b in compact.gates],
                      outputs=[lit(out) for out in compact.outputs],
                      name=compact.name)


def _try(candidate: CompactAig, current: CompactAig, predicate: Predicate,
         budget: _Budget) -> Optional[CompactAig]:
    """*candidate* normalized, if it shrinks and still fails; else None."""
    candidate = _normalize(candidate)
    if candidate.num_ands >= current.num_ands \
            and candidate.num_pis >= current.num_pis \
            and len(candidate.outputs) >= len(current.outputs):
        return None
    budget.spent += 1
    if predicate(candidate.to_aig()):
        return candidate
    return None


def _pass_chunks(current: CompactAig, predicate: Predicate,
                 budget: _Budget) -> CompactAig:
    """Project chunks of gates onto their first fanins, ddmin-style."""
    first_gate = current.num_pis + 1
    size = max(1, len(current.gates) // 2)
    while size >= 1 and not budget.exhausted:
        start = 0
        while start < len(current.gates) and not budget.exhausted:
            chunk = range(start, min(start + size, len(current.gates)))
            replace = {first_gate + i: current.gates[i][0] for i in chunk}
            kept = _try(_rebuild(current, replace), current, predicate,
                        budget)
            if kept is not None:
                current = kept
                first_gate = current.num_pis + 1
                # The gate list shrank and renumbered: restart this size.
                start = 0
            else:
                start += size
        size //= 2
    return current


def _pass_outputs(current: CompactAig, predicate: Predicate,
                  budget: _Budget) -> CompactAig:
    """Try single surviving outputs, then the first/second halves."""
    count = len(current.outputs)
    if count <= 1:
        return current
    candidates: List[List[int]] = [[i] for i in range(count)]
    candidates.append(list(range(count // 2)))
    candidates.append(list(range(count // 2, count)))
    for keep in candidates:
        if budget.exhausted or len(keep) >= len(current.outputs):
            continue
        kept = _try(_rebuild(current, {}, keep_outputs=keep), current,
                    predicate, budget)
        if kept is not None:
            return kept
    return current


def _pass_constants(current: CompactAig, predicate: Predicate,
                    budget: _Budget) -> CompactAig:
    """Ground individual gates to constant FALSE, last gate first."""
    index = len(current.gates) - 1
    while index >= 0 and not budget.exhausted:
        first_gate = current.num_pis + 1
        kept = _try(_rebuild(current, {first_gate + index: 0}), current,
                    predicate, budget)
        if kept is not None:
            current = kept
            index = min(index, len(current.gates)) - 1
        else:
            index -= 1
    return current


def minimize(aig: Aig, predicate: Predicate,
             max_evals: int = 200) -> MinimizeResult:
    """Shrink *aig* to a local minimum while *predicate* keeps holding.

    Raises ``ValueError`` when the predicate does not hold on the input —
    a reducer run on a passing network would "minimize" to noise.
    """
    current = _normalize(CompactAig.from_aig(aig))
    if not predicate(current.to_aig()):
        raise ValueError("minimize: predicate does not hold on the input "
                         "network")
    nodes_before = current.num_ands
    budget = _Budget(max_evals)
    rounds = 0
    while not budget.exhausted:
        before = (current.num_ands, current.num_pis, len(current.outputs))
        current = _pass_outputs(current, predicate, budget)
        current = _pass_chunks(current, predicate, budget)
        current = _pass_constants(current, predicate, budget)
        dropped = _drop_unused_pis(current)
        if dropped.num_pis < current.num_pis and not budget.exhausted:
            budget.spent += 1
            if predicate(dropped.to_aig()):
                current = dropped
        rounds += 1
        if (current.num_ands, current.num_pis,
                len(current.outputs)) == before:
            break
    return MinimizeResult(network=current.to_aig(),
                          nodes_before=nodes_before,
                          nodes_after=current.num_ands,
                          evals=budget.spent, rounds=rounds)
