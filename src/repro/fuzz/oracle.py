"""The differential oracle stack: everything we can check about one case.

Each fuzz case runs the full SBM flow and is then cross-examined by a
ladder of independent checks, in fixed order:

1. ``crash``   — the baseline flow run must complete (exception type and
   message are captured as the verdict otherwise); a wall-clock budget
   overrun is reported as a ``timeout`` verdict.
2. ``cec``     — SAT combinational equivalence of input vs. output (the
   PR-3 ``StageGuard``/``assert_equivalent`` machinery via
   :func:`repro.sat.equivalence.find_counterexample`).  On a miscompare
   the guilty stage is identified by re-running the flow with
   ``verify_each_step=True`` and reading the first guard rollback.
3. ``hotpath`` — the flow re-run with the hot path disabled must produce
   the bit-identical network (the ``repro.hotpath`` contract).
4. ``jobs``    — the flow re-run with ``jobs=N`` (process-parallel
   windows) must produce the bit-identical network (the
   ``repro.parallel`` contract).
5. ``chaos``   — for each chaos seed, the flow under injected faults
   with the equivalence guard on must still complete and stay
   SAT-equivalent to the input (the ``repro.guard`` contract).

The **baseline CEC run is deliberately unguarded** (``verify_each_step``
off): the stage guard *rolls back* miscomparing stages, which would
silently repair the very bugs the fuzzer exists to find.  The guarded
re-run is used only post-failure, for stage blame.

Every flow execution funnels through :func:`_execute_flow`, which is
also where the test-only :mod:`repro.fuzz.faults` hook corrupts results
— that single choke point is what makes the soundness self-test (and
bundle replay of injected bugs) exact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import hotpath
from repro.aig.aig import Aig
from repro.fuzz import faults
from repro.parallel.window_io import CompactAig
from repro.sat.equivalence import find_counterexample
from repro.sbm.config import FlowConfig

#: Fixed check order; the first failing rung is the case's primary verdict.
CHECK_ORDER = ("crash", "timeout", "cec", "hotpath", "jobs", "chaos")


@dataclasses.dataclass(frozen=True)
class OracleConfig:
    """Which rungs run, and the flow shape they exercise."""

    iterations: int = 1
    checks: Tuple[str, ...] = ("cec", "hotpath", "jobs", "chaos")
    jobs: int = 2                     #: width of the ``jobs`` rung
    chaos_seeds: Tuple[int, ...] = (7,)
    chaos_rate: float = 0.05          #: window-fault rate of the chaos rung
    stage_corrupt_rate: float = 0.05  #: stage-corruption rate, chaos rung
    enable_simresub: bool = True
    exhaustive_limit: int = 12        #: CEC exhaustive-simulation cutoff
    case_timeout_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"iterations": self.iterations, "checks": list(self.checks),
                "jobs": self.jobs, "chaos_seeds": list(self.chaos_seeds),
                "chaos_rate": self.chaos_rate,
                "stage_corrupt_rate": self.stage_corrupt_rate,
                "enable_simresub": self.enable_simresub,
                "exhaustive_limit": self.exhaustive_limit,
                "case_timeout_s": self.case_timeout_s}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OracleConfig":
        return cls(iterations=int(data.get("iterations", 1)),
                   checks=tuple(data.get("checks", ())),
                   jobs=int(data.get("jobs", 2)),
                   chaos_seeds=tuple(int(s) for s in
                                     data.get("chaos_seeds", ())),
                   chaos_rate=float(data.get("chaos_rate", 0.05)),
                   stage_corrupt_rate=float(
                       data.get("stage_corrupt_rate", 0.05)),
                   enable_simresub=bool(data.get("enable_simresub", True)),
                   exhaustive_limit=int(data.get("exhaustive_limit", 12)),
                   case_timeout_s=data.get("case_timeout_s"))

    def flow_config(self, jobs: int = 1, chaos: Any = None,
                    verify_each_step: bool = False,
                    pool: Any = None) -> FlowConfig:
        return FlowConfig(iterations=self.iterations, jobs=jobs,
                          chaos=chaos, pool=pool,
                          enable_simresub=self.enable_simresub,
                          verify_each_step=verify_each_step)


@dataclasses.dataclass
class OracleFailure:
    """One failed rung: the check that tripped and the evidence."""

    check: str                    #: rung name (``CHECK_ORDER`` member)
    kind: str                     #: exception type / divergence class
    detail: str = ""
    stage: Optional[str] = None   #: blamed flow stage, when identifiable
    cex: Optional[List[bool]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"check": self.check, "kind": self.kind, "detail": self.detail,
                "stage": self.stage,
                "cex": None if self.cex is None
                else [bool(b) for b in self.cex]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OracleFailure":
        cex = data.get("cex")
        return cls(check=str(data["check"]), kind=str(data["kind"]),
                   detail=str(data.get("detail", "")),
                   stage=data.get("stage"),
                   cex=None if cex is None else [bool(b) for b in cex])


@dataclasses.dataclass
class CaseResult:
    """Verdict of the full oracle stack on one case."""

    failures: List[OracleFailure] = dataclasses.field(default_factory=list)
    wall_s: float = 0.0
    flow_runtime_s: float = 0.0
    nodes_before: int = 0
    nodes_after: int = 0
    #: stage-coverage signature: which stages ran and whether they changed
    #: the network — the corpus keeps cases whose signature is novel
    signature: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def primary(self) -> Optional[OracleFailure]:
        """The first failure in ``CHECK_ORDER`` — the case's verdict."""
        for check in CHECK_ORDER:
            for failure in self.failures:
                if failure.check == check:
                    return failure
        return self.failures[0] if self.failures else None

    def to_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok, "wall_s": self.wall_s,
                "flow_runtime_s": self.flow_runtime_s,
                "nodes_before": self.nodes_before,
                "nodes_after": self.nodes_after,
                "signature": self.signature,
                "failures": [f.to_dict() for f in self.failures]}


def network_key(aig: Aig) -> str:
    """Content hash of *aig*'s canonical CompactAig form.

    Delegates to the repo-wide :func:`repro.campaign.cache
    .network_fingerprint` helper — byte-identical to the historical local
    implementation, so every previously written bundle fingerprint stays
    valid.
    """
    from repro.campaign.cache import network_fingerprint
    return network_fingerprint(aig)


def _execute_flow(source: Aig, config: FlowConfig) -> Tuple[Aig, Any]:
    """Run ``sbm_flow`` — the single choke point every oracle rung uses.

    The test-only :mod:`repro.fuzz.faults` hook corrupts the result here
    (and only here), so an installed fault behaves exactly like a buggy
    rewrite inside the flow under test.
    """
    from repro.sbm.flow import sbm_flow
    result, stats = sbm_flow(source, config)
    fault = faults.active()
    if fault is not None:
        result = fault.apply(result, source=source, jobs=config.jobs,
                             hotpath_on=hotpath.enabled())
    return result, stats


def _signature(stats: Any, failures: List[OracleFailure]) -> str:
    """Stage-coverage signature: stage names × did-the-size-move, plus any
    failure kinds.  Novelty of this string decides corpus admission."""
    parts: List[str] = []
    stages = []
    if stats is not None:
        stages = stats.to_dict().get("stages", [])
    previous: Optional[int] = None
    for record in stages:
        name = str(record.get("name", "?"))
        size = record.get("size")
        if previous is None or size == previous:
            mark = "="
        else:
            mark = "-" if size < previous else "+"
        previous = size if size is not None else previous
        parts.append(f"{name}{mark}")
    for failure in failures:
        parts.append(f"!{failure.check}:{failure.kind}")
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def _blame_stage(source: Aig, config: OracleConfig) -> Optional[str]:
    """Name the stage whose result miscompared, via a guarded re-run.

    With ``verify_each_step=True`` the :class:`StageGuard` SAT-checks
    every stage and *rolls back* the guilty one — the first
    ``rolled_back`` guard event names it.  A clean guarded re-run means
    the corruption happened outside any stage (e.g. the test-only fault
    hook): blamed as ``final``.
    """
    try:
        _result, stats = _execute_flow(source,
                                       config.flow_config(
                                           verify_each_step=True))
    except Exception:
        return None
    guard = getattr(stats, "guard", None)
    if guard is not None:
        for event in guard.events:
            if event.kind == "rolled_back":
                return event.stage
    return "final"


def run_case(aig: Aig, config: OracleConfig,
             pool: Any = None) -> CaseResult:
    """Run the oracle stack on *aig*; never raises for a flow failure.

    *pool* is an optional :class:`~repro.parallel.shared_pool
    .SharedProcessPool` the ``jobs`` rung reuses (one pool per fuzz run
    instead of one per case).
    """
    snapshot = CompactAig.from_aig(aig.cleanup())
    result = CaseResult(nodes_before=snapshot.num_ands)
    start = time.perf_counter()

    # -- rung 1: the baseline run must complete --------------------------------
    baseline: Optional[Aig] = None
    stats: Any = None
    try:
        baseline, stats = _execute_flow(snapshot.to_aig(),
                                        config.flow_config())
    except Exception as exc:
        result.failures.append(OracleFailure(
            check="crash", kind=type(exc).__name__, detail=str(exc)))
    flow_wall = time.perf_counter() - start
    if stats is not None:
        result.flow_runtime_s = float(getattr(stats, "runtime_s", 0.0))
    if config.case_timeout_s is not None and flow_wall > config.case_timeout_s:
        result.failures.append(OracleFailure(
            check="timeout", kind="CaseTimeout",
            detail=f"baseline flow took {flow_wall:.2f}s "
                   f"(budget {config.case_timeout_s:.2f}s)"))

    if baseline is not None:
        result.nodes_after = baseline.num_ands
        base_key = network_key(baseline)

        # -- rung 2: SAT CEC of input vs. output -------------------------------
        if "cec" in config.checks:
            cex = find_counterexample(snapshot.to_aig(), baseline,
                                      exhaustive_limit=config.exhaustive_limit)
            if cex is not None:
                result.failures.append(OracleFailure(
                    check="cec", kind="EquivalenceError",
                    detail=f"PO {cex.po_name or cex.po_index} differs",
                    stage=_blame_stage(snapshot.to_aig(), config),
                    cex=list(cex.inputs)))

        # -- rung 3: hot path on/off identity ----------------------------------
        if "hotpath" in config.checks:
            try:
                with hotpath.disabled():
                    reference, _ = _execute_flow(snapshot.to_aig(),
                                                 config.flow_config())
                if network_key(reference) != base_key:
                    result.failures.append(OracleFailure(
                        check="hotpath", kind="HotpathDivergence",
                        detail="hotpath-off network differs from "
                               "hotpath-on network"))
            except Exception as exc:
                result.failures.append(OracleFailure(
                    check="hotpath", kind=type(exc).__name__,
                    detail=f"hotpath-off re-run raised: {exc}"))

        # -- rung 4: jobs=N vs jobs=1 bit-identity -----------------------------
        if "jobs" in config.checks and config.jobs > 1:
            try:
                wide, _ = _execute_flow(snapshot.to_aig(),
                                        config.flow_config(jobs=config.jobs,
                                                           pool=pool))
                if network_key(wide) != base_key:
                    result.failures.append(OracleFailure(
                        check="jobs", kind="JobsDivergence",
                        detail=f"jobs={config.jobs} network differs from "
                               f"jobs=1 network"))
            except Exception as exc:
                result.failures.append(OracleFailure(
                    check="jobs", kind=type(exc).__name__,
                    detail=f"jobs={config.jobs} re-run raised: {exc}"))

        # -- rung 5: chaos sweeps must survive and stay equivalent -------------
        if "chaos" in config.checks:
            for seed in config.chaos_seeds:
                from repro.guard.chaos import FaultPlan
                plan = FaultPlan(seed=seed, rate=config.chaos_rate,
                                 stage_corrupt_rate=config.stage_corrupt_rate)
                try:
                    shaken, _ = _execute_flow(
                        snapshot.to_aig(),
                        config.flow_config(chaos=plan,
                                           verify_each_step=True))
                except Exception as exc:
                    result.failures.append(OracleFailure(
                        check="chaos", kind=type(exc).__name__,
                        detail=f"chaos seed {seed} raised: {exc}"))
                    continue
                cex = find_counterexample(
                    snapshot.to_aig(), shaken,
                    exhaustive_limit=config.exhaustive_limit)
                if cex is not None:
                    result.failures.append(OracleFailure(
                        check="chaos", kind="EquivalenceError",
                        detail=f"chaos seed {seed}: guarded flow produced a "
                               f"non-equivalent network "
                               f"(PO {cex.po_name or cex.po_index})",
                        cex=list(cex.inputs)))

    result.signature = _signature(stats, result.failures)
    result.wall_s = time.perf_counter() - start
    return result
