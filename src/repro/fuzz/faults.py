"""Test-only fault hook: a deliberately buggy "rewrite" behind a switch.

The fuzzer's soundness is only testable against a flow that is actually
broken, so this module provides the *one* sanctioned way to break it: an
:class:`InjectedFault` wraps the flow result produced inside
:func:`repro.fuzz.oracle` and corrupts it deterministically.  Production
code never consults this hook — only the oracle's flow wrapper does, and
only when a fault has been installed programmatically
(:func:`injected`) or via the ``REPRO_FUZZ_INJECT`` environment variable
(which is what lets ``python -m repro fuzz repro <bundle>`` reproduce an
injected bug in a fresh process).

Fault kinds (spec syntax ``kind:threshold``):

* ``flip-po`` — complement PO 0 of the flow result whenever the *input*
  network has at least ``threshold`` AND gates.  Mimics a miscompiled
  rewrite; caught by the SAT CEC oracle rung.
* ``crash`` — raise ``RuntimeError`` under the same condition; caught by
  the crash-capture rung.
* ``refpath-flip`` — flip PO 0 only when the hot path is *disabled*, so
  the baseline run is clean and only the hotpath-identity rung trips.
* ``jobs-flip`` — flip PO 0 only when the flow ran with ``jobs > 1``, so
  only the jobs-bit-identity rung trips.

Thresholds condition on the input size so the minimizer has room to
shrink a failing network while keeping the failure alive.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.aig.aig import Aig

#: Environment variable consulted when no fault is installed in-process.
ENV_VAR = "REPRO_FUZZ_INJECT"

FAULT_KINDS = ("flip-po", "crash", "refpath-flip", "jobs-flip")

_ACTIVE: Optional["InjectedFault"] = None


@dataclass(frozen=True)
class InjectedFault:
    """A parsed ``kind:threshold`` fault spec."""

    kind: str
    threshold: int

    @property
    def spec(self) -> str:
        return f"{self.kind}:{self.threshold}"

    @classmethod
    def parse(cls, spec: str) -> "InjectedFault":
        kind, _, raw = spec.partition(":")
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown injected-fault kind {kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        try:
            threshold = int(raw) if raw else 1
        except ValueError:
            raise ValueError(
                f"injected-fault threshold must be an integer, got {raw!r}"
            ) from None
        return cls(kind=kind, threshold=threshold)

    def apply(self, result: Aig, source: Aig, jobs: int,
              hotpath_on: bool) -> Aig:
        """The corrupted flow result (or *result* unchanged)."""
        if source.num_ands < self.threshold:
            return result
        if self.kind == "crash":
            raise RuntimeError(f"injected fault: crash (spec={self.spec})")
        if self.kind == "refpath-flip" and hotpath_on:
            return result
        if self.kind == "jobs-flip" and jobs <= 1:
            return result
        return _flip_first_po(result)


def _flip_first_po(aig: Aig) -> Aig:
    """A copy of *aig* with its first primary output complemented."""
    if aig.num_pos == 0:
        return aig
    from repro.parallel.window_io import CompactAig
    compact = CompactAig.from_aig(aig)
    compact.outputs[0] ^= 1
    return compact.to_aig()


def active() -> Optional[InjectedFault]:
    """The installed fault, else the ``REPRO_FUZZ_INJECT`` one, else None."""
    if _ACTIVE is not None:
        return _ACTIVE
    spec = os.environ.get(ENV_VAR)
    if spec:
        return InjectedFault.parse(spec)
    return None


@contextlib.contextmanager
def injected(spec: Optional[str]) -> Iterator[Optional[InjectedFault]]:
    """Install the fault described by *spec* for the duration of the block.

    ``None`` is a no-op context so callers can forward an optional spec
    unconditionally.  Contexts nest; the innermost wins.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = InjectedFault.parse(spec) if spec is not None else previous
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
