"""Failure bundles, fingerprints, and the persistent fuzz corpus.

A failing case is only useful if someone else can replay it, so every
failure becomes one **self-contained JSON bundle**: the recipe, the
original and minimized networks (byte-stable CompactAig dicts — the same
encoding the checkpoint and cache layers use), the oracle configuration,
the verdict, and the injected-fault spec when the test-only hook was
active.  ``python -m repro fuzz repro <bundle>`` rebuilds everything
from the bundle alone — no repo state, no seed files, no corpus.

Bundles are **deduplicated by failure fingerprint**: SHA-256 over
``(failure kind, blamed stage, minimized-network content key)``.  Two
cases that crash the same stage the same way on the same minimal network
are one bug, not two artifacts.

The :class:`FuzzCorpus` is the growable half: cases whose
*stage-coverage signature* (which stages ran / changed the network —
see :func:`repro.fuzz.oracle._signature`) is novel are kept as recipe
files and replayed at the start of later runs, so nightly CI's cached
corpus ratchets coverage instead of rolling the same dice every night.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.aig.aig import Aig
from repro.fuzz import faults
from repro.fuzz.generators import CaseRecipe
from repro.fuzz.oracle import (CaseResult, OracleConfig, OracleFailure,
                               network_key, run_case)
from repro.guard.checkpoint import atomic_write_text
from repro.parallel.window_io import CompactAig

BUNDLE_SCHEMA = "repro.fuzz/bundle-v1"
CORPUS_SCHEMA = "repro.fuzz/corpus-v1"


def compact_to_dict(compact: CompactAig) -> Dict[str, Any]:
    return {"num_pis": compact.num_pis,
            "gates": [list(gate) for gate in compact.gates],
            "outputs": list(compact.outputs),
            "name": compact.name}


def compact_from_dict(data: Dict[str, Any]) -> CompactAig:
    return CompactAig(num_pis=int(data["num_pis"]),
                      gates=[(int(g[0]), int(g[1])) for g in data["gates"]],
                      outputs=[int(out) for out in data["outputs"]],
                      name=str(data.get("name", "fuzz")))


def fingerprint_of(failure: OracleFailure, minimized: Aig) -> str:
    """Failure identity: exception kind + blamed stage + minimal network."""
    payload = "|".join([failure.kind, failure.stage or "",
                        network_key(minimized)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass
class FailureBundle:
    """Everything needed to replay one failure from a single file."""

    recipe: Dict[str, Any]            #: ``CaseRecipe.to_dict()``
    oracle: Dict[str, Any]            #: ``OracleConfig.to_dict()``
    network: Dict[str, Any]           #: original input, CompactAig dict
    minimized: Optional[Dict[str, Any]]
    verdict: Dict[str, Any]           #: ``CaseResult.to_dict()``
    fingerprint: str
    injected: Optional[str] = None    #: test-only fault spec, when active

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": BUNDLE_SCHEMA, "recipe": self.recipe,
                "oracle": self.oracle, "network": self.network,
                "minimized": self.minimized, "verdict": self.verdict,
                "fingerprint": self.fingerprint, "injected": self.injected}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailureBundle":
        if data.get("schema") != BUNDLE_SCHEMA:
            raise ValueError(f"not a fuzz bundle (schema="
                             f"{data.get('schema')!r}, expected "
                             f"{BUNDLE_SCHEMA!r})")
        return cls(recipe=dict(data["recipe"]), oracle=dict(data["oracle"]),
                   network=dict(data["network"]),
                   minimized=(dict(data["minimized"])
                              if data.get("minimized") else None),
                   verdict=dict(data["verdict"]),
                   fingerprint=str(data["fingerprint"]),
                   injected=data.get("injected"))

    @property
    def primary(self) -> Optional[OracleFailure]:
        failures = [OracleFailure.from_dict(f)
                    for f in self.verdict.get("failures", [])]
        return CaseResult(failures=failures).primary


def build_bundle(recipe: CaseRecipe, config: OracleConfig, network: Aig,
                 verdict: CaseResult,
                 minimized: Optional[Aig]) -> FailureBundle:
    """Assemble the bundle for one failing case."""
    primary = verdict.primary
    assert primary is not None, "build_bundle called on a passing case"
    fault = faults.active()
    anchor = minimized if minimized is not None else network
    return FailureBundle(
        recipe=recipe.to_dict(), oracle=config.to_dict(),
        network=compact_to_dict(CompactAig.from_aig(network)),
        minimized=(compact_to_dict(CompactAig.from_aig(minimized))
                   if minimized is not None else None),
        verdict=verdict.to_dict(),
        fingerprint=fingerprint_of(primary, anchor),
        injected=fault.spec if fault is not None else None)


def write_bundle(directory: str, bundle: FailureBundle) -> Tuple[str, bool]:
    """Commit *bundle* under its fingerprint: ``(path, newly_written)``.

    The fingerprint is the file name, so re-finding a known bug is a
    no-op — that is the dedup.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"bundle-{bundle.fingerprint}.json")
    if os.path.exists(path):
        return path, False
    atomic_write_text(path, json.dumps(bundle.to_dict(), sort_keys=True,
                                       indent=1) + "\n")
    return path, True


def load_bundle(path: str) -> FailureBundle:
    with open(path, "r", encoding="utf-8") as handle:
        return FailureBundle.from_dict(json.load(handle))


@dataclasses.dataclass
class ReplayResult:
    """Outcome of replaying a bundle against the current code."""

    verdict: CaseResult
    reproduced: bool      #: primary (check, kind, stage) matches the bundle
    expected: Optional[OracleFailure]


def replay_bundle(bundle: FailureBundle,
                  minimized: bool = True) -> ReplayResult:
    """Re-run the oracle on the bundled network; compare primary verdicts.

    Replays the *minimized* network by default (the original with
    ``minimized=False``).  A recorded injected-fault spec is re-installed
    for the replay — reproducing a soundness self-test requires the same
    deliberately broken flow the bundle was recorded against.
    """
    source = bundle.minimized if (minimized and bundle.minimized) \
        else bundle.network
    aig = compact_from_dict(source).to_aig()
    config = OracleConfig.from_dict(bundle.oracle)
    with faults.injected(bundle.injected):
        verdict = run_case(aig, config)
    expected = bundle.primary
    actual = verdict.primary
    reproduced = (expected is not None and actual is not None
                  and actual.check == expected.check
                  and actual.kind == expected.kind
                  and actual.stage == expected.stage)
    return ReplayResult(verdict=verdict, reproduced=reproduced,
                        expected=expected)


class FuzzCorpus:
    """Recipes whose stage-coverage signature was novel, kept on disk.

    One JSON file per signature (``sig-<signature>.json``), so the
    corpus is trivially mergeable and cache-friendly: nightly CI
    restores the directory, the run replays every kept recipe first,
    and newly novel cases are added for the next night.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.signatures: Dict[str, CaseRecipe] = {}
        self.added = 0
        try:
            os.makedirs(self.root, exist_ok=True)
            names = sorted(os.listdir(self.root))
        except OSError:
            names = []  # unusable corpus dir: degrade to in-memory only
        for name in names:
            if not (name.startswith("sig-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.root, name), "r",
                          encoding="utf-8") as handle:
                    data = json.load(handle)
                if data.get("schema") != CORPUS_SCHEMA:
                    continue
                self.signatures[str(data["signature"])] = \
                    CaseRecipe.from_dict(data["recipe"])
            except (OSError, ValueError, KeyError):
                continue  # an unreadable entry is skipped, never fatal

    def __len__(self) -> int:
        return len(self.signatures)

    def recipes(self) -> List[CaseRecipe]:
        """Kept recipes in signature order (stable across machines)."""
        return [self.signatures[sig] for sig in sorted(self.signatures)]

    def add_if_novel(self, recipe: CaseRecipe, signature: str) -> bool:
        """Keep *recipe* when *signature* is new; True when kept."""
        if not signature or signature in self.signatures:
            return False
        self.signatures[signature] = recipe
        path = os.path.join(self.root, f"sig-{signature}.json")
        document = {"schema": CORPUS_SCHEMA, "signature": signature,
                    "recipe": recipe.to_dict()}
        try:
            atomic_write_text(path, json.dumps(document, sort_keys=True)
                              + "\n")
        except OSError:
            return False  # an unwritable corpus degrades to in-memory
        self.added += 1
        return True
