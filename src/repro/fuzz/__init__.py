"""Differential workload fuzzing for the SBM flow (``repro.fuzz``).

The paper's engines earned trust by surviving thousands of industrial
designs; this package replaces that corpus with *generated* adversity.
Seeded generators (:mod:`repro.fuzz.generators`) produce random AIGs,
random SOP networks, and structural mutants of the EPFL registry designs;
a differential oracle stack (:mod:`repro.fuzz.oracle`) runs the full SBM
flow on each case and cross-examines the result — SAT CEC against the
input, hot-path on/off identity, ``jobs=N`` vs serial bit-identity,
crash/timeout capture, and chaos-seed sweeps layered on top.  Failures
are shrunk to a local minimum (:mod:`repro.fuzz.minimize`) and written as
self-contained repro bundles (:mod:`repro.fuzz.triage`) replayable with
``python -m repro fuzz repro <bundle>``.

Everything is deterministic: a case is its ``(generator, seed, params)``
recipe, oracle decisions depend only on the recipe and the oracle
config, and the minimizer is a fixed-order greedy reducer — the same
seed always produces the same verdicts, which is what lets CI run a
fixed budget and fail on *any* oracle verdict.
"""

from repro.fuzz.generators import CaseRecipe, build_case, iter_recipes
from repro.fuzz.minimize import MinimizeResult, minimize
from repro.fuzz.oracle import CaseResult, OracleConfig, OracleFailure, run_case
from repro.fuzz.runner import FuzzConfig, FuzzReport, load_fuzz_suite, run_fuzz
from repro.fuzz.triage import (FailureBundle, FuzzCorpus, load_bundle,
                               replay_bundle, write_bundle)

__all__ = [
    "CaseRecipe", "build_case", "iter_recipes",
    "OracleConfig", "OracleFailure", "CaseResult", "run_case",
    "MinimizeResult", "minimize",
    "FailureBundle", "FuzzCorpus", "load_bundle", "replay_bundle",
    "write_bundle",
    "FuzzConfig", "FuzzReport", "load_fuzz_suite", "run_fuzz",
]
