"""Seeded, deterministic random-network generators for the fuzzer.

A fuzz case *is* its :class:`CaseRecipe` — ``(generator, seed, params)``
— and :func:`build_case` is a pure function of the recipe: the same
recipe rebuilds the same network on any machine in any process (all
randomness flows through one ``random.Random(seed)``, never through
``hash()`` or set iteration).  That property is what makes repro bundles
self-contained and fuzz runs byte-comparable across machines.

Three generator families:

* ``random-aig`` — random AND graphs under a depth/fanin profile
  (``deep`` chains recent nodes, ``wide`` stays near the PIs, ``mixed``
  picks uniformly), exercising shapes the EPFL suite never takes;
* ``random-sop`` — random sum-of-products networks (OR of random
  cubes), the adversarial-SOP shape for the kerneling engine;
* ``epfl-mutant`` — structural mutators over the EPFL registry designs:
  cone duplication, input merging, constant injection, and inverter
  churn, applied to the byte-stable CompactAig form so mutations stay
  acyclic by construction (a rewritten fanin can only point at an
  earlier node).

Mutants deliberately change function — the oracle compares the flow's
*input* against its *output*, so any well-formed network is a valid
case.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Tuple

from repro.aig.aig import Aig
from repro.parallel.window_io import CompactAig

#: Small EPFL designs used as mutation stock — kept under ~250 nodes so a
#: fuzz case's flow runs stay sub-second and CI budgets stay meaningful.
MUTATION_BENCHMARKS = ("router", "priority", "arbiter", "adder", "bar")

PROFILES = ("deep", "wide", "mixed")

MUTATION_OPS = ("cone-dup", "input-merge", "const-inject", "inverter-churn")


@dataclass(frozen=True)
class CaseRecipe:
    """The complete, replayable identity of one fuzz case."""

    generator: str
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"generator": self.generator, "seed": self.seed,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CaseRecipe":
        return cls(generator=str(data["generator"]), seed=int(data["seed"]),
                   params=dict(data.get("params", {})))

    def canonical(self) -> str:
        """Canonical JSON of the recipe — the byte-comparable form."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def case_id(self) -> str:
        """Short content id of the recipe (stable across processes)."""
        digest = hashlib.sha256(self.canonical().encode("utf-8"))
        return digest.hexdigest()[:12]


def build_case(recipe: CaseRecipe) -> Aig:
    """The network described by *recipe*; pure function of the recipe."""
    try:
        generator = _GENERATORS[recipe.generator]
    except KeyError:
        raise ValueError(f"unknown fuzz generator {recipe.generator!r} "
                         f"(expected one of {sorted(_GENERATORS)})") from None
    rng = random.Random(recipe.seed)
    aig = generator(rng, dict(recipe.params))
    aig.name = f"fuzz-{recipe.case_id}"
    return aig.cleanup()


# -- random AIGs ---------------------------------------------------------------

def _gen_random_aig(rng: random.Random, params: Dict[str, Any]) -> Aig:
    num_pis = int(params.get("num_pis", 8))
    num_gates = int(params.get("num_gates", 40))
    num_pos = int(params.get("num_pos", 4))
    profile = str(params.get("profile", "mixed"))
    if profile not in PROFILES:
        raise ValueError(f"unknown random-aig profile {profile!r}")
    aig = Aig("fuzz-rand")
    lits: List[int] = list(aig.add_pis(num_pis, "x"))
    for _ in range(num_gates):
        if profile == "deep" and len(lits) > num_pis:
            # Chain off the most recent nodes: long reconvergent spines.
            tail = lits[-min(6, len(lits)):]
            a = tail[rng.randrange(len(tail))]
            b = lits[rng.randrange(len(lits))]
        elif profile == "wide":
            # Stay shallow: broad fanin off the PIs and early gates.
            head = lits[:max(num_pis, len(lits) // 3)]
            a = head[rng.randrange(len(head))]
            b = head[rng.randrange(len(head))]
        else:
            a = lits[rng.randrange(len(lits))]
            b = lits[rng.randrange(len(lits))]
        a ^= rng.getrandbits(1)
        b ^= rng.getrandbits(1)
        # Strashing may return an existing literal; the duplicate entry
        # simply raises that node's chance of being reused downstream.
        lits.append(aig.add_and(a, b))
    pool = lits[num_pis:] or lits
    for i in range(max(1, num_pos)):
        po = pool[rng.randrange(len(pool))] ^ rng.getrandbits(1)
        aig.add_po(po, f"f{i}")
    return aig


# -- random SOP networks -------------------------------------------------------

def _gen_random_sop(rng: random.Random, params: Dict[str, Any]) -> Aig:
    num_vars = int(params.get("num_vars", 8))
    num_outputs = int(params.get("num_outputs", 3))
    num_cubes = int(params.get("num_cubes", 6))
    cube_width = int(params.get("cube_width", 3))
    aig = Aig("fuzz-sop")
    pis = list(aig.add_pis(num_vars, "x"))
    for out in range(max(1, num_outputs)):
        cube_lits: List[int] = []
        for _ in range(max(1, num_cubes)):
            width = min(max(1, cube_width), num_vars)
            variables = rng.sample(range(num_vars), width)
            cube = 1  # constant TRUE
            for var in variables:
                cube = aig.add_and(cube, pis[var] ^ rng.getrandbits(1))
            cube_lits.append(cube)
        total = 0  # constant FALSE
        for cube in cube_lits:
            total = aig.add_or(total, cube)
        aig.add_po(total, f"f{out}")
    return aig


# -- EPFL structural mutants ---------------------------------------------------

def _gen_epfl_mutant(rng: random.Random, params: Dict[str, Any]) -> Aig:
    benchmark = str(params.get("benchmark", "router"))
    num_ops = int(params.get("num_ops", 4))
    from repro.bench.registry import get_benchmark
    compact = CompactAig.from_aig(get_benchmark(benchmark, scaled=True))
    for _ in range(max(1, num_ops)):
        op = MUTATION_OPS[rng.randrange(len(MUTATION_OPS))]
        compact = _MUTATORS[op](rng, compact)
    return compact.to_aig()


def _mutate_inverter_churn(rng: random.Random,
                           compact: CompactAig) -> CompactAig:
    """Flip the complement bit of a few random gate fanins."""
    gates = [list(gate) for gate in compact.gates]
    if not gates:
        return compact
    for _ in range(min(8, max(1, len(gates) // 16))):
        gate = gates[rng.randrange(len(gates))]
        side = rng.getrandbits(1)
        gate[side] ^= 1
    return CompactAig(num_pis=compact.num_pis,
                      gates=[(g[0], g[1]) for g in gates],
                      outputs=list(compact.outputs), name=compact.name)


def _mutate_const_inject(rng: random.Random,
                         compact: CompactAig) -> CompactAig:
    """Tie one random gate fanin to constant FALSE or TRUE."""
    gates = [list(gate) for gate in compact.gates]
    if not gates:
        return compact
    gate = gates[rng.randrange(len(gates))]
    gate[rng.getrandbits(1)] = rng.getrandbits(1)  # literal 0 or 1
    return CompactAig(num_pis=compact.num_pis,
                      gates=[(g[0], g[1]) for g in gates],
                      outputs=list(compact.outputs), name=compact.name)


def _mutate_input_merge(rng: random.Random,
                        compact: CompactAig) -> CompactAig:
    """Alias one PI onto another (the aliased PI dangles afterwards)."""
    if compact.num_pis < 2:
        return compact
    keep = 1 + rng.randrange(compact.num_pis)
    drop = 1 + rng.randrange(compact.num_pis)
    if keep == drop:
        return compact

    def remap(lit: int) -> int:
        return 2 * keep + (lit & 1) if lit >> 1 == drop else lit

    gates = [(remap(a), remap(b)) for a, b in compact.gates]
    outputs = [remap(out) for out in compact.outputs]
    return CompactAig(num_pis=compact.num_pis, gates=gates, outputs=outputs,
                      name=compact.name)


def _mutate_cone_dup(rng: random.Random, compact: CompactAig,
                     max_cone: int = 24) -> CompactAig:
    """Duplicate one gate's fanin cone (bounded), churn one literal in the
    copy, and expose the copy's root as an extra output."""
    if not compact.gates:
        return compact
    first_gate = compact.num_pis + 1
    root = first_gate + rng.randrange(len(compact.gates))
    # Collect the bounded cone above *root* (gates only, reverse-id order
    # guarantees fanins are visited after their fanouts).
    cone: List[int] = []
    frontier = [root]
    seen = {root}
    while frontier and len(cone) < max_cone:
        node = max(frontier)
        frontier.remove(node)
        cone.append(node)
        a, b = compact.gates[node - first_gate]
        for lit in (a, b):
            fanin = lit >> 1
            if fanin >= first_gate and fanin not in seen:
                seen.add(fanin)
                frontier.append(fanin)
    cone.sort()
    gates = [tuple(gate) for gate in compact.gates]
    clone: Dict[int, int] = {}
    for node in cone:
        a, b = compact.gates[node - first_gate]

        def remap(lit: int) -> int:
            fanin = lit >> 1
            if fanin in clone:
                return 2 * clone[fanin] + (lit & 1)
            return lit

        gates.append((remap(a), remap(b)))
        clone[node] = first_gate + len(gates) - 1
    # Perturb one literal of the copy so it is not a strash-identical twin.
    idx = len(gates) - 1 - rng.randrange(len(cone))
    a, b = gates[idx]
    gates[idx] = (a ^ 1, b) if rng.getrandbits(1) else (a, b ^ 1)
    outputs = list(compact.outputs)
    outputs.append(2 * clone[root] + rng.getrandbits(1))
    return CompactAig(num_pis=compact.num_pis,
                      gates=[(g[0], g[1]) for g in gates],
                      outputs=outputs, name=compact.name)


_MUTATORS: Dict[str, Callable[[random.Random, CompactAig], CompactAig]] = {
    "cone-dup": _mutate_cone_dup,
    "input-merge": _mutate_input_merge,
    "const-inject": _mutate_const_inject,
    "inverter-churn": _mutate_inverter_churn,
}

_GENERATORS: Dict[str, Callable[[random.Random, Dict[str, Any]], Aig]] = {
    "random-aig": _gen_random_aig,
    "random-sop": _gen_random_sop,
    "epfl-mutant": _gen_epfl_mutant,
}

GENERATOR_NAMES: Tuple[str, ...] = tuple(sorted(_GENERATORS))


def iter_recipes(seed: int, budget: int,
                 generators: Tuple[str, ...] = GENERATOR_NAMES,
                 benchmarks: Tuple[str, ...] = MUTATION_BENCHMARKS,
                 max_gates: int = 60) -> Iterator[CaseRecipe]:
    """Yield *budget* recipes drawn deterministically from *seed*.

    One master ``Random(seed)`` draws every generator choice, parameter,
    and per-case seed, so the full recipe sequence is a pure function of
    ``(seed, budget, generators, benchmarks, max_gates)`` — run it twice
    and the recipes compare byte-identical.
    """
    for name in generators:
        if name not in _GENERATORS:
            raise ValueError(f"unknown fuzz generator {name!r}")
    master = random.Random(seed)
    for _ in range(budget):
        generator = generators[master.randrange(len(generators))]
        case_seed = master.getrandbits(32)
        params: Dict[str, Any]
        if generator == "random-aig":
            params = {
                "num_pis": 4 + master.randrange(10),
                "num_gates": 10 + master.randrange(max(1, max_gates - 10)),
                "num_pos": 1 + master.randrange(5),
                "profile": PROFILES[master.randrange(len(PROFILES))],
            }
        elif generator == "random-sop":
            params = {
                "num_vars": 4 + master.randrange(8),
                "num_outputs": 1 + master.randrange(4),
                "num_cubes": 2 + master.randrange(7),
                "cube_width": 2 + master.randrange(4),
            }
        else:  # epfl-mutant
            params = {
                "benchmark": benchmarks[master.randrange(len(benchmarks))],
                "num_ops": 1 + master.randrange(6),
            }
        yield CaseRecipe(generator=generator, seed=case_seed, params=params)
