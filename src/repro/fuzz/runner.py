"""The fuzz campaign driver: budget in, verdicts + bundles + corpus out.

One :func:`run_fuzz` call is a first-class campaign citizen:

* recipes stream from :func:`repro.fuzz.generators.iter_recipes` (after
  replaying the persistent corpus, when one is configured);
* every case emits ``fuzz_case`` / ``fuzz_failure`` events on the obs
  live bus, so ``--progress`` and ``--progress-jsonl`` work exactly as
  they do for campaigns;
* the finished run is recorded as a campaign report
  (``suite = "fuzz:<name>"``, one ``jobs_detail`` row per case) — run
  reports validate against schema v3 unchanged and the telemetry
  history store ingests fuzz runs with no new code;
* failures are minimized, fingerprinted, deduplicated, and written as
  repro bundles; novel stage-coverage signatures grow the corpus.

Suite tiers live in ``suites/fuzz.toml`` (``[tiers.<name>]`` tables);
the CLI front door is ``python -m repro fuzz run`` in
:mod:`repro.__main__`.
"""

from __future__ import annotations

import dataclasses
import time
import tomllib
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.fuzz.generators import (GENERATOR_NAMES, MUTATION_BENCHMARKS,
                                   CaseRecipe, build_case, iter_recipes)
from repro.fuzz.minimize import minimize
from repro.fuzz.oracle import CaseResult, OracleConfig, run_case
from repro.fuzz.triage import (FailureBundle, FuzzCorpus, build_bundle,
                               write_bundle)

#: Minimizer predicate evaluations per failing case.
DEFAULT_MINIMIZE_EVALS = 120


@dataclasses.dataclass
class FuzzConfig:
    """One fuzz run: the budget, the seed, and the oracle shape."""

    budget: int = 100
    seed: int = 0xF022
    generators: Tuple[str, ...] = GENERATOR_NAMES
    benchmarks: Tuple[str, ...] = MUTATION_BENCHMARKS
    max_gates: int = 60               #: size cap fed to the generators
    oracle: OracleConfig = dataclasses.field(default_factory=OracleConfig)
    bundle_dir: Optional[str] = None  #: where failure bundles land
    corpus_dir: Optional[str] = None  #: persistent corpus (None = off)
    stop_after_failures: Optional[int] = None
    minimize_evals: int = DEFAULT_MINIMIZE_EVALS
    name: str = "adhoc"


@dataclasses.dataclass
class CaseRow:
    """Report row for one executed case (mirrors a campaign job row)."""

    index: int
    recipe: CaseRecipe
    verdict: CaseResult
    from_corpus: bool = False
    bundle_path: Optional[str] = None
    fingerprint: Optional[str] = None
    minimized_nodes: Optional[int] = None

    @property
    def name(self) -> str:
        return f"case-{self.index:04d}-{self.recipe.case_id}"


@dataclasses.dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    name: str = "adhoc"
    seed: int = 0
    budget: int = 0
    cases: List[CaseRow] = dataclasses.field(default_factory=list)
    corpus_replayed: int = 0
    corpus_added: int = 0
    bundles: List[str] = dataclasses.field(default_factory=list)
    fingerprints: List[str] = dataclasses.field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def executed(self) -> int:
        return len(self.cases)

    @property
    def failures(self) -> int:
        return sum(1 for row in self.cases if not row.verdict.ok)

    @property
    def unique_failures(self) -> int:
        return len(set(self.fingerprints))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed, "budget": self.budget,
                "executed": self.executed, "failures": self.failures,
                "unique_failures": self.unique_failures,
                "corpus_replayed": self.corpus_replayed,
                "corpus_added": self.corpus_added,
                "bundles": list(self.bundles),
                "fingerprints": list(self.fingerprints),
                "elapsed_s": self.elapsed_s,
                "cases": [{"name": row.name,
                           "recipe": row.recipe.to_dict(),
                           "from_corpus": row.from_corpus,
                           "verdict": row.verdict.to_dict(),
                           "fingerprint": row.fingerprint,
                           "minimized_nodes": row.minimized_nodes}
                          for row in self.cases]}


def load_fuzz_suite(path: str, tier: Optional[str] = None) -> FuzzConfig:
    """Build a :class:`FuzzConfig` from a ``suites/fuzz.toml`` tier.

    The file carries a ``name``, optional top-level defaults, and one
    ``[tiers.<name>]`` table per tier; *tier* defaults to the file's
    ``default_tier`` (or ``smoke``).
    """
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    tiers = data.get("tiers", {})
    tier = tier or str(data.get("default_tier", "smoke"))
    if tier not in tiers:
        raise ValueError(f"fuzz suite {path!r} has no tier {tier!r} "
                         f"(available: {sorted(tiers)})")
    entry: Dict[str, Any] = dict(data.get("defaults", {}))
    entry.update(tiers[tier])
    oracle = OracleConfig(
        iterations=int(entry.get("iterations", 1)),
        checks=tuple(entry.get("checks",
                               ("cec", "hotpath", "jobs", "chaos"))),
        jobs=int(entry.get("oracle_jobs", 2)),
        chaos_seeds=tuple(int(s) for s in entry.get("chaos_seeds", (7,))),
        enable_simresub=bool(entry.get("enable_simresub", True)),
        case_timeout_s=entry.get("case_timeout_s"))
    return FuzzConfig(
        budget=int(entry.get("budget", 100)),
        seed=int(entry.get("seed", 0xF022)),
        generators=tuple(entry.get("generators", GENERATOR_NAMES)),
        benchmarks=tuple(entry.get("benchmarks", MUTATION_BENCHMARKS)),
        max_gates=int(entry.get("max_gates", 60)),
        oracle=oracle,
        minimize_evals=int(entry.get("minimize_evals",
                                     DEFAULT_MINIMIZE_EVALS)),
        name=f"{data.get('name', 'fuzz')}:{tier}")


def _failure_predicate(config: OracleConfig, expected_check: str,
                       expected_kind: str):
    """The minimizer predicate: the same primary failure still shows."""
    # Only the failing rung is re-run during shrinking — a cec failure
    # needs no hotpath/jobs/chaos re-runs per candidate.
    reduced = dataclasses.replace(
        config, checks=(expected_check,) if expected_check in config.checks
        else config.checks, chaos_seeds=config.chaos_seeds[:1])

    def predicate(aig) -> bool:
        verdict = run_case(aig, reduced)
        primary = verdict.primary
        return (primary is not None and primary.check == expected_check
                and primary.kind == expected_kind)

    return predicate


def _campaign_report(report: FuzzReport, elapsed_s: float) -> Any:
    """The run's campaign-section twin: one job row per executed case."""
    from repro.campaign.runner import CampaignReport, JobResult
    campaign = CampaignReport(suite=f"fuzz:{report.name}")
    for row in report.cases:
        verdict = row.verdict
        primary = verdict.primary
        campaign.results.append(JobResult(
            name=row.name, benchmark=row.recipe.generator,
            outcome="error" if primary is not None else "uncached",
            wall_s=verdict.wall_s, flow_runtime_s=verdict.flow_runtime_s,
            nodes_before=verdict.nodes_before,
            nodes_after=verdict.nodes_after,
            error=(f"{primary.check}: {primary.kind}"
                   if primary is not None else None)))
        counter = "errors" if primary is not None else "uncached"
        setattr(campaign, counter, getattr(campaign, counter) + 1)
    campaign.elapsed_s = elapsed_s
    return campaign


def run_fuzz(config: FuzzConfig,
             history_db: Optional[str] = None) -> FuzzReport:
    """Execute one fuzz run; returns the report (and registers it)."""
    report = FuzzReport(name=config.name, seed=config.seed,
                        budget=config.budget)
    corpus = FuzzCorpus(config.corpus_dir) \
        if config.corpus_dir is not None else None
    pool = None
    if "jobs" in config.oracle.checks and config.oracle.jobs > 1:
        from repro.parallel.shared_pool import SharedProcessPool
        pool = SharedProcessPool(config.oracle.jobs)
    bus = obs.live_bus()
    start = time.perf_counter()
    if bus.enabled:
        bus.emit("campaign_start", suite=f"fuzz:{config.name}",
                 jobs=config.budget)
    try:
        replayed = [(recipe, True) for recipe in
                    (corpus.recipes() if corpus is not None else [])]
        generated = [(recipe, False) for recipe in
                     iter_recipes(config.seed, config.budget,
                                  generators=config.generators,
                                  benchmarks=config.benchmarks,
                                  max_gates=config.max_gates)]
        for index, (recipe, from_corpus) in enumerate(replayed + generated):
            if config.stop_after_failures is not None \
                    and report.failures >= config.stop_after_failures:
                break
            row = _run_one(index, recipe, from_corpus, config, corpus,
                           pool, bus)
            report.cases.append(row)
            if from_corpus:
                report.corpus_replayed += 1
            if row.fingerprint is not None:
                report.fingerprints.append(row.fingerprint)
            if row.bundle_path is not None:
                report.bundles.append(row.bundle_path)
    finally:
        if pool is not None:
            pool.shutdown()
    report.elapsed_s = time.perf_counter() - start
    report.corpus_added = corpus.added if corpus is not None else 0
    if bus.enabled:
        bus.emit("campaign_end", suite=f"fuzz:{config.name}",
                 hits=0, misses=0, deduped=0,
                 uncached=report.executed - report.failures,
                 errors=report.failures)
    campaign = _campaign_report(report, report.elapsed_s)
    obs.record_campaign_report(campaign)
    if history_db is not None:
        # Best-effort bookkeeping, exactly like campaign runs: a locked
        # or corrupt store must never turn a finished fuzz run into a
        # failure.
        try:
            from repro.obs.history import ingest_campaign_report
            ingest_campaign_report(history_db, campaign)
        except Exception as exc:
            import sys
            print(f"history ingest failed ({history_db}): "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
    return report


def _run_one(index: int, recipe: CaseRecipe, from_corpus: bool,
             config: FuzzConfig, corpus: Optional[FuzzCorpus],
             pool: Any, bus: Any) -> CaseRow:
    """Generate, judge, and (on failure) minimize + bundle one case."""
    if bus.enabled:
        bus.emit("fuzz_case", index=index, case=recipe.case_id,
                 generator=recipe.generator, from_corpus=from_corpus)
    network = build_case(recipe)
    verdict = run_case(network, config.oracle, pool=pool)
    row = CaseRow(index=index, recipe=recipe, verdict=verdict,
                  from_corpus=from_corpus)
    if corpus is not None and not from_corpus:
        corpus.add_if_novel(recipe, verdict.signature)
    primary = verdict.primary
    if primary is None:
        return row
    minimized = None
    try:
        shrunk = minimize(network,
                          _failure_predicate(config.oracle, primary.check,
                                             primary.kind),
                          max_evals=config.minimize_evals)
        minimized = shrunk.network
        row.minimized_nodes = shrunk.nodes_after
    except ValueError:
        # The failure did not reproduce under the reduced predicate
        # (flaky verdict) — bundle the original network unminimized.
        pass
    bundle = build_bundle(recipe, config.oracle, network, verdict, minimized)
    row.fingerprint = bundle.fingerprint
    if config.bundle_dir is not None:
        row.bundle_path, _new = write_bundle(config.bundle_dir, bundle)
    if bus.enabled:
        bus.emit("fuzz_failure", index=index, case=recipe.case_id,
                 check=primary.check, kind=primary.kind,
                 fingerprint=bundle.fingerprint)
    return row
