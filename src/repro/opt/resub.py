"""Windowed resubstitution (the ``rs`` move).

Classic truth-table resubstitution as in [1]: around each pivot node a small
window is collected (:func:`repro.partition.window.collect_window`); the
pivot and all divisor candidates are simulated completely over the window
leaves; then the pivot is re-expressed as

* a constant or a single existing divisor (0-resub, saves the whole MFFC),
* an AND/OR of two divisors in any phase (1-resub, saves MFFC − 1),
* an AND-OR combination of three divisors (2-resub, saves MFFC − 2),

whenever truth tables prove functional equality.  The Boolean-difference and
MSPF engines of :mod:`repro.sbm` generalize this with BDDs and global don't
cares; this module is their algebraic baseline.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.aig.aig import Aig, lit_is_compl, lit_node
from repro.aig.traversal import node_level_map
from repro.opt.shared import try_replace
from repro.partition.window import NodeWindow, collect_window
from repro.tt.truthtable import table_mask, variable_table


def resub(aig: Aig, max_leaves: int = 8, max_divisors: int = 60,
          min_gain: int = 1, max_inserted: int = 2,
          node_filter: Optional[set] = None) -> int:
    """One resubstitution pass; returns the total gain.

    ``max_inserted`` bounds the number of new nodes a replacement may use
    (0 → only 0-resub, 1 → also AND/OR pairs, 2 → three-divisor shapes).
    """
    total_gain = 0
    levels = node_level_map(aig)
    for pivot in list(aig.topological_order()):
        if aig.is_dead(pivot) or not aig.is_and(pivot):
            continue
        if node_filter is not None and pivot not in node_filter:
            continue
        mffc = aig.mffc_size(pivot)
        if mffc < 1:
            continue
        window = collect_window(aig, pivot, max_leaves=max_leaves,
                                max_divisors=max_divisors, levels=levels)
        if window is None or len(window.leaves) > 14:
            continue
        gain = _resub_window(aig, window, mffc, min_gain, max_inserted)
        if gain:
            total_gain += gain
    return total_gain


def _resub_window(aig: Aig, window: NodeWindow, mffc: int,
                  min_gain: int, max_inserted: int) -> int:
    pivot = window.pivot
    k = len(window.leaves)
    mask = table_mask(k)
    values = _simulate_window(aig, window)
    target = values[pivot]
    # Divisors must not include the pivot or dead nodes.
    divisors: List[Tuple[int, int]] = []  # (node, table)
    for d in window.divisors:
        if d == pivot or aig.is_dead(d) or d not in values:
            continue
        divisors.append((d, values[d]))
    for leaf in window.leaves:
        divisors.append((leaf, values[leaf]))

    def commit(build, needed_gain=min_gain):
        return try_replace(aig, pivot, build, min_gain=needed_gain)

    # --- 0-resub: constants and single divisors -----------------------------
    if target == 0:
        gain = commit(lambda: 0)
        if gain is not None:
            return gain
    if target == mask:
        gain = commit(lambda: 1)
        if gain is not None:
            return gain
    for d, table in divisors:
        if table == target:
            gain = commit(lambda d=d: 2 * d)
            if gain is not None:
                return gain
        elif table ^ mask == target:
            gain = commit(lambda d=d: 2 * d + 1)
            if gain is not None:
                return gain
    if max_inserted < 1 or mffc < 2:
        return 0
    # --- 1-resub: two-divisor AND/OR in all phases ----------------------------
    for (da, ta), (db, tb) in combinations(divisors, 2):
        for pa in (0, 1):
            for pb in (0, 1):
                va = ta ^ (mask if pa else 0)
                vb = tb ^ (mask if pb else 0)
                if (va & vb) == target:
                    gain = commit(lambda da=da, pa=pa, db=db, pb=pb:
                                  aig.add_and(2 * da + pa, 2 * db + pb))
                    if gain is not None:
                        return gain
                if (va | vb) == target:
                    gain = commit(lambda da=da, pa=pa, db=db, pb=pb:
                                  aig.add_or(2 * da + pa, 2 * db + pb))
                    if gain is not None:
                        return gain
    if max_inserted < 2 or mffc < 3:
        return 0
    # --- 2-resub: (a op b) op c shapes -----------------------------------------
    limited = divisors[:16]
    for (da, ta), (db, tb), (dc, tc) in combinations(limited, 3):
        for pa in (0, 1):
            va = ta ^ (mask if pa else 0)
            for pb in (0, 1):
                vb = tb ^ (mask if pb else 0)
                for pc in (0, 1):
                    vc = tc ^ (mask if pc else 0)
                    if ((va & vb) & vc) == target:
                        gain = commit(lambda da=da, pa=pa, db=db, pb=pb, dc=dc, pc=pc:
                                      aig.add_and(aig.add_and(2 * da + pa, 2 * db + pb),
                                                  2 * dc + pc))
                        if gain is not None:
                            return gain
                    if ((va | vb) | vc) == target:
                        gain = commit(lambda da=da, pa=pa, db=db, pb=pb, dc=dc, pc=pc:
                                      aig.add_or(aig.add_or(2 * da + pa, 2 * db + pb),
                                                 2 * dc + pc))
                        if gain is not None:
                            return gain
                    if ((va & vb) | vc) == target:
                        gain = commit(lambda da=da, pa=pa, db=db, pb=pb, dc=dc, pc=pc:
                                      aig.add_or(aig.add_and(2 * da + pa, 2 * db + pb),
                                                 2 * dc + pc))
                        if gain is not None:
                            return gain
    return 0


def _simulate_window(aig: Aig, window: NodeWindow) -> Dict[int, int]:
    """Complete simulation of the window cone and divisors over the leaves."""
    k = len(window.leaves)
    mask = table_mask(k)
    values: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(window.leaves):
        values[leaf] = variable_table(i, k)
    pending = [n for n in window.cone if n not in values]
    pending += [d for d in window.divisors if d not in values]
    # The window guarantees all fanins are inside; order topologically by a
    # relaxation loop (windows are tiny).
    remaining = [n for n in pending if aig.is_and(n)]
    guard = 0
    while remaining and guard < 1 + len(remaining) * len(remaining):
        guard += 1
        progressed = []
        for n in remaining:
            f0, f1 = aig.fanins(n)
            if lit_node(f0) in values and lit_node(f1) in values:
                v0 = values[lit_node(f0)] ^ (mask if lit_is_compl(f0) else 0)
                v1 = values[lit_node(f1)] ^ (mask if lit_is_compl(f1) else 0)
                values[n] = v0 & v1
                progressed.append(n)
        if not progressed:
            break
        remaining = [n for n in remaining if n not in values]
    return values
