"""Refactoring (the ``rf`` move): collapse-and-resynthesize large cones.

Where rewriting works on 4-input cuts, refactoring collapses a node's cone
over a wider reconvergent cut (10–12 leaves), recomputes the local function
by complete simulation, and resynthesizes it from an irredundant SOP via
algebraic factoring.  Gains come from reconvergence the small cuts cannot
see.  This is the paper's "refactoring" move (low effort = smaller cuts,
high effort = wider cuts).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aig.aig import Aig, lit_is_compl, lit_node
from repro.opt.shared import try_replace
from repro.partition.window import collect_window
from repro.sop.factor import factor, factored_to_aig
from repro.sop.sop import Sop
from repro.tt.isop import isop
from repro.tt.truthtable import TruthTable, table_mask, variable_table


def refactor(aig: Aig, max_leaves: int = 10, min_gain: int = 1,
             min_mffc: int = 2, node_filter: Optional[set] = None) -> int:
    """One refactoring pass; returns the total gain."""
    total_gain = 0
    from repro.aig.traversal import node_level_map
    levels = node_level_map(aig)
    for node in list(aig.topological_order()):
        if aig.is_dead(node) or not aig.is_and(node):
            continue
        if node_filter is not None and node not in node_filter:
            continue
        if aig.mffc_size(node) < min_mffc:
            continue
        window = collect_window(aig, node, max_leaves=max_leaves,
                                max_divisors=0, levels=levels)
        if window is None or len(window.leaves) > max_leaves:
            continue
        if len(window.leaves) < 2 or len(window.leaves) > 14:
            continue
        table = window_function(aig, node, window.leaves)
        sop = Sop(isop(table, table))
        form = factor(sop)
        leaf_literals = [2 * leaf for leaf in window.leaves]

        def build(f=form, ls=leaf_literals):
            return factored_to_aig(f, aig, ls)

        gain = try_replace(aig, node, build, min_gain=min_gain)
        if gain is not None:
            total_gain += gain
            # Levels drift after edits, but only guide heuristics; a stale
            # map keeps the pass linear.
    return total_gain


def window_function(aig: Aig, root: int, leaves: List[int]) -> TruthTable:
    """Local function of *root* over *leaves* by complete simulation."""
    k = len(leaves)
    values: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(leaves):
        values[leaf] = variable_table(i, k)
    mask = table_mask(k)
    # Evaluate the cone above the leaves.
    order: List[int] = []
    seen = set(leaves) | {0}
    stack = [root]
    visiting = set()
    while stack:
        n = stack[-1]
        if n in seen:
            stack.pop()
            continue
        if n in visiting:
            seen.add(n)
            order.append(n)
            stack.pop()
            continue
        visiting.add(n)
        for f in aig.fanins(n):
            fn = lit_node(f)
            if fn not in seen:
                stack.append(fn)
    for n in order:
        f0, f1 = aig.fanins(n)
        v0 = values[lit_node(f0)] ^ (mask if lit_is_compl(f0) else 0)
        v1 = values[lit_node(f1)] ^ (mask if lit_is_compl(f1) else 0)
        values[n] = v0 & v1
    return TruthTable(values[root], k)
