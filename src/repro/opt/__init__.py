"""Classic AIG optimization: balance, rewrite, refactor, resub, scripts."""

from repro.opt.balance import balance
from repro.opt.refactor import refactor, window_function
from repro.opt.resub import resub
from repro.opt.rewrite import RewriteLibrary, default_library, rewrite
from repro.opt.scripts import compress2rs_step, quick_optimize, resyn2rs
from repro.opt.shared import try_replace

__all__ = [
    "balance", "rewrite", "RewriteLibrary", "default_library",
    "refactor", "window_function", "resub",
    "compress2rs_step", "resyn2rs", "quick_optimize", "try_replace",
]
