"""AND-tree balancing (the ``b`` step of classic AIG scripts).

Collects maximal multi-input AND trees (stopping at complemented edges and
multi-fanout nodes) and rebuilds them as depth-minimal trees, pairing the
shallowest operands first — Huffman-style.  Size never increases; depth
usually drops.  Used by the ``resyn2rs`` baseline script and as a cheap move
in the gradient engine.
"""

from __future__ import annotations

from typing import Dict, List

from repro.aig.aig import Aig, lit_is_compl, lit_node, lit_notcond


def balance(aig: Aig) -> Aig:
    """Return a balanced copy of the network (same function, ≤ size)."""
    new = Aig(aig.name)
    mapping: Dict[int, int] = {0: 0}
    level: Dict[int, int] = {0: 0}
    for i, p in enumerate(aig.pis()):
        mapping[p] = new.add_pi(aig.pi_name(i))
        level[lit_node(mapping[p])] = 0
    refs = _reference_counts(aig)
    for n in aig.topological_order():
        operands = _collect_and_tree(aig, n, refs)
        literals = [lit_notcond(mapping[lit_node(f)], lit_is_compl(f))
                    for f in operands]
        mapping[n] = _balanced_and(new, literals, level)
        level[lit_node(mapping[n])] = _literal_level(new, mapping[n], level)
    for i, po in enumerate(aig.pos()):
        new.add_po(lit_notcond(mapping[lit_node(po)], lit_is_compl(po)),
                   aig.po_name(i))
    return new.cleanup()


def _reference_counts(aig: Aig) -> Dict[int, int]:
    refs: Dict[int, int] = {}
    for n in aig.topological_order():
        for f in aig.fanins(n):
            refs[lit_node(f)] = refs.get(lit_node(f), 0) + 1
    for po in aig.pos():
        refs[lit_node(po)] = refs.get(lit_node(po), 0) + 1
    return refs


def _collect_and_tree(aig: Aig, root: int, refs: Dict[int, int]) -> List[int]:
    """Fanin literals of the maximal single-fanout AND tree rooted at *root*."""
    operands: List[int] = []
    stack = list(aig.fanins(root))
    while stack:
        f = stack.pop()
        node = lit_node(f)
        if (not lit_is_compl(f) and aig.is_and(node)
                and refs.get(node, 0) == 1):
            stack.extend(aig.fanins(node))
        else:
            operands.append(f)
    return operands


def _balanced_and(aig: Aig, literals: List[int], level: Dict[int, int]) -> int:
    """AND the literals, always pairing the two shallowest operands."""
    if not literals:
        return 1
    import heapq
    heap = [(level.get(lit_node(f), 0), i, f) for i, f in enumerate(literals)]
    heapq.heapify(heap)
    counter = len(literals)
    while len(heap) > 1:
        l0, _i0, a = heapq.heappop(heap)
        l1, _i1, b = heapq.heappop(heap)
        combined = aig.add_and(a, b)
        lvl = _literal_level(aig, combined, level)
        level[lit_node(combined)] = lvl
        heapq.heappush(heap, (lvl, counter, combined))
        counter += 1
    return heap[0][2]


def _literal_level(aig: Aig, literal: int, level: Dict[int, int]) -> int:
    node = lit_node(literal)
    if node in level:
        return level[node]
    if not aig.is_and(node):
        return 0
    f0, f1 = aig.fanins(node)
    lvl = 1 + max(_literal_level(aig, f0, level), _literal_level(aig, f1, level))
    level[node] = lvl
    return lvl
