"""Shared machinery for in-place AIG optimization moves.

Every local move (rewrite, refactor, resub, Boolean difference, MSPF resub)
follows the same contract the paper states for the gradient engine: "All
moves are designed to have gain ≥ 0 at all times, otherwise the corresponding
change is reverted."  :func:`try_replace` implements that contract: it
measures the *real* gain of splicing a replacement literal (new nodes built
minus MFFC reclaimed), commits only when the gain passes the threshold, and
otherwise collects the tentative logic so the network is left untouched.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.aig.aig import Aig, lit_node
from repro.aig.traversal import transitive_fanin


def try_replace(aig: Aig, root: int, build: Callable[[], int],
                min_gain: int = 1) -> Optional[int]:
    """Tentatively build a replacement for *root* and commit if profitable.

    Parameters
    ----------
    aig:
        The network being edited.
    root:
        The AND node to replace.
    build:
        Zero-argument callable that constructs the replacement logic in
        *aig* (via strashed ``add_*`` calls) and returns its literal.
    min_gain:
        Minimum accepted node saving.  ``min_gain = 0`` accepts
        size-neutral reshapes — Alg. 2's acceptance rule "(ii) it does not
        increase the number of nodes ... could reshape the network ... and
        help escaping local minima".

    Returns the achieved gain (≥ *min_gain*) on success, None when the move
    was rejected and rolled back.
    """
    if not aig.is_and(root):
        return None
    before = aig.num_ands
    new_lit = build()
    added = aig.num_ands - before
    if lit_node(new_lit) == root:
        _collect_dangling(aig, new_lit)
        return None
    aig.protect(new_lit)
    # Cycle guard: the strashed new logic must not pass through the root.
    if root in transitive_fanin(aig, [lit_node(new_lit)], include_pis=False):
        aig.unprotect(new_lit)
        return None
    reclaim = aig.mffc_size(root)
    gain = reclaim - added
    if gain < min_gain:
        aig.unprotect(new_lit)
        return None
    aig.replace(root, new_lit)
    aig.unprotect(new_lit)
    # Cascaded strash merges can reclaim more than the MFFC estimate.
    return max(gain, before - aig.num_ands)


def _collect_dangling(aig: Aig, literal: int) -> None:
    """Sweep tentative logic left dangling when a move self-maps."""
    aig.protect(literal)
    aig.unprotect(literal)
