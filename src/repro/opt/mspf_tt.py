"""Truth-table MSPF resubstitution — the baseline of [1] (Amarù et al., DATE'18).

Section IV-C contrasts the SBM's BDD-based MSPF with "the work in [1]
[which] proposed truth table methods to approximate MSPF during
resubstitution": truth tables limit the window to ~15 leaves and make
finding *many* connectable fanins expensive, which is precisely what the
BDD version improves.  This module implements that truth-table baseline so
the comparison can be reproduced (``benchmarks/bench_ablation.py``).

Per partition (small windows), all member functions are computed by complete
simulation over the leaves; a node's MSPF is the set of leaf minterms where
flipping the node changes no window root; resubstitution then tries
constants and single existing signals that agree on the care set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.aig.aig import Aig, lit, lit_is_compl, lit_node
from repro.opt.shared import try_replace
from repro.partition.partitioner import (
    PartitionConfig,
    Window,
    partition_network,
    refresh_window,
)
from repro.tt.truthtable import table_mask, variable_table


@dataclass
class TtMspfStats:
    """Counters reported by a truth-table MSPF pass."""

    partitions: int = 0
    windows_skipped_width: int = 0
    nodes_processed: int = 0
    mspf_nonzero: int = 0
    rewrites: int = 0
    gain: int = 0


def tt_mspf_pass(aig: Aig, max_leaves: int = 12,
                 partition: Optional[PartitionConfig] = None) -> TtMspfStats:
    """Run truth-table MSPF resubstitution over every partition (in place).

    Windows wider than *max_leaves* are skipped — the truth-table engine's
    inherent limitation ("small windows of logic (≈ 15 inputs)",
    Section II-A) that the BDD version lifts.
    """
    # The partitioner is allowed wider windows than the truth-table engine
    # can process: the overflowing ones are counted as skipped, which is
    # exactly the limitation Section IV-C's BDD engine removes.
    partition = partition or PartitionConfig(max_levels=12, max_size=150,
                                             max_leaves=max(24, max_leaves))
    stats = TtMspfStats()
    for window in partition_network(aig, partition):
        stats.partitions += 1
        optimize_partition(aig, window, max_leaves, stats)
    return stats


def optimize_partition(aig: Aig, window: Window, max_leaves: int,
                       stats: TtMspfStats) -> None:
    """Truth-table MSPF resubstitution inside one partition."""
    refreshed = refresh_window(aig, window)
    if refreshed is None:
        return
    window = refreshed
    if not window.leaves or len(window.leaves) > max_leaves:
        stats.windows_skipped_width += 1
        return
    root_set = set(window.roots)
    candidates = [n for n in window.nodes if n not in root_set]
    if not candidates:
        return
    candidates.sort(key=lambda n: -aig.mffc_size(n))
    tables = _window_tables(aig, window)
    if tables is None:
        return
    k = len(window.leaves)
    mask = table_mask(k)
    for node in candidates:
        if aig.is_dead(node) or node not in tables or node in root_set:
            continue
        stats.nodes_processed += 1
        mspf = _node_mspf(aig, window, tables, node, mask)
        if mspf == 0:
            continue
        stats.mspf_nonzero += 1
        care = mask & ~mspf
        gain = _resub_under_mspf(aig, window, tables, node, care, mask)
        if gain:
            stats.rewrites += 1
            stats.gain += gain
            refreshed = refresh_window(aig, window)
            if refreshed is None:
                return
            window = refreshed
            root_set = set(window.roots)
            tables = _window_tables(aig, window)
            if tables is None or len(window.leaves) > max_leaves:
                return
            k = len(window.leaves)
            mask = table_mask(k)


def _window_tables(aig: Aig, window: Window) -> Optional[Dict[int, int]]:
    """Complete truth tables of all window signals over the leaves."""
    k = len(window.leaves)
    if k > 20:
        return None
    mask = table_mask(k)
    tables: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(window.leaves):
        tables[leaf] = variable_table(i, k)
    for n in window.nodes:
        f0, f1 = aig.fanins(n)
        t0 = tables.get(lit_node(f0))
        t1 = tables.get(lit_node(f1))
        if t0 is None or t1 is None:
            return None
        if lit_is_compl(f0):
            t0 ^= mask
        if lit_is_compl(f1):
            t1 ^= mask
        tables[n] = t0 & t1
    return tables


def _node_mspf(aig: Aig, window: Window, tables: Dict[int, int],
               node: int, mask: int) -> int:
    """Leaf minterms where flipping *node* changes no window root.

    The truth-table analogue of the paper's per-output MSPF product: the
    window is re-simulated with the node's column inverted and the roots
    compared (early exit when the MSPF hits 0).
    """
    flipped = dict(tables)
    flipped[node] = tables[node] ^ mask
    # Re-simulate only the node's transitive fanout inside the window.
    order = window.nodes
    position = {n: i for i, n in enumerate(order)}
    start = position.get(node, 0)
    for n in order[start:]:
        if n == node:
            continue
        f0, f1 = aig.fanins(n)
        t0 = flipped.get(lit_node(f0))
        t1 = flipped.get(lit_node(f1))
        if t0 is None or t1 is None:
            return 0
        if lit_is_compl(f0):
            t0 ^= mask
        if lit_is_compl(f1):
            t1 ^= mask
        flipped[n] = t0 & t1
    mspf = mask
    for root in window.roots:
        if root not in tables or root not in flipped:
            return 0
        mspf &= ~(tables[root] ^ flipped[root]) & mask
        if mspf == 0:
            return 0
    return mspf


def _resub_under_mspf(aig: Aig, window: Window, tables: Dict[int, int],
                      node: int, care: int, mask: int) -> int:
    """Try constants and single connectable signals on the care set."""
    target = tables[node] & care
    if target == 0:
        gain = try_replace(aig, node, lambda: 0, min_gain=1)
        if gain:
            return gain
    if (tables[node] ^ mask) & care == 0:
        gain = try_replace(aig, node, lambda: 1, min_gain=1)
        if gain:
            return gain
    for d in window.leaves + window.nodes:
        if d == node or aig.is_dead(d) or d not in tables:
            continue
        if tables[d] & care == target:
            gain = try_replace(aig, node, lambda d=d: lit(d), min_gain=1)
            if gain:
                return gain
        elif (tables[d] ^ mask) & care == target:
            gain = try_replace(aig, node, lambda d=d: lit(d, True),
                               min_gain=1)
            if gain:
                return gain
    return 0
