"""Cut-based DAG-aware rewriting (the ``rw`` move).

For every node, 4-feasible cuts are enumerated with their local functions;
each function is NPN-canonicalized and looked up in a synthesis library that
maps canonical classes to compact factored-form structures.  A candidate
replacement is strashed into the network, its real gain measured (nodes
reclaimed from the MFFC minus nodes added, with structural sharing credited
automatically by the strash table), and committed only when profitable —
exactly the DAG-aware accounting of Mishchenko et al. [12], which the paper
uses as the primitive "rewriting" move of the gradient engine (Section IV-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.aig.aig import Aig, lit_notcond
from repro.aig.cuts import Cut, enumerate_cuts
from repro.opt.shared import try_replace
from repro.sop.factor import FactoredForm, factor, factored_to_aig
from repro.tt.isop import isop
from repro.tt.npn import invert_transform, npn_canonical
from repro.tt.truthtable import TruthTable
from repro.sop.sop import Sop


class RewriteLibrary:
    """Lazy NPN-class library of factored-form implementations.

    Structures are synthesized on demand (ISOP of the canonical
    representative, algebraically factored) and cached per class — the
    pure-Python analogue of ABC's precomputed 4-input NPN structure library.
    """

    def __init__(self, num_vars: int = 4) -> None:
        self.num_vars = num_vars
        self._forms: Dict[Tuple[int, int], FactoredForm] = {}

    def lookup(self, canonical: TruthTable) -> FactoredForm:
        """Best known factored form for an NPN-canonical function."""
        form = self._forms.get((canonical.bits, canonical.num_vars))
        if form is None:
            cubes = isop(canonical, canonical)
            sop = Sop(cubes)
            direct = factor(sop)
            complement = (~canonical)
            comp_sop = Sop(isop(complement, complement))
            comp_form = factor(comp_sop)
            # Choose the cheaper of implementing f or !f.
            from repro.sop.factor import factored_literal_count
            if factored_literal_count(comp_form) < factored_literal_count(direct):
                form = ("not", comp_form)
            else:
                form = direct
            self._forms[(canonical.bits, canonical.num_vars)] = form
        return form

    def build(self, aig: Aig, table: TruthTable, leaf_literals: List[int]) -> int:
        """Strash an implementation of *table* over *leaf_literals*."""
        canonical, transform = npn_canonical(table)
        inverse = invert_transform(transform, table.num_vars)
        out_neg, phase, perm = inverse
        # canonical input j is fed by leaf inv_perm[j], possibly complemented.
        inv_perm = [0] * table.num_vars
        for new_var, old_var in enumerate(perm):
            inv_perm[old_var] = new_var
        fanins = []
        for j in range(table.num_vars):
            source = inv_perm[j]
            literal = leaf_literals[source]
            fanins.append(lit_notcond(literal, bool((phase >> source) & 1)))
        form = self.lookup(canonical)
        negate_out = out_neg
        if form[0] == "not":
            form = form[1]
            negate_out = not negate_out
        result = factored_to_aig(form, aig, fanins)
        return lit_notcond(result, negate_out)


_DEFAULT_LIBRARY: Optional[RewriteLibrary] = None


def default_library() -> RewriteLibrary:
    """Process-wide shared rewrite library (grown lazily)."""
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = RewriteLibrary()
    return _DEFAULT_LIBRARY


def rewrite(aig: Aig, min_gain: int = 1, cut_size: int = 4,
            cut_limit: int = 6, library: Optional[RewriteLibrary] = None,
            node_filter: Optional[set] = None) -> int:
    """One rewriting pass over the network; returns the total gain.

    ``min_gain = 0`` enables zero-cost replacements (ABC's ``rwz``), useful
    for escaping local minima at the cost of extra runtime.
    ``node_filter`` restricts the pass to a set of nodes (partition scope).
    """
    library = library or default_library()
    cuts = enumerate_cuts(aig, k=cut_size, cut_limit=cut_limit,
                          compute_tables=True)
    total_gain = 0
    for node in list(aig.topological_order()):
        if aig.is_dead(node) or not aig.is_and(node):
            continue
        if node_filter is not None and node not in node_filter:
            continue
        best: Optional[Tuple[TruthTable, List[int]]] = None
        for cut in cuts.get(node, []):
            if len(cut.leaves) < 2 or cut.table is None:
                continue
            if any(aig.is_dead(leaf) for leaf in cut.leaves):
                continue
            table = TruthTable(cut.table, len(cut.leaves))
            leaf_literals = [2 * leaf for leaf in cut.leaves]

            def build(t=table, ls=leaf_literals):
                return library.build(aig, t, ls)

            gain = try_replace(aig, node, build, min_gain=min_gain)
            if gain is not None:
                total_gain += gain
                break  # node replaced; move on
    return total_gain
