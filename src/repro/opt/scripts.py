"""Baseline optimization scripts.

"AIG optimization traditionally consists of a predetermined sequence of
primitive optimization techniques, forming a so-called script, which is
homogeneously applied to the whole network.  One of the most popular AIG
scripts in academia is resyn2rs from ABC" (Section IV-A).  These fixed
scripts are the baseline the gradient engine is compared against in the
Table II experiment.
"""

from __future__ import annotations


from repro.aig.aig import Aig
from repro.opt.balance import balance
from repro.opt.refactor import refactor
from repro.opt.resub import resub
from repro.opt.rewrite import rewrite


def compress2rs_step(aig: Aig) -> Aig:
    """One ``compress2rs``-style iteration: b; rs; rw; rf; rs; rwz; rfz."""
    aig = balance(aig)
    resub(aig, max_inserted=1)
    rewrite(aig)
    refactor(aig)
    resub(aig, max_inserted=2)
    rewrite(aig, min_gain=0)
    refactor(aig, min_gain=0)
    return aig.cleanup()


def resyn2rs(aig: Aig, max_iterations: int = 4) -> Aig:
    """Iterate the baseline script until no size improvement (ABC's habit of
    "running resyn2rs until no improvement is seen", Table II footnote)."""
    best = aig.cleanup()
    for _ in range(max_iterations):
        candidate = compress2rs_step(best)
        if candidate.num_ands >= best.num_ands:
            return best
        best = candidate
    return best


def quick_optimize(aig: Aig) -> Aig:
    """A cheap one-shot cleanup: balance + one rewrite + one resub pass."""
    aig = balance(aig)
    rewrite(aig)
    resub(aig, max_inserted=1)
    return aig.cleanup()
