"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``fig1``                 reproduce the Figure 1 demonstration
``table1 [names...]``    reproduce Table I (LUT-6 area) on the given or
                         default benchmarks
``table2 [names...]``    reproduce Table II (smallest AIGs)
``table3 [count]``       reproduce Table III on *count* industrial designs
``runtime``              the Section III-B monolithic runtime claim
``ablation``             parameter ablations (Sections III-C, IV-A, IV-B)
``optimize <file.aag>``  run the SBM flow on an ASCII AIGER file
``bench <name>``         print a benchmark's statistics
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print(__doc__)
        return 1
    command, rest = args[0], args[1:]
    if command == "fig1":
        from repro.experiments.fig1 import format_result, run_fig1
        print(format_result(run_fig1()))
    elif command == "table1":
        from repro.experiments.table1 import format_results, run_table1
        print(format_results(run_table1(benchmarks=rest or None)))
    elif command == "table2":
        from repro.experiments.table2 import format_results, run_table2
        print(format_results(run_table2(benchmarks=rest or None)))
    elif command == "table3":
        from repro.experiments.table3 import format_summary, run_table3
        count = int(rest[0]) if rest else 6
        print(format_summary(run_table3(num_designs=count)))
    elif command == "runtime":
        from repro.experiments.runtime import format_results, run_monolithic
        print(format_results(run_monolithic()))
    elif command == "ablation":
        from repro.experiments import ablation
        ablation.main()
    elif command == "optimize":
        from repro.aig.io_aiger import read_aag, write_aag
        from repro.sat.equivalence import check_equivalence
        from repro.sbm.config import FlowConfig
        from repro.sbm.flow import sbm_flow
        aig = read_aag(rest[0])
        print(f"input : {aig.stats()}")
        optimized, stats = sbm_flow(aig, FlowConfig(iterations=1))
        ok, _ = check_equivalence(aig, optimized)
        print(f"output: {optimized.stats()}  verified={ok}  "
              f"({stats.runtime_s:.1f}s)")
        if len(rest) > 1:
            write_aag(optimized, rest[1])
            print(f"written to {rest[1]}")
    elif command == "bench":
        from repro.bench.registry import benchmark_names, get_benchmark
        names = rest or benchmark_names()
        for name in names:
            aig = get_benchmark(name, scaled=True)
            print(f"{name:12s} {aig.stats()}")
    else:
        print(__doc__)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
