"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``fig1``                 reproduce the Figure 1 demonstration
``table1 [names...]``    reproduce Table I (LUT-6 area) on the given or
                         default benchmarks
``table2 [names...]``    reproduce Table II (smallest AIGs)
``table3 [count]``       reproduce Table III on *count* industrial designs
``runtime``              the Section III-B monolithic runtime claim
``ablation``             parameter ablations (Sections III-C, IV-A, IV-B)
``optimize <file.aag>``  run the SBM flow on an ASCII AIGER file
``bench <name>``         print a benchmark's statistics
``campaign <suite.toml | names...>``
                         run a batch of (benchmark × config) jobs through
                         one shared worker pool and the persistent result
                         cache (``repro.campaign``); ``--cache-dir DIR``
                         selects the cache, ``--iterations N`` the flow
                         depth for ad-hoc benchmark lists, ``--tier NAMES``
                         additionally includes the suite's jobs marked
                         with those (comma-separated) tiers (e.g.
                         ``--tier nightly-large,nightly-scaled``);
                         ``--shard i/N`` runs only this worker's slice of
                         the deterministic N-way shard plan
                         (``repro.campaign.shard``), ``--shard-costs DB``
                         balances the plan by median cold runtimes from a
                         telemetry history store instead of the default
                         stable-hash split
``cache pack <dir> <archive>``
                         export a result-cache directory to a
                         byte-reproducible ``.tar.gz`` with a manifest of
                         keys and digests (``repro.campaign.sync``);
                         ``--report FILE`` embeds the producing campaign
                         report's per-slot cache counters so a degraded
                         shard (``store_failures``) is visible at merge
``cache merge <archive>... --into <dir>``
                         import cache archives into one combined cache:
                         idempotent for identical payloads, hard error
                         (exit 1) when the same key carries a different
                         result payload, corrupt entries skipped and
                         counted
``fuzz run [suite.toml]``
                         differential workload fuzzing (``repro.fuzz``):
                         seeded random networks through the flow, each
                         cross-examined by the oracle stack (SAT CEC,
                         hotpath identity, jobs bit-identity, crash
                         capture, chaos sweeps).  ``--budget N`` cases,
                         ``--seed S`` the recipe stream, ``--tier NAME``
                         picks the suite tier, ``--bundle-dir DIR``
                         collects failure repro bundles, ``--corpus-dir
                         DIR`` the persistent novelty corpus; exits 1 on
                         any oracle verdict
``fuzz repro <bundle>``  replay a failure bundle from the file alone and
                         compare against its recorded verdict
                         (``--original`` replays the unminimized
                         network); exits 0 only when the exact verdict
                         reproduces
``orchestrate <names...>``
                         DAG-aware pass-ordering search
                         (``repro.orchestrate``): rounds of K candidate
                         stage sequences with content-addressed per-stage
                         memoization.  ``--k K`` candidates per round,
                         ``--rounds R`` rounds, ``--seed S`` the bandit
                         seed; ``--cache-dir DIR`` backs the stage memo
                         with the persistent campaign cache so repeat
                         searches recompute nothing

Options
-------
``--jobs N`` / ``-j N``  worker processes for the partition-based engines
                         (default 1 = serial; 0 = all cores).  Results are
                         identical for every value — see ``repro.parallel``.
``--trace``              enable the hierarchical tracer and print the span
                         table + metrics after the command (``repro.obs``)
``--trace-jsonl PATH``   stream every span to a JSONL event sink
``--report-json PATH``   write the machine-readable run report (stable
                         schema; validate with ``python -m repro.obs.report``)
``--progress``           live progress on stderr while the command runs: a
                         TTY-aware status line (plain lines in CI logs)
                         fed by the non-blocking event bus (``repro.obs.live``)
``--progress-jsonl PATH`` stream every progress event as one JSON line
                         (tail-able; machine-readable live channel)
``--history-db PATH``    (campaign) ingest the finished campaign report
                         into the telemetry history store
                         (``python -m repro.obs.history``)
``--timeout S``          flow wall-clock budget in seconds: stages degrade
                         to reduced effort when behind schedule and are
                         skipped once the budget is gone (``repro.guard``)
``--checkpoint-dir DIR`` crash-safe checkpoint after every flow stage
``--resume DIR``         resume an interrupted ``optimize`` run from its
                         checkpoint directory
``--chaos SEED``         inject deterministic faults (worker crashes,
                         window timeouts, corrupt results, BDD limits)
                         drawn from SEED — the fault-injection harness
``--chaos-interrupt N``  with ``--chaos``: kill the flow right after the
                         checkpoint of global stage N (exit status 3), a
                         deterministic stand-in for ``kill -9`` used by
                         the resume-after-interrupt CI check
``--no-simresub``        disable the simulation-guided resubstitution
                         stage (the fifth engine; on by default)
``--orchestrate K``      (optimize / campaign) replace the fixed stage
                         waterfall with the pass-ordering search, K
                         candidate orderings per round
                         (``repro.orchestrate``)

``optimize`` also accepts a benchmark name from the registry, e.g.
``python -m repro optimize router --trace --report-json out.json``.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple


def _parse_jobs_value(flag: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise SystemExit(f"{flag} expects an integer, got {value!r}") from None


def _extract_jobs(args: List[str]) -> Tuple[List[str], int]:
    """Strip ``-j/--jobs N`` (or ``--jobs=N``) from *args*; default 1."""
    jobs = 1
    out: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("-j", "--jobs"):
            if i + 1 >= len(args):
                raise SystemExit(f"{arg} requires a value")
            jobs = _parse_jobs_value(arg, args[i + 1])
            i += 2
            continue
        if arg.startswith("--jobs="):
            jobs = _parse_jobs_value("--jobs", arg.split("=", 1)[1])
            i += 1
            continue
        out.append(arg)
        i += 1
    return out, jobs


def _extract_value_flag(args: List[str], flag: str) -> Tuple[List[str], Optional[str]]:
    """Strip ``flag PATH`` (or ``flag=PATH``) from *args*."""
    value: Optional[str] = None
    out: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == flag:
            if i + 1 >= len(args):
                raise SystemExit(f"{flag} requires a value")
            value = args[i + 1]
            i += 2
            continue
        if arg.startswith(flag + "="):
            value = arg.split("=", 1)[1]
            i += 1
            continue
        out.append(arg)
        i += 1
    return out, value


def _extract_obs(args: List[str]) -> Tuple[List[str], bool, Optional[str],
                                           Optional[str]]:
    """Strip the observability flags; returns (args, trace, jsonl, report)."""
    args, jsonl = _extract_value_flag(args, "--trace-jsonl")
    args, report = _extract_value_flag(args, "--report-json")
    trace = "--trace" in args
    args = [a for a in args if a != "--trace"]
    return args, trace, jsonl, report


def _extract_guard(args: List[str]):
    """Strip the repro.guard flags; returns (args, GuardOptions)."""
    args, timeout = _extract_value_flag(args, "--timeout")
    args, checkpoint_dir = _extract_value_flag(args, "--checkpoint-dir")
    args, resume = _extract_value_flag(args, "--resume")
    args, chaos_interrupt = _extract_value_flag(args, "--chaos-interrupt")
    args, chaos = _extract_value_flag(args, "--chaos")
    timeout_s: Optional[float] = None
    if timeout is not None:
        try:
            timeout_s = float(timeout)
        except ValueError:
            raise SystemExit(
                f"--timeout expects seconds, got {timeout!r}") from None
        if timeout_s <= 0:
            raise SystemExit("--timeout must be positive")
    chaos_seed: Optional[int] = None
    if chaos is not None:
        try:
            chaos_seed = int(chaos)
        except ValueError:
            raise SystemExit(
                f"--chaos expects an integer seed, got {chaos!r}") from None
    interrupt_after: Optional[int] = None
    if chaos_interrupt is not None:
        if chaos_seed is None:
            raise SystemExit("--chaos-interrupt requires --chaos SEED")
        try:
            interrupt_after = int(chaos_interrupt)
        except ValueError:
            raise SystemExit(f"--chaos-interrupt expects a stage index, "
                             f"got {chaos_interrupt!r}") from None
    return args, GuardOptions(timeout_s=timeout_s,
                              checkpoint_dir=checkpoint_dir,
                              resume=resume, chaos_seed=chaos_seed,
                              interrupt_after=interrupt_after)


class GuardOptions:
    """Parsed ``repro.guard`` CLI flags."""

    def __init__(self, timeout_s: Optional[float] = None,
                 checkpoint_dir: Optional[str] = None,
                 resume: Optional[str] = None,
                 chaos_seed: Optional[int] = None,
                 interrupt_after: Optional[int] = None) -> None:
        self.timeout_s = timeout_s
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.chaos_seed = chaos_seed
        self.interrupt_after = interrupt_after
        self.cache_dir: Optional[str] = None
        self.iterations: Optional[int] = None
        self.tier: Optional[str] = None
        #: ``--shard i/N``: run only this slice of the shard plan
        self.shard: Optional[str] = None
        #: ``--shard-costs DB``: history store seeding the cost balancer
        self.shard_costs: Optional[str] = None
        self.simresub: bool = True
        self.history_db: Optional[str] = None
        #: ``--orchestrate K``: run the pass-ordering search with K
        #: candidates per round instead of the fixed waterfall
        self.orchestrate_k: Optional[int] = None


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    args, jobs = _extract_jobs(args)
    args, trace, trace_jsonl, report_json = _extract_obs(args)
    args, guard_opts = _extract_guard(args)
    args, cache_dir = _extract_value_flag(args, "--cache-dir")
    args, iterations = _extract_value_flag(args, "--iterations")
    args, tier = _extract_value_flag(args, "--tier")
    args, shard = _extract_value_flag(args, "--shard")
    args, shard_costs = _extract_value_flag(args, "--shard-costs")
    args, progress_jsonl = _extract_value_flag(args, "--progress-jsonl")
    args, history_db = _extract_value_flag(args, "--history-db")
    args, orchestrate_k = _extract_value_flag(args, "--orchestrate")
    progress = "--progress" in args
    args = [a for a in args if a != "--progress"]
    guard_opts.cache_dir = cache_dir
    guard_opts.iterations = int(iterations) if iterations is not None else None
    guard_opts.tier = tier
    guard_opts.shard = shard
    guard_opts.shard_costs = shard_costs
    guard_opts.history_db = history_db
    guard_opts.simresub = "--no-simresub" not in args
    args = [a for a in args if a != "--no-simresub"]
    if orchestrate_k is not None:
        try:
            guard_opts.orchestrate_k = int(orchestrate_k)
        except ValueError:
            raise SystemExit(f"--orchestrate expects an integer K, "
                             f"got {orchestrate_k!r}") from None
        if guard_opts.orchestrate_k < 1:
            raise SystemExit("--orchestrate K must be >= 1")
    if not args:
        print(__doc__)
        return 1
    command, rest = args[0], args[1:]
    observe = trace or trace_jsonl is not None or report_json is not None
    if not observe:
        if progress or progress_jsonl is not None:
            from repro.obs.live import live_session
            with live_session(progress=progress, jsonl_path=progress_jsonl):
                return _dispatch(command, rest, jobs, guard_opts)
        return _dispatch(command, rest, jobs, guard_opts)
    from repro import obs
    from repro.obs.live import live_session
    from repro.obs.report import build_report, write_report
    session = obs.enable(jsonl_path=trace_jsonl)
    try:
        with live_session(progress=progress, jsonl_path=progress_jsonl):
            status = _dispatch(command, rest, jobs, guard_opts)
    finally:
        obs.disable()
    if trace:
        from repro.obs.report import format_metrics_table, format_trace_table
        print()
        print(format_trace_table([s.to_dict() for s in session.tracer.roots]))
        print(format_metrics_table(session.metrics.to_dict()))
    if report_json is not None:
        report = build_report(session,
                              command=" ".join([command] + list(rest)))
        write_report(report_json, report)
        print(f"run report written to {report_json}")
    return status


def _guard_summary(stats) -> str:
    """One-line ``repro.guard`` summary for a finished flow, or ''."""
    guard = getattr(stats, "guard", None)
    if guard is None:
        return ""
    parts = []
    if guard.degradations:
        parts.append(f"degraded={guard.degradations}")
    if guard.skips:
        parts.append(f"skipped={guard.skips}")
    if guard.rollbacks:
        parts.append(f"rollbacks={guard.rollbacks}")
    if guard.checkpoints:
        parts.append(f"checkpoints={guard.checkpoints}")
    if guard.faults:
        parts.append(f"faults={len(guard.faults)}")
    if guard.resumed_from is not None:
        parts.append(f"resumed_from=stage#{guard.resumed_from}")
    return f"guard : {' '.join(parts)}" if parts else ""


def _dispatch(command: str, rest: List[str], jobs: int,
              guard_opts: Optional[GuardOptions] = None) -> int:
    from repro.sbm.config import FlowConfig
    guard_opts = guard_opts or GuardOptions()
    chaos_plan = None
    if guard_opts.chaos_seed is not None:
        from repro.guard.chaos import FaultPlan
        chaos_plan = FaultPlan(seed=guard_opts.chaos_seed,
                               interrupt_after=guard_opts.interrupt_after)
    orchestrate_cfg = None
    if guard_opts.orchestrate_k is not None:
        from repro.sbm.config import OrchestrateConfig
        orchestrate_cfg = OrchestrateConfig(k=guard_opts.orchestrate_k)
    flow_config = FlowConfig(iterations=1, jobs=jobs,
                             flow_timeout_s=guard_opts.timeout_s,
                             checkpoint_dir=guard_opts.checkpoint_dir,
                             chaos=chaos_plan,
                             enable_simresub=guard_opts.simresub,
                             verify_each_step=chaos_plan is not None,
                             orchestrate=orchestrate_cfg)
    if command == "fig1":
        from repro.experiments.fig1 import format_result, run_fig1
        print(format_result(run_fig1()))
    elif command == "table1":
        from repro.experiments.table1 import format_results, run_table1
        print(format_results(run_table1(benchmarks=rest or None,
                                        flow_config=flow_config)))
    elif command == "table2":
        from repro.experiments.table2 import format_results, run_table2
        print(format_results(run_table2(benchmarks=rest or None,
                                        flow_config=flow_config)))
    elif command == "table3":
        from repro.experiments.table3 import format_summary, run_table3
        count = int(rest[0]) if rest else 6
        print(format_summary(run_table3(num_designs=count,
                                        sbm_config=flow_config)))
    elif command == "runtime":
        from repro.experiments.runtime import format_results, run_monolithic
        print(format_results(run_monolithic()))
    elif command == "ablation":
        from repro.experiments import ablation
        ablation.main()
    elif command == "optimize":
        if not rest:
            raise SystemExit("optimize requires an .aag file or a benchmark "
                             "name")
        import os
        from repro.aig.io_aiger import read_aag, write_aag
        from repro.bench.registry import benchmark_names, get_benchmark
        from repro.sat.equivalence import check_equivalence
        from repro.sbm.flow import sbm_flow
        if not os.path.exists(rest[0]) and rest[0] in benchmark_names():
            aig = get_benchmark(rest[0], scaled=True)
        else:
            aig = read_aag(rest[0])
        print(f"input : {aig.stats()}")
        from repro.errors import EquivalenceError
        from repro.guard.chaos import ChaosInterrupt
        try:
            optimized, stats = sbm_flow(aig, flow_config,
                                        resume_from=guard_opts.resume)
        except EquivalenceError as exc:
            print(f"EQUIVALENCE FAILURE: {exc}")
            if exc.cex is not None:
                bits = "".join("1" if b else "0" for b in exc.cex)
                print(f"counterexample: PO {exc.po_name or exc.po_index} "
                      f"differs under PI assignment {bits}")
            return 1
        except ChaosInterrupt as exc:
            print(f"chaos: interrupted after stage #{exc.stage_index}; "
                  f"resume with --resume {exc.checkpoint_dir}")
            return 3
        ok, cex = check_equivalence(aig, optimized)
        print(f"output: {optimized.stats()}  verified={ok}  "
              f"({stats.runtime_s:.1f}s)")
        if not ok and cex is not None:
            bits = "".join("1" if b else "0" for b in cex)
            print(f"counterexample: PI assignment {bits}")
        summary = _guard_summary(stats)
        if summary:
            print(summary)
        if len(rest) > 1:
            write_aag(optimized, rest[1])
            print(f"written to {rest[1]}")
        if not ok:
            return 1
    elif command == "campaign":
        return _run_campaign_command(rest, jobs, guard_opts, chaos_plan)
    elif command == "cache":
        return _run_cache_command(rest)
    elif command == "fuzz":
        return _run_fuzz_command(rest, guard_opts)
    elif command == "orchestrate":
        return _run_orchestrate_command(rest, flow_config, guard_opts)
    elif command == "bench":
        from repro.bench.registry import benchmark_names, get_benchmark
        names = rest or benchmark_names()
        for name in names:
            aig = get_benchmark(name, scaled=True)
            print(f"{name:12s} {aig.stats()}")
    else:
        print(__doc__)
        return 1
    return 0


def _run_campaign_command(rest: List[str], jobs: int,
                          guard_opts: GuardOptions, chaos_plan) -> int:
    """``python -m repro campaign <suite.toml | benchmark names...>``."""
    import dataclasses
    import os
    from repro.campaign import jobs_from_benchmarks, load_suite, run_campaign
    from repro.sbm.config import FlowConfig
    if not rest:
        raise SystemExit("campaign requires a suite.toml or benchmark names")
    if len(rest) == 1 and os.path.exists(rest[0]):
        tiers = ([t for t in guard_opts.tier.split(",") if t]
                 if guard_opts.tier else None)
        suite, campaign_jobs = load_suite(rest[0], tiers=tiers)
    else:
        config = FlowConfig(iterations=guard_opts.iterations or 1,
                            enable_simresub=guard_opts.simresub)
        suite = "adhoc"
        campaign_jobs = jobs_from_benchmarks(rest, config=config)
    if not guard_opts.simresub:
        campaign_jobs = [
            dataclasses.replace(job, config=dataclasses.replace(
                job.config, enable_simresub=False))
            for job in campaign_jobs]
    if guard_opts.orchestrate_k is not None:
        from repro.sbm.config import OrchestrateConfig
        campaign_jobs = [
            dataclasses.replace(job, config=dataclasses.replace(
                job.config,
                orchestrate=OrchestrateConfig(k=guard_opts.orchestrate_k)))
            for job in campaign_jobs]
    if chaos_plan is not None:
        # Chaos makes every job uncacheable (time/fault-dependent results);
        # verification keeps corrupt-result faults from reaching the output.
        campaign_jobs = [
            dataclasses.replace(job, config=dataclasses.replace(
                job.config, chaos=chaos_plan, verify_each_step=True))
            for job in campaign_jobs]
    shard_tag = None
    if guard_opts.shard is not None:
        # Planned AFTER every config transform above: shard tokens hash
        # the final job configs, so every worker of the fleet — given
        # the same suite and flags — derives the same disjoint plan.
        from repro.campaign.shard import (ShardSpec, plan_shards,
                                          shard_costs_from_history)
        try:
            spec = ShardSpec.parse(guard_opts.shard)
        except ValueError as exc:
            raise SystemExit(f"--shard: {exc}") from None
        costs = (shard_costs_from_history(guard_opts.shard_costs)
                 if guard_opts.shard_costs is not None else None)
        plan = plan_shards(campaign_jobs, spec.count, costs=costs)
        selected = plan.select(campaign_jobs, spec.index)
        shard_tag = plan.tag(spec.index)
        print(f"shard {spec.label} ({plan.planner} plan): "
              f"{len(selected)} of {len(campaign_jobs)} jobs")
        campaign_jobs = selected
    elif guard_opts.shard_costs is not None:
        raise SystemExit("--shard-costs requires --shard i/N")
    report = run_campaign(campaign_jobs, cache_dir=guard_opts.cache_dir,
                          workers=jobs, suite=suite,
                          history_db=guard_opts.history_db,
                          shard=shard_tag)
    for row in report.results:
        line = (f"{row.name:16s} {row.outcome:8s} "
                f"{row.nodes_before:6d} -> {row.nodes_after:6d}  "
                f"{row.wall_s:7.2f}s")
        if row.error:
            line += f"  {row.error}"
        print(line)
    print(f"campaign '{report.suite}': {report.jobs} jobs  "
          f"hits={report.hits} misses={report.misses} "
          f"dedup={report.deduped} uncached={report.uncached} "
          f"errors={report.errors}")
    print(f"  elapsed={report.elapsed_s:.2f}s  "
          f"stolen_windows={report.stolen_windows}  "
          f"pool_rebuilds={report.pool_rebuilds}  "
          f"corrupt_entries={report.corrupt_entries}")
    return 1 if report.errors else 0


def _run_cache_command(rest: List[str]) -> int:
    """``python -m repro cache pack|merge ...`` (``repro.campaign.sync``)."""
    import json
    import os
    import tarfile
    if not rest:
        raise SystemExit("cache requires a subcommand: pack | merge")
    sub, rest = rest[0], rest[1:]
    if sub == "pack":
        from repro.campaign.sync import pack_cache
        rest, report_path = _extract_value_flag(rest, "--report")
        if len(rest) != 2:
            raise SystemExit("cache pack requires: CACHE_DIR ARCHIVE "
                             "[--report campaign_report.json]")
        cache_dir, archive = rest
        if not os.path.isdir(cache_dir):
            print(f"cache pack: {cache_dir} is not a directory")
            return 2
        slot_stats = None
        if report_path is not None:
            try:
                with open(report_path, "r", encoding="utf-8") as handle:
                    doc = json.load(handle)
            except (OSError, ValueError) as exc:
                print(f"cache pack: unreadable report {report_path}: {exc}")
                return 2
            campaigns = doc.get("campaign") or []
            slot_stats = campaigns[0].get("cache_slots") if campaigns else None
        manifest = pack_cache(cache_dir, archive, slot_stats=slot_stats)
        slots = {"flow": 0, "stage": 0}
        for entry in manifest["entries"]:
            slots[entry["slot"]] = slots.get(entry["slot"], 0) + 1
        line = (f"packed {len(manifest['entries'])} entr(ies) "
                f"(flow={slots['flow']} stage={slots['stage']}) "
                f"from {cache_dir} into {archive}")
        if manifest["corrupt_skipped"]:
            line += f"  [skipped {manifest['corrupt_skipped']} corrupt]"
        print(line)
        failures = sum(int(stats.get("store_failures", 0))
                       for stats in (slot_stats or {}).values()
                       if isinstance(stats, dict))
        if failures:
            print(f"  WARNING: the producing run recorded {failures} cache "
                  f"store failure(s) — this archive is missing results "
                  f"that were computed but never committed")
        return 0
    if sub == "merge":
        from repro.campaign.sync import CacheMergeConflict, merge_cache
        rest, into = _extract_value_flag(rest, "--into")
        if into is None or not rest:
            raise SystemExit("cache merge requires: ARCHIVE... --into DIR")
        try:
            report = merge_cache(rest, into)
        except CacheMergeConflict as exc:
            print(f"MERGE CONFLICT: {exc}")
            return 1
        except (OSError, ValueError, tarfile.TarError) as exc:
            print(f"cache merge: {type(exc).__name__}: {exc}")
            return 2
        print(report.describe())
        return 0
    raise SystemExit(f"unknown cache subcommand {sub!r} (expected pack | "
                     f"merge)")


def _run_orchestrate_command(rest: List[str], flow_config,
                             guard_opts: GuardOptions) -> int:
    """``python -m repro orchestrate <benchmark | file.aag> ...``."""
    import dataclasses
    import os
    from repro.campaign.cache import cache_context
    from repro.sat.equivalence import check_equivalence
    from repro.sbm.config import OrchestrateConfig
    from repro.sbm.flow import sbm_flow
    rest, k = _extract_value_flag(rest, "--k")
    rest, rounds = _extract_value_flag(rest, "--rounds")
    rest, seed = _extract_value_flag(rest, "--seed")
    if not rest:
        raise SystemExit("orchestrate requires a benchmark name or an "
                         ".aag file")
    base = flow_config.orchestrate or OrchestrateConfig()
    try:
        overrides = {}
        if k is not None:
            overrides["k"] = int(k)
        if rounds is not None:
            overrides["rounds"] = int(rounds)
        if seed is not None:
            overrides["seed"] = int(seed)
    except ValueError as exc:
        raise SystemExit(f"orchestrate: {exc}") from None
    ocfg = dataclasses.replace(base, **overrides)
    if ocfg.k < 1 or ocfg.rounds < 1:
        raise SystemExit("orchestrate: --k and --rounds must be >= 1")
    config = dataclasses.replace(flow_config, orchestrate=ocfg)
    from repro.aig.io_aiger import read_aag
    from repro.bench.registry import benchmark_names, get_benchmark
    status = 0
    with cache_context(guard_opts.cache_dir):
        for name in rest:
            if not os.path.exists(name) and name in benchmark_names():
                aig = get_benchmark(name, scaled=True)
            else:
                aig = read_aag(name)
            print(f"{aig.name or name}: {aig.stats()}")
            optimized, stats = sbm_flow(aig, config)
            doc = stats.orchestrate or {}
            for round_doc in doc.get("rounds", []):
                ordering = ">".join(round_doc["ordering"])
                print(f"  round {round_doc['round'] + 1}: "
                      f"winner #{round_doc['winner']}  "
                      f"{round_doc['nodes']} nodes  {ordering}")
            memo = doc.get("stage_memo")
            if memo is not None:
                print(f"  stage memo: {memo['memory_hits']} memory hits, "
                      f"{memo['disk_hits']} disk hits, "
                      f"{memo['misses']} recomputes, "
                      f"{memo['stores']} stores")
            ok, _cex = check_equivalence(aig, optimized)
            print(f"  result: {aig.num_ands} -> {optimized.num_ands} nodes  "
                  f"verified={ok}  ({stats.runtime_s:.1f}s)")
            if not ok:
                status = 1
    return status


def _run_fuzz_command(rest: List[str], guard_opts: GuardOptions) -> int:
    """``python -m repro fuzz run|repro ...`` (see ``repro.fuzz``)."""
    import dataclasses
    import os
    if not rest:
        raise SystemExit("fuzz requires a subcommand: run | repro")
    sub, rest = rest[0], rest[1:]
    if sub == "run":
        from repro.fuzz import FuzzConfig, load_fuzz_suite, run_fuzz
        rest, budget = _extract_value_flag(rest, "--budget")
        rest, seed = _extract_value_flag(rest, "--seed")
        rest, bundle_dir = _extract_value_flag(rest, "--bundle-dir")
        rest, corpus_dir = _extract_value_flag(rest, "--corpus-dir")
        rest, stop_after = _extract_value_flag(rest, "--stop-after")
        if rest and os.path.exists(rest[0]):
            config = load_fuzz_suite(rest[0], tier=guard_opts.tier)
        else:
            config = FuzzConfig()
        overrides = {}
        try:
            if budget is not None:
                overrides["budget"] = int(budget)
            if seed is not None:
                overrides["seed"] = int(seed)
            if stop_after is not None:
                overrides["stop_after_failures"] = int(stop_after)
        except ValueError as exc:
            raise SystemExit(f"fuzz run: {exc}") from None
        if bundle_dir is not None:
            overrides["bundle_dir"] = bundle_dir
        if corpus_dir is not None:
            overrides["corpus_dir"] = corpus_dir
        if overrides:
            config = dataclasses.replace(config, **overrides)
        report = run_fuzz(config, history_db=guard_opts.history_db)
        for row in report.cases:
            primary = row.verdict.primary
            if primary is None:
                continue
            line = (f"{row.name}  {primary.check}: {primary.kind}"
                    f"  [{row.fingerprint}]")
            if row.bundle_path:
                line += f"  -> {row.bundle_path}"
            print(line)
        print(f"fuzz '{report.name}': {report.executed} cases "
              f"(seed={report.seed})  failures={report.failures} "
              f"unique={report.unique_failures}")
        print(f"  corpus: replayed={report.corpus_replayed} "
              f"added={report.corpus_added}  "
              f"elapsed={report.elapsed_s:.2f}s")
        return 1 if report.failures else 0
    if sub == "repro":
        from repro.fuzz import load_bundle, replay_bundle
        original = "--original" in rest
        rest = [a for a in rest if a != "--original"]
        if not rest:
            raise SystemExit("fuzz repro requires a bundle path")
        try:
            bundle = load_bundle(rest[0])
        except (OSError, ValueError, KeyError) as exc:
            print(f"unreadable bundle {rest[0]}: {exc}")
            return 2
        result = replay_bundle(bundle, minimized=not original)
        expected = result.expected
        actual = result.verdict.primary
        print(f"bundle   : {bundle.fingerprint}  "
              f"(generator {bundle.recipe.get('generator')}, "
              f"seed {bundle.recipe.get('seed')})")
        if bundle.injected:
            print(f"injected : {bundle.injected}  (test-only fault hook)")
        print(f"expected : {expected.check}: {expected.kind}"
              f" @ {expected.stage}" if expected is not None
              else "expected : <none>")
        print(f"actual   : {actual.check}: {actual.kind} @ {actual.stage}"
              if actual is not None else "actual   : no failure")
        status = "REPRODUCED" if result.reproduced else "NOT REPRODUCED"
        print(f"verdict  : {status}")
        return 0 if result.reproduced else 1
    raise SystemExit(f"unknown fuzz subcommand {sub!r} (expected run | "
                     f"repro)")


if __name__ == "__main__":
    raise SystemExit(main())
