"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``fig1``                 reproduce the Figure 1 demonstration
``table1 [names...]``    reproduce Table I (LUT-6 area) on the given or
                         default benchmarks
``table2 [names...]``    reproduce Table II (smallest AIGs)
``table3 [count]``       reproduce Table III on *count* industrial designs
``runtime``              the Section III-B monolithic runtime claim
``ablation``             parameter ablations (Sections III-C, IV-A, IV-B)
``optimize <file.aag>``  run the SBM flow on an ASCII AIGER file
``bench <name>``         print a benchmark's statistics

Options
-------
``--jobs N`` / ``-j N``  worker processes for the partition-based engines
                         (default 1 = serial; 0 = all cores).  Results are
                         identical for every value — see ``repro.parallel``.
``--trace``              enable the hierarchical tracer and print the span
                         table + metrics after the command (``repro.obs``)
``--trace-jsonl PATH``   stream every span to a JSONL event sink
``--report-json PATH``   write the machine-readable run report (stable
                         schema; validate with ``python -m repro.obs.report``)

``optimize`` also accepts a benchmark name from the registry, e.g.
``python -m repro optimize router --trace --report-json out.json``.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple


def _parse_jobs_value(flag: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise SystemExit(f"{flag} expects an integer, got {value!r}") from None


def _extract_jobs(args: List[str]) -> Tuple[List[str], int]:
    """Strip ``-j/--jobs N`` (or ``--jobs=N``) from *args*; default 1."""
    jobs = 1
    out: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("-j", "--jobs"):
            if i + 1 >= len(args):
                raise SystemExit(f"{arg} requires a value")
            jobs = _parse_jobs_value(arg, args[i + 1])
            i += 2
            continue
        if arg.startswith("--jobs="):
            jobs = _parse_jobs_value("--jobs", arg.split("=", 1)[1])
            i += 1
            continue
        out.append(arg)
        i += 1
    return out, jobs


def _extract_value_flag(args: List[str], flag: str) -> Tuple[List[str], Optional[str]]:
    """Strip ``flag PATH`` (or ``flag=PATH``) from *args*."""
    value: Optional[str] = None
    out: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == flag:
            if i + 1 >= len(args):
                raise SystemExit(f"{flag} requires a value")
            value = args[i + 1]
            i += 2
            continue
        if arg.startswith(flag + "="):
            value = arg.split("=", 1)[1]
            i += 1
            continue
        out.append(arg)
        i += 1
    return out, value


def _extract_obs(args: List[str]) -> Tuple[List[str], bool, Optional[str],
                                           Optional[str]]:
    """Strip the observability flags; returns (args, trace, jsonl, report)."""
    args, jsonl = _extract_value_flag(args, "--trace-jsonl")
    args, report = _extract_value_flag(args, "--report-json")
    trace = "--trace" in args
    args = [a for a in args if a != "--trace"]
    return args, trace, jsonl, report


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    args, jobs = _extract_jobs(args)
    args, trace, trace_jsonl, report_json = _extract_obs(args)
    if not args:
        print(__doc__)
        return 1
    command, rest = args[0], args[1:]
    observe = trace or trace_jsonl is not None or report_json is not None
    if not observe:
        return _dispatch(command, rest, jobs)
    from repro import obs
    from repro.obs.report import build_report, write_report
    session = obs.enable(jsonl_path=trace_jsonl)
    try:
        status = _dispatch(command, rest, jobs)
    finally:
        obs.disable()
    if trace:
        from repro.obs.report import format_metrics_table, format_trace_table
        print()
        print(format_trace_table([s.to_dict() for s in session.tracer.roots]))
        print(format_metrics_table(session.metrics.to_dict()))
    if report_json is not None:
        report = build_report(session,
                              command=" ".join([command] + list(rest)))
        write_report(report_json, report)
        print(f"run report written to {report_json}")
    return status


def _dispatch(command: str, rest: List[str], jobs: int) -> int:
    from repro.sbm.config import FlowConfig
    flow_config = FlowConfig(iterations=1, jobs=jobs)
    if command == "fig1":
        from repro.experiments.fig1 import format_result, run_fig1
        print(format_result(run_fig1()))
    elif command == "table1":
        from repro.experiments.table1 import format_results, run_table1
        print(format_results(run_table1(benchmarks=rest or None,
                                        flow_config=flow_config)))
    elif command == "table2":
        from repro.experiments.table2 import format_results, run_table2
        print(format_results(run_table2(benchmarks=rest or None,
                                        flow_config=flow_config)))
    elif command == "table3":
        from repro.experiments.table3 import format_summary, run_table3
        count = int(rest[0]) if rest else 6
        print(format_summary(run_table3(num_designs=count,
                                        sbm_config=flow_config)))
    elif command == "runtime":
        from repro.experiments.runtime import format_results, run_monolithic
        print(format_results(run_monolithic()))
    elif command == "ablation":
        from repro.experiments import ablation
        ablation.main()
    elif command == "optimize":
        if not rest:
            raise SystemExit("optimize requires an .aag file or a benchmark "
                             "name")
        import os
        from repro.aig.io_aiger import read_aag, write_aag
        from repro.bench.registry import benchmark_names, get_benchmark
        from repro.sat.equivalence import check_equivalence
        from repro.sbm.flow import sbm_flow
        if not os.path.exists(rest[0]) and rest[0] in benchmark_names():
            aig = get_benchmark(rest[0], scaled=True)
        else:
            aig = read_aag(rest[0])
        print(f"input : {aig.stats()}")
        optimized, stats = sbm_flow(aig, flow_config)
        ok, _ = check_equivalence(aig, optimized)
        print(f"output: {optimized.stats()}  verified={ok}  "
              f"({stats.runtime_s:.1f}s)")
        if len(rest) > 1:
            write_aag(optimized, rest[1])
            print(f"written to {rest[1]}")
    elif command == "bench":
        from repro.bench.registry import benchmark_names, get_benchmark
        names = rest or benchmark_names()
        for name in names:
            aig = get_benchmark(name, scaled=True)
            print(f"{name:12s} {aig.stats()}")
    else:
        print(__doc__)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
