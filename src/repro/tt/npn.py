"""NPN canonicalization of truth tables.

Two functions are NPN-equivalent when one can be obtained from the other by
Negating inputs, Permuting inputs, and/or Negating the output.  The rewriting
move of the gradient engine (Section IV-A) matches 4-input cut functions
against a precomputed library keyed by NPN class, so canonicalization must be
deterministic and reasonably fast.

For up to 4 variables we canonicalize exactly by exhausting all
``2 * n! * 2**n`` transforms; beyond that a greedy semi-canonical form is used
(sufficient for hashing, not guaranteed minimal).
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Tuple

from repro.tt.truthtable import TruthTable, table_mask

#: A transform: (output negated, input phase mask, permutation tuple).
NpnTransform = Tuple[bool, int, Tuple[int, ...]]


def apply_transform(table: TruthTable, transform: NpnTransform) -> TruthTable:
    """Apply an NPN transform to a truth table."""
    out_neg, phase, perm = transform
    result = table.permute(perm)
    for v in range(table.num_vars):
        if (phase >> v) & 1:
            result = result.flip_variable(v)
    if out_neg:
        result = ~result
    return result


def invert_transform(transform: NpnTransform, num_vars: int) -> NpnTransform:
    """Return the transform undoing *transform*."""
    out_neg, phase, perm = transform
    inv_perm = [0] * num_vars
    for new_var, old_var in enumerate(perm):
        inv_perm[old_var] = new_var
    inv_phase = 0
    for new_var, old_var in enumerate(perm):
        if (phase >> new_var) & 1:
            inv_phase |= 1 << old_var
    return (out_neg, inv_phase, tuple(inv_perm))


def npn_canonical(table: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Exact NPN-canonical representative (minimum integer encoding).

    Returns ``(canonical, transform)`` with
    ``apply_transform(table, transform) == canonical``.
    Exhaustive: intended for ``num_vars <= 4``.
    """
    n = table.num_vars
    best_bits = None
    best_transform: NpnTransform = (False, 0, tuple(range(n)))
    for perm in permutations(range(n)):
        permuted = table.permute(perm)
        for phase in range(1 << n):
            candidate = permuted
            for v in range(n):
                if (phase >> v) & 1:
                    candidate = candidate.flip_variable(v)
            for out_neg in (False, True):
                bits = candidate.bits ^ (table_mask(n) if out_neg else 0)
                if best_bits is None or bits < best_bits:
                    best_bits = bits
                    best_transform = (out_neg, phase, tuple(perm))
    return TruthTable(best_bits, n), best_transform


def npn_semicanonical(table: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Greedy semi-canonical form for functions of any arity.

    Normalizes output phase (bit 0 forced to 0), flips each input so its
    positive cofactor has at least as many minterms as the negative one, then
    sorts variables by cofactor weight.  Cheap and stable but not a true
    canonical form; use only for hashing/cache keys.
    """
    n = table.num_vars
    work = table
    phase = 0
    weights: List[Tuple[int, int]] = []
    for v in range(n):
        ones_pos = work.cofactor(v, True).count_ones()
        ones_neg = work.cofactor(v, False).count_ones()
        if ones_pos < ones_neg:
            work = work.flip_variable(v)
            phase |= 1 << v
            ones_pos, ones_neg = ones_neg, ones_pos
        weights.append((ones_pos, v))
    order = [v for _w, v in sorted(weights, key=lambda t: (t[0], t[1]))]
    work = work.permute(order)
    # Output phase is normalized last (bit 0 of the final table forced to
    # 0), matching apply_transform's perm → phase → negate ordering.
    out_neg = bool(work.bits & 1)
    if out_neg:
        work = ~work
    # The recorded transform applies permutation first (matching
    # apply_transform), so the phase mask must be re-indexed.
    perm_phase = 0
    for new_var, old_var in enumerate(order):
        if (phase >> old_var) & 1:
            perm_phase |= 1 << new_var
    return work, (out_neg, perm_phase, tuple(order))


def npn_classes_upto(num_vars: int) -> List[TruthTable]:
    """Enumerate all NPN class representatives of *num_vars* variables.

    Exhaustive over all ``2**2**n`` functions; practical for ``n <= 3``
    (``n = 4`` takes minutes — the rewrite library instead canonicalizes
    on demand and caches).
    """
    seen = set()
    out: List[TruthTable] = []
    for bits in range(1 << (1 << num_vars)):
        table = TruthTable(bits, num_vars)
        canon, _t = npn_canonical(table)
        if canon.bits not in seen:
            seen.add(canon.bits)
            out.append(canon)
    return out
