"""NPN canonicalization of truth tables.

Two functions are NPN-equivalent when one can be obtained from the other by
Negating inputs, Permuting inputs, and/or Negating the output.  The rewriting
move of the gradient engine (Section IV-A) matches 4-input cut functions
against a precomputed library keyed by NPN class, so canonicalization must be
deterministic and reasonably fast.

For up to 4 variables we canonicalize exactly by exhausting all
``2 * n! * 2**n`` transforms; beyond that a greedy semi-canonical form is used
(sufficient for hashing, not guaranteed minimal).

Hot path
--------
The exhaustive search no longer rebuilds ``permutations(range(n))`` and
re-applies :meth:`TruthTable.permute`/:meth:`~TruthTable.flip_variable`
object chains per invocation.  Instead, the per-arity transform set is
precomputed once at module load (permutation tuples plus, for every
``(perm, phase)`` pair, byte-indexed lookup tables mapping raw table bits
straight to transformed bits), and results are memoized in an LRU cache
keyed by ``(num_vars, bits)`` — cut functions repeat heavily, so most
canonicalizations are a single dict probe.  The original object-based
search is retained (:mod:`repro.hotpath` reference path) and the property
suite proves both return identical ``(canonical, transform)`` pairs.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Dict, List, Tuple

from repro import hotpath
from repro.tt.truthtable import TruthTable, table_mask

#: A transform: (output negated, input phase mask, permutation tuple).
NpnTransform = Tuple[bool, int, Tuple[int, ...]]

#: Per-arity permutation tuples, precomputed once at import (satellite of
#: the hotpath layer: ``permutations(range(n))`` is never re-enumerated).
_PERMS: Dict[int, Tuple[Tuple[int, ...], ...]] = {
    n: tuple(permutations(range(n))) for n in range(5)
}


def _build_transforms(n: int):
    """Byte-LUT transform set for arity *n* (≤ 4), in search order.

    For every ``(perm, phase)`` pair — iterated exactly like the reference
    search: permutations in :func:`itertools.permutations` order, phases
    ascending — the composite row map is
    ``sigma(R) = sum(((R ^ phase) >> j & 1) << perm[j])``: bit ``R`` of the
    transformed table reads bit ``sigma(R)`` of the original.  That map is
    materialized as one (``n <= 3``) or two (``n == 4``) 256-entry lookup
    tables over the raw table bytes, so applying a transform is two indexed
    loads and an OR instead of ``2**n`` Python-object operations.
    """
    nrows = 1 << n
    out = []
    for perm in _PERMS[n]:
        for phase in range(nrows):
            # Inverted view: source bit sigma(R) feeds target bit R.
            target_of_source = [0] * nrows
            for row in range(nrows):
                src = 0
                r = row ^ phase
                for j in range(n):
                    if (r >> j) & 1:
                        src |= 1 << perm[j]
                target_of_source[src] |= 1 << row
            if nrows <= 8:
                width = 1 << nrows
                lut = [0] * width
                for x in range(1, width):
                    lsb = x & -x
                    lut[x] = lut[x ^ lsb] | target_of_source[lsb.bit_length() - 1]
                out.append((perm, phase, lut, None))
            else:  # n == 4: split the 16 table bits into two bytes
                lo = [0] * 256
                hi = [0] * 256
                for x in range(1, 256):
                    lsb = x & -x
                    bit = lsb.bit_length() - 1
                    lo[x] = lo[x ^ lsb] | target_of_source[bit]
                    hi[x] = hi[x ^ lsb] | target_of_source[bit + 8]
                out.append((perm, phase, lo, hi))
    return tuple(out)


#: The 4-input transform set (and the cheaper small arities), built once at
#: module load — the rewrite move canonicalizes 4-input cut functions almost
#: exclusively.
_TRANSFORMS = {n: _build_transforms(n) for n in range(5)}


def apply_transform(table: TruthTable, transform: NpnTransform) -> TruthTable:
    """Apply an NPN transform to a truth table."""
    out_neg, phase, perm = transform
    result = table.permute(perm)
    for v in range(table.num_vars):
        if (phase >> v) & 1:
            result = result.flip_variable(v)
    if out_neg:
        result = ~result
    return result


def invert_transform(transform: NpnTransform, num_vars: int) -> NpnTransform:
    """Return the transform undoing *transform*."""
    out_neg, phase, perm = transform
    inv_perm = [0] * num_vars
    for new_var, old_var in enumerate(perm):
        inv_perm[old_var] = new_var
    inv_phase = 0
    for new_var, old_var in enumerate(perm):
        if (phase >> new_var) & 1:
            inv_phase |= 1 << old_var
    return (out_neg, inv_phase, tuple(inv_perm))


@lru_cache(maxsize=1 << 16)
def _canonical_cached(bits: int, n: int) -> Tuple[int, NpnTransform]:
    """LRU-cached exhaustive search over the precomputed transform set.

    Iteration order and tie-breaking (strict ``<`` on the integer encoding,
    output negation tried after the positive phase) replicate the reference
    search exactly, so the winning transform tuple is identical.
    """
    mask = table_mask(n)
    best_bits = None
    best_transform: NpnTransform = (False, 0, tuple(range(n)))
    if n == 4:
        b_lo = bits & 0xFF
        b_hi = bits >> 8
        for perm, phase, lo, hi in _TRANSFORMS[4]:
            cand = lo[b_lo] | hi[b_hi]
            if best_bits is None or cand < best_bits:
                best_bits = cand
                best_transform = (False, phase, perm)
            cand ^= mask
            if cand < best_bits:
                best_bits = cand
                best_transform = (True, phase, perm)
    else:
        for perm, phase, lut, _hi in _TRANSFORMS[n]:
            cand = lut[bits]
            if best_bits is None or cand < best_bits:
                best_bits = cand
                best_transform = (False, phase, perm)
            cand ^= mask
            if cand < best_bits:
                best_bits = cand
                best_transform = (True, phase, perm)
    return best_bits, best_transform


def npn_canonical(table: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Exact NPN-canonical representative (minimum integer encoding).

    Returns ``(canonical, transform)`` with
    ``apply_transform(table, transform) == canonical``.
    Exhaustive: intended for ``num_vars <= 4``.
    """
    n = table.num_vars
    if n <= 4 and hotpath.enabled():
        bits, transform = _canonical_cached(table.bits, n)
        return TruthTable(bits, n), transform
    return _npn_canonical_reference(table)


def _npn_canonical_reference(table: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Reference search: per-call transform enumeration over TruthTable ops."""
    n = table.num_vars
    best_bits = None
    best_transform: NpnTransform = (False, 0, tuple(range(n)))
    for perm in permutations(range(n)):
        permuted = table.permute(perm)
        for phase in range(1 << n):
            candidate = permuted
            for v in range(n):
                if (phase >> v) & 1:
                    candidate = candidate.flip_variable(v)
            for out_neg in (False, True):
                bits = candidate.bits ^ (table_mask(n) if out_neg else 0)
                if best_bits is None or bits < best_bits:
                    best_bits = bits
                    best_transform = (out_neg, phase, tuple(perm))
    return TruthTable(best_bits, n), best_transform


def npn_semicanonical(table: TruthTable) -> Tuple[TruthTable, NpnTransform]:
    """Greedy semi-canonical form for functions of any arity.

    Normalizes output phase (bit 0 forced to 0), flips each input so its
    positive cofactor has at least as many minterms as the negative one, then
    sorts variables by cofactor weight.  Cheap and stable but not a true
    canonical form; use only for hashing/cache keys.
    """
    n = table.num_vars
    work = table
    phase = 0
    weights: List[Tuple[int, int]] = []
    for v in range(n):
        ones_pos = work.cofactor(v, True).count_ones()
        ones_neg = work.cofactor(v, False).count_ones()
        if ones_pos < ones_neg:
            work = work.flip_variable(v)
            phase |= 1 << v
            ones_pos, ones_neg = ones_neg, ones_pos
        weights.append((ones_pos, v))
    order = [v for _w, v in sorted(weights, key=lambda t: (t[0], t[1]))]
    work = work.permute(order)
    # Output phase is normalized last (bit 0 of the final table forced to
    # 0), matching apply_transform's perm → phase → negate ordering.
    out_neg = bool(work.bits & 1)
    if out_neg:
        work = ~work
    # The recorded transform applies permutation first (matching
    # apply_transform), so the phase mask must be re-indexed.
    perm_phase = 0
    for new_var, old_var in enumerate(order):
        if (phase >> old_var) & 1:
            perm_phase |= 1 << new_var
    return work, (out_neg, perm_phase, tuple(order))


def npn_classes_upto(num_vars: int) -> List[TruthTable]:
    """Enumerate all NPN class representatives of *num_vars* variables.

    Exhaustive over all ``2**2**n`` functions; practical for ``n <= 3``
    (``n = 4`` takes minutes — the rewrite library instead canonicalizes
    on demand and caches).
    """
    seen = set()
    out: List[TruthTable] = []
    for bits in range(1 << (1 << num_vars)):
        table = TruthTable(bits, num_vars)
        canon, _t = npn_canonical(table)
        if canon.bits not in seen:
            seen.add(canon.bits)
            out.append(canon)
    return out
