"""Truth tables as arbitrary-precision integers.

A truth table over ``n`` variables is a ``2**n``-bit integer; bit ``i`` is the
function value under the assignment whose binary encoding is ``i`` (variable 0
least significant).  This is the "truth tables as reasoning engine" of
Section II-A: canonical, and fast for the ≈15-input windows Boolean methods
operate on.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import ReproError


def table_mask(num_vars: int) -> int:
    """All-ones truth table over *num_vars* variables."""
    return (1 << (1 << num_vars)) - 1


def variable_table(index: int, num_vars: int) -> int:
    """Truth table of the projection function ``x_index``."""
    if index >= num_vars:
        raise ReproError(f"variable {index} out of range for {num_vars} vars")
    nbits = 1 << num_vars
    period = 1 << (index + 1)
    run = (1 << (1 << index)) - 1
    out = 0
    pos = 1 << index
    while pos < nbits:
        out |= run << pos
        pos += period
    return out


class TruthTable:
    """A Boolean function of a fixed number of variables.

    Immutable value type with operator overloading: ``&``, ``|``, ``^``, ``~``
    all stay within the variable count.  The Boolean difference of the paper's
    Section III is literally ``f ^ g`` on this type.
    """

    __slots__ = ("bits", "num_vars")

    def __init__(self, bits: int, num_vars: int) -> None:
        self.num_vars = num_vars
        self.bits = bits & table_mask(num_vars)

    # -- constructors --------------------------------------------------------

    @classmethod
    def constant(cls, value: bool, num_vars: int) -> "TruthTable":
        """The constant-0 or constant-1 function."""
        return cls(table_mask(num_vars) if value else 0, num_vars)

    @classmethod
    def variable(cls, index: int, num_vars: int) -> "TruthTable":
        """The projection function ``x_index``."""
        return cls(variable_table(index, num_vars), num_vars)

    @classmethod
    def from_values(cls, values: Iterable[int], num_vars: int) -> "TruthTable":
        """Build from an iterable of 0/1 output values, row 0 first."""
        bits = 0
        for i, v in enumerate(values):
            if v:
                bits |= 1 << i
        return cls(bits, num_vars)

    @classmethod
    def from_hex(cls, hex_string: str, num_vars: int) -> "TruthTable":
        """Build from a hexadecimal string (ABC style, MSB rows first)."""
        return cls(int(hex_string, 16), num_vars)

    # -- operators -------------------------------------------------------------

    def _coerce(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ReproError("truth table variable counts differ")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._coerce(other)
        return TruthTable(self.bits & other.bits, self.num_vars)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._coerce(other)
        return TruthTable(self.bits | other.bits, self.num_vars)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._coerce(other)
        return TruthTable(self.bits ^ other.bits, self.num_vars)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.bits ^ table_mask(self.num_vars), self.num_vars)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TruthTable)
                and self.num_vars == other.num_vars
                and self.bits == other.bits)

    def __hash__(self) -> int:
        return hash((self.bits, self.num_vars))

    def __repr__(self) -> str:
        digits = max(1, (1 << self.num_vars) // 4)
        return f"TruthTable(0x{self.bits:0{digits}x}, {self.num_vars})"

    # -- queries -----------------------------------------------------------------

    def is_const0(self) -> bool:
        """True when the function is identically false."""
        return self.bits == 0

    def is_const1(self) -> bool:
        """True when the function is identically true."""
        return self.bits == table_mask(self.num_vars)

    def value(self, assignment: int) -> int:
        """Output (0/1) for the input row encoded by *assignment*."""
        return (self.bits >> assignment) & 1

    def count_ones(self) -> int:
        """Number of minterms (onset size)."""
        return bin(self.bits).count("1")

    def depends_on(self, var: int) -> bool:
        """True when the function actually depends on variable *var*."""
        return self.cofactor(var, False).bits != self.cofactor(var, True).bits

    def support(self) -> List[int]:
        """Indices of the variables the function depends on."""
        return [v for v in range(self.num_vars) if self.depends_on(v)]

    # -- transformations ------------------------------------------------------------

    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Shannon cofactor with respect to ``x_var = value``.

        The result is still expressed over all ``num_vars`` variables (the
        cofactored variable becomes irrelevant).
        """
        mask = variable_table(var, self.num_vars)
        if value:
            pos = self.bits & mask
            return TruthTable(pos | (pos >> (1 << var)), self.num_vars)
        neg = self.bits & ~mask
        return TruthTable(neg | (neg << (1 << var)), self.num_vars)

    def exists(self, var: int) -> "TruthTable":
        """Existential quantification over *var*."""
        return self.cofactor(var, False) | self.cofactor(var, True)

    def forall(self, var: int) -> "TruthTable":
        """Universal quantification over *var*."""
        return self.cofactor(var, False) & self.cofactor(var, True)

    def boolean_difference(self, var: int) -> "TruthTable":
        """Classic Boolean difference ``∂f/∂x_var`` (XOR of the cofactors)."""
        return self.cofactor(var, False) ^ self.cofactor(var, True)

    def flip_variable(self, var: int) -> "TruthTable":
        """Complement input variable *var* (an input negation)."""
        mask = variable_table(var, self.num_vars)
        shift = 1 << var
        hi = self.bits & mask
        lo = self.bits & ~mask
        return TruthTable((hi >> shift) | (lo << shift), self.num_vars)

    def swap_variables(self, a: int, b: int) -> "TruthTable":
        """Exchange input variables *a* and *b*."""
        if a == b:
            return self
        if a > b:
            a, b = b, a
        nbits = 1 << self.num_vars
        out = 0
        bits = self.bits
        for row in range(nbits):
            if not (bits >> row) & 1:
                continue
            bit_a = (row >> a) & 1
            bit_b = (row >> b) & 1
            if bit_a == bit_b:
                out |= 1 << row
            else:
                swapped = row ^ (1 << a) ^ (1 << b)
                out |= 1 << swapped
        return TruthTable(out, self.num_vars)

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Apply an input permutation: new variable *i* is old ``perm[i]``."""
        if sorted(perm) != list(range(self.num_vars)):
            raise ReproError("not a permutation")
        nbits = 1 << self.num_vars
        out = 0
        for row in range(nbits):
            if not (self.bits >> row) & 1:
                continue
            new_row = 0
            for new_var, old_var in enumerate(perm):
                if (row >> old_var) & 1:
                    new_row |= 1 << new_var
            out |= 1 << new_row
        return TruthTable(out, self.num_vars)

    def expand(self, num_vars: int) -> "TruthTable":
        """Re-express over a larger variable count (new variables unused)."""
        if num_vars < self.num_vars:
            raise ReproError("cannot shrink a truth table with expand()")
        bits = self.bits
        width = 1 << self.num_vars
        for extra in range(self.num_vars, num_vars):
            bits |= bits << width
            width <<= 1
        return TruthTable(bits, num_vars)

    def shrink_to_support(self) -> Tuple["TruthTable", List[int]]:
        """Project onto the support variables; returns (table, old indices)."""
        sup = self.support()
        nbits = 1 << len(sup)
        out = 0
        for row in range(nbits):
            full_row = 0
            for new_var, old_var in enumerate(sup):
                if (row >> new_var) & 1:
                    full_row |= 1 << old_var
            if (self.bits >> full_row) & 1:
                out |= 1 << row
        return TruthTable(out, len(sup)), sup

    def to_hex(self) -> str:
        """Hexadecimal string (without prefix), zero-padded to table width."""
        digits = max(1, (1 << self.num_vars) // 4)
        return f"{self.bits:0{digits}x}"
