"""Irredundant sum-of-products via the Minato–Morreale algorithm.

Computes an irredundant cover of any function between a lower bound ``L``
(onset) and an upper bound ``U`` (onset plus don't cares).  Don't cares are
central to Boolean methods (Section II), and the interval form lets the same
routine serve plain covering (``L = U``) and don't-care-aware resynthesis
(``L = onset``, ``U = onset | dc``).

Cubes are pairs of variable bitmasks ``(pos, neg)``: variable *v* appears as a
positive literal when bit *v* of ``pos`` is set, negative when bit *v* of
``neg`` is set.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ReproError
from repro.tt.truthtable import TruthTable, table_mask, variable_table

Cube = Tuple[int, int]


def cube_table(cube: Cube, num_vars: int) -> int:
    """Truth table (integer) of a cube over *num_vars* variables."""
    pos, neg = cube
    bits = table_mask(num_vars)
    for v in range(num_vars):
        if (pos >> v) & 1:
            bits &= variable_table(v, num_vars)
        if (neg >> v) & 1:
            bits &= ~variable_table(v, num_vars)
    return bits & table_mask(num_vars)


def cover_table(cubes: List[Cube], num_vars: int) -> int:
    """Truth table (integer) of a sum of cubes."""
    bits = 0
    for cube in cubes:
        bits |= cube_table(cube, num_vars)
    return bits


def isop(lower: TruthTable, upper: TruthTable) -> List[Cube]:
    """Irredundant SOP cover ``C`` with ``lower ⊆ C ⊆ upper``.

    Raises :class:`ReproError` when ``lower ⊄ upper``.
    """
    if lower.num_vars != upper.num_vars:
        raise ReproError("isop bounds must share the variable count")
    if lower.bits & ~upper.bits & table_mask(lower.num_vars):
        raise ReproError("isop lower bound not contained in upper bound")
    cubes, _table = _isop_rec(lower.bits, upper.bits, lower.num_vars,
                              lower.num_vars)
    return cubes


def isop_table(table: TruthTable) -> List[Cube]:
    """Irredundant SOP of an exactly specified function."""
    return isop(table, table)


def _isop_rec(lower: int, upper: int, var: int, num_vars: int):
    """Recursive Minato–Morreale; returns (cubes, cover table bits)."""
    if lower == 0:
        return [], 0
    full = table_mask(num_vars)
    if upper & full == full:
        return [(0, 0)], full
    # Find the topmost variable where either bound still branches.
    v = var - 1
    while v >= 0:
        mask = variable_table(v, num_vars)
        shift = 1 << v
        l0 = lower & ~mask
        l1 = (lower & mask) >> shift
        u0 = upper & ~mask
        u1 = (upper & mask) >> shift
        l1 = l1 | (l1 << shift)
        l0 = l0 | (l0 << shift)
        u1 = u1 | (u1 << shift)
        u0 = u0 | (u0 << shift)
        if l0 != l1 or u0 != u1:
            break
        v -= 1
    if v < 0:
        # Function is constant over remaining variables; lower != 0 here.
        return [(0, 0)], full
    # Cubes required exclusively in each branch.
    cubes0, f0 = _isop_rec(l0 & ~u1 & full, u0, v, num_vars)
    cubes1, f1 = _isop_rec(l1 & ~u0 & full, u1, v, num_vars)
    # Remaining minterms can be covered without literal v.
    new_lower = (l0 & ~f0) | (l1 & ~f1)
    cubes2, f2 = _isop_rec(new_lower & full, u0 & u1, v, num_vars)
    var_bit = 1 << v
    result = ([(pos, neg | var_bit) for pos, neg in cubes0]
              + [(pos | var_bit, neg) for pos, neg in cubes1]
              + cubes2)
    mask = variable_table(v, num_vars)
    table = (f0 & ~mask) | (f1 & mask) | f2
    return result, table


def cube_literal_count(cubes: List[Cube]) -> int:
    """Total number of literals in a cube list."""
    return sum(bin(pos).count("1") + bin(neg).count("1") for pos, neg in cubes)
