"""Truth-table reasoning engine (Section II-A of the paper)."""

from repro.tt.isop import (
    Cube,
    cover_table,
    cube_literal_count,
    cube_table,
    isop,
    isop_table,
)
from repro.tt.npn import (
    NpnTransform,
    apply_transform,
    invert_transform,
    npn_canonical,
    npn_classes_upto,
    npn_semicanonical,
)
from repro.tt.truthtable import TruthTable, table_mask, variable_table

__all__ = [
    "TruthTable", "table_mask", "variable_table",
    "Cube", "isop", "isop_table", "cube_table", "cover_table",
    "cube_literal_count",
    "NpnTransform", "npn_canonical", "npn_semicanonical",
    "apply_transform", "invert_transform", "npn_classes_upto",
]
