"""Process-parallel partition execution engine.

The paper's scalability argument (Section III-B) bounds every Boolean
method inside partitions that are mutually independent — which makes each
partition a schedulable task.  The :class:`PartitionScheduler` turns a
partitioned pass into a three-phase pipeline:

1. **Extract** — every window is snapshot into a picklable
   :class:`~repro.parallel.window_io.WindowTask` *before any edit*, so all
   tasks are pure functions of the same network state.
2. **Execute** — tasks run through a registered engine worker, either
   inline (``jobs=1``, the exact serial path: same code, same order, no
   process machinery) or fanned out over a ``ProcessPoolExecutor``.
3. **Merge** — results are spliced back strictly in partition order with a
   structural-hash dedup (:func:`~repro.partition.partitioner.splice_window`).
   Because workers are deterministic pure functions and the merge order is
   fixed, the final network is byte-identical regardless of ``jobs`` or of
   worker completion order.

Fault isolation: a worker that raises returns a fallback result from inside
the worker; a worker that *dies* (segfault, OOM kill) breaks the pool, in
which case the window being waited on falls back and the remaining tasks are
retried in a fresh pool (bounded by ``max_pool_restarts``).  A window that
exceeds ``window_timeout_s`` falls back as well.  A fallback window simply
keeps its original logic — the network is never left in a corrupt state.

Fault injection: a seeded :class:`repro.guard.chaos.FaultPlan` can be
threaded through the scheduler (``chaos=`` / ``chaos_scope=``) to inject
worker crashes, window timeouts, corrupt (non-equivalent) results, and
forced BDD bailouts at deterministic window sites.  The plan is evaluated
in the *parent* before submission, so every injected fault is known and
reported (window payload key ``"chaos"``) even when the worker it hit
never answers; injected crashes are attributed to the window the plan
picked, which keeps chaos runs deterministic for a fixed seed and jobs
count.  Window-level faults are one-shot: a window retried after an
injected pool crash runs clean.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.aig.aig import Aig
from repro.errors import BddLimitError
from repro.guard.chaos import corrupt_window_result, in_worker_process
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.parallel.shared_pool import SharedProcessPool
from repro.parallel.stats import ParallelReport, WindowRecord
from repro.parallel.window_io import (
    CompactAig,
    WindowResult,
    WindowTask,
    extract_task,
)
from repro.partition.partitioner import (
    PartitionConfig,
    Window,
    partition_network,
    refresh_window,
    splice_window,
)

#: Engine registry: name -> ``fn(sub_aig, config) -> (changed, optimized
#: sub_aig or None, payload counters)``.  Workers resolve engines by *name*,
#: so only the name, the task, and the config cross the process boundary.
ENGINES: Dict[str, Callable[[Aig, Any], Tuple[bool, Optional[Aig], Dict[str, Any]]]] = {}


def register_engine(name: str, fn: Callable) -> Callable:
    """Register a window-optimization engine under *name* (idempotent)."""
    ENGINES[name] = fn
    return fn


def _resolve_engine(name: str) -> Callable:
    """Look up an engine, importing the built-in SBM engines on demand."""
    if name not in ENGINES:
        # Lazy import avoids a cycle (the sbm modules import this module to
        # register themselves) and makes resolution work under any
        # multiprocessing start method.
        from repro.sbm import boolean_difference  # noqa: F401
        from repro.sbm import hetero_kernel  # noqa: F401
        from repro.sbm import mspf  # noqa: F401
        from repro.sbm import simresub  # noqa: F401
    return ENGINES[name]


def _fallback_result(task: WindowTask, reason: str,
                     wall_s: float = 0.0) -> WindowResult:
    return WindowResult(index=task.index, changed=False, optimized=None,
                        wall_s=wall_s, fallback=reason)


#: Reserved payload key carrying the worker's local metrics snapshot back
#: to the parent, where it merges in deterministic partition order.
OBS_PAYLOAD_KEY = "_obs_metrics"


def run_window_task(engine_name: str, task: WindowTask, config: Any,
                    collect_metrics: Optional[bool] = None,
                    inject: Optional[str] = None,
                    timeout_hint: Optional[float] = None) -> WindowResult:
    """Worker entry point: decode, optimize, re-encode one window.

    Runs in a worker process (or inline when ``jobs=1``).  Any exception is
    converted into a fallback result so a failing window can never poison
    the merge phase.

    When ``collect_metrics`` is true (``None`` means "iff observability is
    enabled in this process"), the engine runs against a fresh local
    metrics registry — never the parent's, whose JSONL sink and span stack
    must not be touched from a forked worker — and the registry snapshot is
    shipped back in the result payload under :data:`OBS_PAYLOAD_KEY`.  The
    scheduler passes the parent's setting explicitly so the behaviour does
    not depend on the multiprocessing start method.

    *inject* names a fault drawn by a :class:`repro.guard.chaos.FaultPlan`
    for this window; *timeout_hint* is the scheduler's per-window budget,
    used to make an injected ``window-timeout`` overrun it for real.
    Fault kinds that need process machinery (crash, timeout) degrade to
    plain fallbacks when executed inline.
    """
    start = time.perf_counter()
    if inject == "worker-crash":
        if in_worker_process():
            os._exit(23)  # hard exit: breaks the pool, like a real segfault
        return _fallback_result(task, "chaos:worker-crash")
    if inject == "window-timeout":
        if timeout_hint is not None and in_worker_process():
            # Overrun the parent's per-window deadline for real; the parent
            # has already fallen back by the time this result is produced.
            time.sleep(timeout_hint * 1.5 + 0.05)
        return _fallback_result(task, "chaos:window-timeout",
                                wall_s=time.perf_counter() - start)
    if collect_metrics is None:
        collect_metrics = obs.enabled()
    local = MetricsRegistry() if collect_metrics else None
    previous = obs.install(NULL_TRACER, local) if local is not None else None
    try:
        if inject == "bdd-limit":
            raise BddLimitError("chaos: forced BDD node limit")
        engine = _resolve_engine(engine_name)
        sub = task.compact.to_aig()
        changed, optimized, payload = engine(sub, config)
        compact = None
        if changed and optimized is not None:
            compact = CompactAig.from_aig(optimized)
        result = WindowResult(index=task.index,
                              changed=compact is not None,
                              optimized=compact, payload=payload,
                              wall_s=time.perf_counter() - start)
        if inject == "corrupt-result":
            result = corrupt_window_result(task, result)
    except Exception as exc:  # fault isolation: report, don't propagate
        result = _fallback_result(
            task, f"worker-error:{type(exc).__name__}: {exc}",
            wall_s=time.perf_counter() - start)
    finally:
        if previous is not None:
            obs.install(*previous)
    if local is not None and not local.is_empty():
        result.payload[OBS_PAYLOAD_KEY] = local.snapshot()
    return result


class PartitionScheduler:
    """Fan partition windows out over worker processes; merge deterministically.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` executes every task inline in partition
        order (the exact serial path); ``None`` or ``0`` means
        ``os.cpu_count()``.
    window_timeout_s:
        Per-window wall-clock budget when ``jobs > 1``; an overrunning
        window falls back to its original logic.  ``None`` disables the
        timeout (the default — timeouts trade determinism for latency,
        since a machine-dependent timeout can drop a window).
    max_pool_restarts:
        How many times a hard-crashed process pool is rebuilt before the
        remaining windows are abandoned to their fallbacks.
    chaos:
        Optional :class:`repro.guard.chaos.FaultPlan`; when set, each
        window site is asked for an injected fault before execution.
    chaos_scope:
        Site-name prefix (the flow passes ``it<effort>:<stage>``) so the
        same engine run in different stages draws independent faults.
    pool:
        Optional :class:`~repro.parallel.shared_pool.SharedProcessPool`.
        When set, tasks are submitted into the shared executor instead of
        a private per-pass pool (``jobs`` defaults to the pool width), a
        broken executor is rebuilt through the pool's generation protocol,
        and a timed-out window's worker slot is simply abandoned until the
        stale task finishes (a shared pool cannot be torn down mid-pass).
    """

    def __init__(self, jobs: Optional[int] = 1,
                 window_timeout_s: Optional[float] = None,
                 max_pool_restarts: int = 2,
                 chaos: Optional[Any] = None,
                 chaos_scope: str = "",
                 pool: Optional[SharedProcessPool] = None) -> None:
        if pool is not None and (jobs is None or jobs <= 1):
            jobs = pool.workers
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.window_timeout_s = window_timeout_s
        self.max_pool_restarts = max_pool_restarts
        self.chaos = chaos
        self.chaos_scope = chaos_scope
        self.pool = pool

    # -- public API ----------------------------------------------------------

    def run_pass(self, aig: Aig, engine: str, config: Any,
                 partition_config: Optional[PartitionConfig] = None,
                 windows: Optional[List[Window]] = None) -> ParallelReport:
        """Partition *aig*, optimize every window, splice results back.

        Edits *aig* in place and returns the pass telemetry.
        """
        start = time.perf_counter()
        with obs.span(f"pass:{engine}", kind="pass", engine=engine,
                      jobs=self.jobs) as pass_span:
            if windows is None:
                windows = partition_network(aig, partition_config)
            # Normalize every window against the (still unedited) network
            # before snapshotting: refresh re-sorts the member nodes into
            # topological order and recomputes the boundary, exactly as the
            # serial engines did per window.  The node order matters beyond
            # hygiene — the SOP engines' elimination cost is very sensitive
            # to it.
            windows = [w for w in (refresh_window(aig, w) for w in windows)
                       if w is not None]
            tasks = [extract_task(aig, w, i) for i, w in enumerate(windows)]
            injections = self._draw_faults(engine, tasks)
            # Live progress is published from the parent only, and only
            # during the partition-order merge below — worker processes
            # never see the bus, so the event payload stream is identical
            # for every jobs value (the determinism contract; timing lives
            # in the event envelope, not the payload).
            bus = obs.live_bus()
            if bus.enabled:
                bus.emit("pass_start", engine=engine, windows=len(tasks))
            results, restarts = self._execute(engine, tasks, config,
                                              injections)
            report = ParallelReport(engine=engine, jobs=self.jobs,
                                    pool_restarts=restarts)
            registry = obs.metrics()
            for done, (window, task) in enumerate(zip(windows, tasks), 1):
                result = results.get(task.index)
                if result is None:
                    result = _fallback_result(task, "missing-result")
                # Worker metrics merge here, in partition order — the only
                # order-dependent merge op is the gauge last-write, so the
                # registry ends up identical for every jobs value.
                registry.merge(result.payload.pop(OBS_PAYLOAD_KEY, None))
                record = self._merge_window(aig, engine, window, task, result)
                kind = injections.get(task.index)
                if kind is not None:
                    # Surface the injected fault even when the worker died
                    # before it could report (the parent drew the fault).
                    record.payload.setdefault("chaos", kind)
                    registry.inc("guard.chaos.injected", engine=engine,
                                 kind=kind)
                report.records.append(record)
                if bus.enabled:
                    bus.emit("window", engine=engine, index=record.index,
                             done=done, total=len(tasks),
                             applied=record.applied, gain=record.gain,
                             fallback=record.fallback)
            report.elapsed_s = time.perf_counter() - start
            if bus.enabled:
                bus.emit("pass_end", engine=engine,
                         windows=report.num_windows,
                         applied=report.num_applied,
                         gain=report.total_gain,
                         fallbacks=report.num_fallbacks)
            self._observe_report(report, pass_span)
            # Outside the enabled() gate: a campaign job collector must see
            # every pass even when no obs session is active.
            obs.record_parallel_report(report)
        return report

    @staticmethod
    def _observe_report(report: ParallelReport, pass_span) -> None:
        """Publish the pass outcome to the active observability session."""
        if not obs.enabled():
            return
        registry = obs.metrics()
        engine = report.engine
        registry.inc("parallel.windows", report.num_windows, engine=engine)
        registry.inc("parallel.applied", report.num_applied, engine=engine)
        registry.inc("parallel.gain", report.total_gain, engine=engine)
        if report.pool_restarts:
            registry.inc("parallel.pool_restarts", report.pool_restarts,
                         engine=engine)
        for reason, count in sorted(report.fallback_reasons.items()):
            registry.inc("parallel.fallback", count, engine=engine,
                         reason=reason)
        pass_span.set("windows", report.num_windows)
        pass_span.set("applied", report.num_applied)
        pass_span.set("gain", report.total_gain)
        pass_span.set("pool_restarts", report.pool_restarts)
        tracer = obs.tracer()
        for r in report.records:
            tracer.record(f"window[{r.index}]", kind="window",
                          wall_s=r.wall_s, size=r.size, leaves=r.leaves,
                          applied=r.applied, gain=r.gain,
                          fallback=r.fallback)

    # -- execution -----------------------------------------------------------

    def _draw_faults(self, engine: str,
                     tasks: List[WindowTask]) -> Dict[int, str]:
        """Ask the fault plan about every window site, in partition order.

        Drawing up front in the parent makes the injection schedule
        independent of worker scheduling and visible even for faults that
        kill the worker before it can report.
        """
        if self.chaos is None:
            return {}
        prefix = f"{self.chaos_scope}:" if self.chaos_scope else ""
        injections: Dict[int, str] = {}
        for task in tasks:
            kind = self.chaos.draw(f"{prefix}{engine}:w{task.index}")
            if kind is not None:
                injections[task.index] = kind
        return injections

    def _execute(self, engine: str, tasks: List[WindowTask], config: Any,
                 injections: Optional[Dict[int, str]] = None
                 ) -> Tuple[Dict[int, WindowResult], int]:
        collect = obs.enabled()
        injections = injections or {}
        if self.jobs <= 1 or len(tasks) <= 1:
            return ({t.index: run_window_task(
                        engine, t, config, collect_metrics=collect,
                        inject=injections.get(t.index),
                        timeout_hint=self.window_timeout_s)
                     for t in tasks}, 0)
        return self._execute_pool(engine, tasks, config, collect, injections)

    def _execute_pool(self, engine: str, tasks: List[WindowTask], config: Any,
                      collect: bool = False,
                      injections: Optional[Dict[int, str]] = None
                      ) -> Tuple[Dict[int, WindowResult], int]:
        results: Dict[int, WindowResult] = {}
        pending = list(tasks)
        injections = dict(injections or {})
        restarts = 0
        while pending:
            pending = self._pool_round(engine, pending, config, results,
                                       collect, injections)
            if pending:
                if restarts >= self.max_pool_restarts:
                    # Restart budget exhausted: every remaining window keeps
                    # its original logic.  ``pool_restarts`` reports exactly
                    # the number of pools rebuilt, i.e. the cap.
                    for task in pending:
                        results[task.index] = _fallback_result(
                            task, "pool-restart-limit")
                    break
                restarts += 1
        return results, restarts

    def _pool_round(self, engine: str, tasks: List[WindowTask], config: Any,
                    results: Dict[int, WindowResult],
                    collect: bool = False,
                    injections: Optional[Dict[int, str]] = None
                    ) -> List[WindowTask]:
        """Run one process pool; return the tasks that must be retried.

        A worker *exception* is handled inside :func:`run_window_task` and
        arrives as an ordinary fallback result.  This method only deals with
        the hard failures: per-window timeouts and pool-breaking crashes.

        With a :class:`SharedProcessPool` the executor belongs to the
        campaign, not to this pass: submission goes through
        :meth:`SharedProcessPool.submit` (which labels and steal-counts
        it), and instead of tearing a broken executor down this method
        asks the pool to rebuild the generation it observed.
        """
        retry: List[WindowTask] = []
        tainted = False  # a timed-out worker still occupies its slot
        broken = False
        injections = injections if injections is not None else {}
        shared = self.pool
        private: Optional[ProcessPoolExecutor] = None
        if shared is not None:
            generation = shared.generation
            submit = shared.submit
        else:
            generation = 0
            private = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks)),
                mp_context=self._mp_context())
            submit = private.submit
        try:
            futures = [(task, submit(run_window_task, engine, task,
                                     config, collect,
                                     injections.get(task.index),
                                     self.window_timeout_s))
                       for task in tasks]
            for task, future in futures:
                if broken:
                    # The pool died while this future was pending; anything
                    # already finished (or already attributed) is kept, the
                    # rest is retried.
                    if task.index in results:
                        continue
                    if future.done() and not future.cancelled():
                        try:
                            results[task.index] = future.result()
                            continue
                        except Exception:
                            pass
                    retry.append(task)
                    continue
                try:
                    results[task.index] = future.result(
                        timeout=self.window_timeout_s)
                except FutureTimeoutError:
                    results[task.index] = _fallback_result(
                        task, "timeout", wall_s=self.window_timeout_s or 0.0)
                    future.cancel()
                    tainted = True
                except BrokenProcessPool:
                    broken = True
                    crashed = [t for t in tasks
                               if injections.get(t.index) == "worker-crash"
                               and t.index not in results]
                    if crashed:
                        # The fault plan knows which worker it killed:
                        # attribute the crash to the injected window(s) and
                        # retry everything else (this one included) in a
                        # fresh pool.  Injections are one-shot, so retried
                        # windows run clean — chaos runs stay deterministic.
                        for t in crashed:
                            results[t.index] = _fallback_result(
                                t, "worker-crashed")
                            injections.pop(t.index, None)
                        if task.index not in results:
                            retry.append(task)
                    else:
                        # Cannot tell which worker died: this window falls
                        # back, every unfinished one is retried in a fresh
                        # pool.
                        results[task.index] = _fallback_result(
                            task, "worker-crashed")
                except Exception as exc:
                    results[task.index] = _fallback_result(
                        task, f"pool-error:{type(exc).__name__}")
        except BrokenProcessPool:
            # The pool broke during submission; retry everything unassigned.
            broken = True
            for task in tasks:
                if task.index not in results and task not in retry:
                    retry.append(task)
        finally:
            if private is not None:
                private.shutdown(wait=not (tainted or broken),
                                 cancel_futures=True)
            elif broken and shared is not None:
                shared.rebuild(generation)
        return retry

    @staticmethod
    def _mp_context():
        """Prefer ``fork``: cheap worker startup, no re-import per task."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            return multiprocessing.get_context()

    # -- merge ---------------------------------------------------------------

    def _merge_window(self, aig: Aig, engine: str, window: Window,
                      task: WindowTask, result: WindowResult) -> WindowRecord:
        """Splice one window's result back; fall back on any inconsistency.

        The guards mirror the serial engines' contracts: a window is only
        replaced when its boundary is still alive, the optimized sub-network
        is no larger than the window's current logic, and the actual splice
        delta did not grow the network (structural-hash interactions with
        earlier splices can differ from the worker's local measurement).
        """
        record = WindowRecord(index=task.index, engine=engine,
                              size=task.size, leaves=len(window.leaves),
                              wall_s=result.wall_s, payload=result.payload,
                              fallback=result.fallback)
        if result.fallback is not None or not result.changed:
            return record
        if result.optimized is None:
            return record
        if any(aig.is_dead(leaf) for leaf in window.leaves):
            # An earlier splice replaced one of our boundary nodes; the
            # precomputed result no longer has a valid support to attach to.
            record.fallback = "boundary-changed"
            return record
        live = refresh_window(aig, window)
        if live is None:
            record.fallback = "window-died"
            return record
        optimized = result.optimized.to_aig()
        if optimized.num_ands > live.size:
            record.fallback = "stale-no-improvement"
            return record
        before = aig.num_ands
        delta = splice_window(aig, window, optimized)
        if delta > 0:
            # Structural hashing interacted badly with surrounding logic;
            # restore the original window structure (function is unchanged
            # either way, exactly as the serial kernel engine does).
            splice_window(aig, window, task.compact.to_aig())
            record.fallback = "grew-reverted"
            record.gain = before - aig.num_ands
            return record
        record.applied = True
        record.gain = -delta
        return record


def run_partitioned_pass(aig: Aig, engine: str, config: Any,
                         partition_config: Optional[PartitionConfig] = None,
                         jobs: Optional[int] = 1,
                         window_timeout_s: Optional[float] = None,
                         chaos: Optional[Any] = None,
                         chaos_scope: str = "",
                         pool: Optional[SharedProcessPool] = None
                         ) -> ParallelReport:
    """Convenience wrapper: one scheduler, one pass, one report."""
    scheduler = PartitionScheduler(jobs=jobs,
                                   window_timeout_s=window_timeout_s,
                                   chaos=chaos, chaos_scope=chaos_scope,
                                   pool=pool)
    return scheduler.run_pass(aig, engine, config, partition_config)
