"""Per-window telemetry for the parallel partition scheduler.

Every scheduled window produces one :class:`WindowRecord` — wall time,
achieved gain, whether the result was applied, and the fallback reason when
it was not.  Records aggregate into a :class:`ParallelReport` that the flow
can print after a pass: windows executed, improvement rate, fallback
breakdown, and the serial-equivalent runtime (the sum of worker wall times)
against the elapsed wall clock, whose ratio estimates the realized speedup.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class WindowRecord:
    """Telemetry of one scheduled window."""

    index: int
    engine: str
    size: int               #: internal nodes at extraction time
    leaves: int             #: boundary inputs
    wall_s: float = 0.0     #: worker wall time for this window
    applied: bool = False   #: optimized result spliced into the network
    gain: int = 0           #: parent-level node saving when applied
    fallback: Optional[str] = None
    #: engine counters reported by the worker (rewrites, bailouts, ...)
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation for the run report."""
        return {
            "index": self.index,
            "engine": self.engine,
            "size": self.size,
            "leaves": self.leaves,
            "wall_s": self.wall_s,
            "applied": self.applied,
            "gain": self.gain,
            "fallback": self.fallback,
            "payload": dict(self.payload),
        }


@dataclass
class ParallelReport:
    """Aggregated outcome of one parallel (or serial) partitioned pass."""

    engine: str
    jobs: int
    records: List[WindowRecord] = field(default_factory=list)
    elapsed_s: float = 0.0      #: wall clock of the whole pass
    pool_restarts: int = 0      #: process pools rebuilt after hard crashes

    @property
    def num_windows(self) -> int:
        """Number of partitions scheduled."""
        return len(self.records)

    @property
    def num_applied(self) -> int:
        """Windows whose optimized result was spliced back."""
        return sum(1 for r in self.records if r.applied)

    @property
    def num_fallbacks(self) -> int:
        """Windows that kept their original logic due to a failure."""
        return sum(1 for r in self.records if r.fallback is not None)

    @property
    def fallback_reasons(self) -> Dict[str, int]:
        """Histogram of fallback reasons."""
        return dict(Counter(r.fallback for r in self.records
                            if r.fallback is not None))

    @property
    def total_gain(self) -> int:
        """Total parent-level node saving across applied windows."""
        return sum(r.gain for r in self.records if r.applied)

    @property
    def worker_wall_s(self) -> float:
        """Sum of per-window worker wall times, fallbacks included."""
        return sum(r.wall_s for r in self.records)

    @property
    def useful_worker_wall_s(self) -> float:
        """Serial-equivalent runtime: worker wall times of the windows that
        completed (a timed-out or crashed window's wall time is not work a
        serial run would have kept, so counting it inflates the estimate)."""
        return sum(r.wall_s for r in self.records if r.fallback is None)

    @property
    def speedup(self) -> float:
        """Realized speedup estimate (useful worker time / elapsed time)."""
        if self.elapsed_s <= 0.0:
            return 1.0
        return self.useful_worker_wall_s / self.elapsed_s

    def counter(self, key: str) -> float:
        """Sum a numeric engine counter over every window payload."""
        total = 0
        for r in self.records:
            value = r.payload.get(key, 0)
            if isinstance(value, (int, float)):
                total += value
        return total

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation for the run report (stable schema)."""
        return {
            "engine": self.engine,
            "jobs": self.jobs,
            "elapsed_s": self.elapsed_s,
            "pool_restarts": self.pool_restarts,
            "num_windows": self.num_windows,
            "num_applied": self.num_applied,
            "num_fallbacks": self.num_fallbacks,
            "fallback_reasons": self.fallback_reasons,
            "total_gain": self.total_gain,
            "worker_wall_s": self.worker_wall_s,
            "useful_worker_wall_s": self.useful_worker_wall_s,
            "speedup": self.speedup,
            "windows": [r.to_dict() for r in self.records],
        }

    def format_report(self) -> str:
        """Human-readable summary table of the pass."""
        lines = [
            f"parallel pass: engine={self.engine} jobs={self.jobs} "
            f"windows={self.num_windows}",
            f"  applied={self.num_applied}  gain={self.total_gain}  "
            f"fallbacks={self.num_fallbacks}  "
            f"pool_restarts={self.pool_restarts}",
            f"  elapsed={self.elapsed_s:.2f}s  "
            f"worker_time={self.worker_wall_s:.2f}s "
            f"(useful {self.useful_worker_wall_s:.2f}s)  "
            f"speedup={self.speedup:.2f}x",
        ]
        reasons = self.fallback_reasons
        if reasons:
            pretty = ", ".join(f"{k}: {v}" for k, v in sorted(reasons.items()))
            lines.append(f"  fallback reasons: {pretty}")
        slowest = sorted(self.records, key=lambda r: -r.wall_s)[:5]
        for r in slowest:
            status = ("applied" if r.applied
                      else (r.fallback or "unchanged"))
            lines.append(f"  window {r.index:4d}: size={r.size:4d} "
                         f"leaves={r.leaves:3d} wall={r.wall_s:6.3f}s "
                         f"gain={r.gain:4d} [{status}]")
        return "\n".join(lines)


def aggregate_reports(reports: List[ParallelReport]) -> Dict[str, Any]:
    """Sum window telemetry across many passes (and many flows).

    :attr:`ParallelReport.speedup` and :attr:`ParallelReport.pool_restarts`
    describe **one pass of one flow**.  A batch run (the campaign
    orchestrator, or anything else invoking several flows) must not report
    the last flow's pass as if it were the whole batch — the historical
    pitfall this helper exists to prevent.  Everything additive is summed
    across *all* reports; the aggregate ``speedup`` is recomputed from the
    summed useful worker time over the summed elapsed time, which weights
    every pass by its actual duration instead of averaging ratios.

    The ``by_engine`` breakdown attributes the node deltas: historically
    engines were summed into batch totals only, so a campaign report could
    not say *which* engine won on which benchmark.  (``engines`` — the
    plain pass-count histogram — is kept for backward compatibility.)

    Returns a JSON-safe dict (empty-input safe: all zeros, ``speedup`` 1.0).
    """
    total_elapsed = sum(r.elapsed_s for r in reports)
    total_useful = sum(r.useful_worker_wall_s for r in reports)
    fallback_reasons: Dict[str, int] = {}
    engines: Dict[str, int] = {}
    by_engine: Dict[str, Dict[str, Any]] = {}
    for r in reports:
        engines[r.engine] = engines.get(r.engine, 0) + 1
        agg = by_engine.setdefault(r.engine, {
            "passes": 0, "num_windows": 0, "num_applied": 0,
            "num_fallbacks": 0, "total_gain": 0, "worker_wall_s": 0.0})
        agg["passes"] += 1
        agg["num_windows"] += r.num_windows
        agg["num_applied"] += r.num_applied
        agg["num_fallbacks"] += r.num_fallbacks
        agg["total_gain"] += r.total_gain
        agg["worker_wall_s"] += r.worker_wall_s
        for reason, count in r.fallback_reasons.items():
            fallback_reasons[reason] = fallback_reasons.get(reason, 0) + count
    return {
        "passes": len(reports),
        "engines": dict(sorted(engines.items())),
        "by_engine": dict(sorted(by_engine.items())),
        "num_windows": sum(r.num_windows for r in reports),
        "num_applied": sum(r.num_applied for r in reports),
        "num_fallbacks": sum(r.num_fallbacks for r in reports),
        "fallback_reasons": dict(sorted(fallback_reasons.items())),
        "total_gain": sum(r.total_gain for r in reports),
        "pool_restarts": sum(r.pool_restarts for r in reports),
        "elapsed_s": total_elapsed,
        "worker_wall_s": sum(r.worker_wall_s for r in reports),
        "useful_worker_wall_s": total_useful,
        "speedup": (total_useful / total_elapsed
                    if total_elapsed > 0.0 else 1.0),
    }
