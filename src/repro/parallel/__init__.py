"""Process-parallel partition execution for the SBM flow.

The paper bounds every Boolean method inside independent partitions
(Section III-B); this package schedules those partitions over worker
processes.  See :mod:`repro.parallel.scheduler` for the execution model
(snapshot → execute → deterministic merge), :mod:`repro.parallel.window_io`
for the picklable window transport, and :mod:`repro.parallel.stats` for the
per-window telemetry.
"""

from repro.parallel.scheduler import (
    ENGINES,
    PartitionScheduler,
    register_engine,
    run_partitioned_pass,
    run_window_task,
)
from repro.parallel.stats import ParallelReport, WindowRecord
from repro.parallel.window_io import (
    CompactAig,
    WindowResult,
    WindowTask,
    extract_task,
    whole_network_window,
)

__all__ = [
    "ENGINES",
    "CompactAig",
    "ParallelReport",
    "PartitionScheduler",
    "WindowRecord",
    "WindowResult",
    "WindowTask",
    "extract_task",
    "register_engine",
    "run_partitioned_pass",
    "run_window_task",
    "whole_network_window",
]
