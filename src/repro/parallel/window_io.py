"""Picklable window transport for process-parallel partition execution.

The partition engines (Sections III and IV of the paper) optimize bounded
windows that are *independent* of each other — the property the parallel
scheduler exploits.  A worker process cannot share the parent :class:`Aig`,
so a window crosses the process boundary as a :class:`CompactAig`: the
extracted standalone sub-network (leaves → PIs, roots → POs) flattened into
plain integers and tuples.  No back-references to the parent network, no
strash table, no fanout lists — ``pickle`` cost is linear in the window
size and independent of the parent design.

Local numbering convention (the AIGER convention, locally renumbered):

* node ``0`` is constant FALSE,
* nodes ``1 .. num_pis`` are the window leaves, in window-leaf order,
* nodes ``num_pis + 1 ..`` are the AND gates, in topological order,
* an edge is a literal ``2 * node + complement``.

Decoding with :meth:`CompactAig.to_aig` rebuilds the *identical* sub-AIG
(same node ids, same strash state) on both sides of the process boundary,
which is what makes the scheduler's results independent of where a window
is executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.aig.aig import Aig, lit_node
from repro.partition.partitioner import Window, extract_window_aig


@dataclass
class CompactAig:
    """A standalone sub-AIG flattened to plain ints — cheap to pickle."""

    num_pis: int
    #: fanin literal pairs of the AND gates, topological, local numbering
    gates: List[Tuple[int, int]]
    #: output literals, local numbering, one per window root
    outputs: List[int]
    name: str = "win"

    @property
    def num_ands(self) -> int:
        """Number of AND gates in the encoding."""
        return len(self.gates)

    @classmethod
    def from_aig(cls, aig: Aig) -> "CompactAig":
        """Flatten *aig* (unreachable nodes dropped, live nodes renumbered).

        Gates are emitted in id order when that order is topological (true
        for freshly built or cleaned networks, and for everything
        :meth:`to_aig` produces) — the renumbering is then monotonic, which
        keeps fanin pairs in strash-canonical order and makes
        encode → decode → encode byte-stable.  In-place edited networks,
        where ``replace`` may have broken id order, fall back to a DFS
        topological order.
        """
        topo = aig.topological_order()
        reach = set(topo)
        local: Dict[int, int] = {0: 0}
        for i, pi in enumerate(aig.pis()):
            local[pi] = i + 1
        order = [n for n in aig.ands() if n in reach]
        if not cls._id_order_is_topological(aig, order, local):
            order = topo
        gates: List[Tuple[int, int]] = []
        next_id = aig.num_pis + 1
        for n in order:
            f0, f1 = aig.fanins(n)
            a = 2 * local[lit_node(f0)] + (f0 & 1)
            b = 2 * local[lit_node(f1)] + (f1 & 1)
            gates.append((a, b) if a <= b else (b, a))
            local[n] = next_id
            next_id += 1
        outputs = [2 * local[lit_node(po)] + (po & 1) for po in aig.pos()]
        return cls(num_pis=aig.num_pis, gates=gates, outputs=outputs,
                   name=aig.name)

    @staticmethod
    def _id_order_is_topological(aig: Aig, order: List[int],
                                 local: Dict[int, int]) -> bool:
        """True when every gate's fanins precede it in *order* (id order)."""
        for n in order:
            for f in aig.fanins(n):
                fn = lit_node(f)
                if fn not in local and fn >= n:
                    return False
        return True

    def to_aig(self) -> Aig:
        """Rebuild the sub-AIG; inverse of :meth:`from_aig`."""
        aig = Aig(self.name)
        # literal computing each local node (index = local node id)
        lits: List[int] = [0]
        lits.extend(aig.add_pis(self.num_pis, "w"))
        for f0, f1 in self.gates:
            a = lits[f0 >> 1] ^ (f0 & 1)
            b = lits[f1 >> 1] ^ (f1 & 1)
            lits.append(aig.add_and(a, b))
        for i, out in enumerate(self.outputs):
            aig.add_po(lits[out >> 1] ^ (out & 1), f"r{i}")
        return aig


@dataclass
class WindowTask:
    """One unit of work shipped to a worker process."""

    index: int          #: position in the partition order (merge key)
    compact: CompactAig
    #: internal node count at extraction time (telemetry / guards)
    size: int = 0


@dataclass
class WindowResult:
    """What a worker sends back for one window."""

    index: int
    changed: bool = False
    optimized: Optional[CompactAig] = None
    #: engine-specific counters (plain numbers / small values only)
    payload: Dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    #: None on success; otherwise why the window fell back to its original
    #: logic (``worker-error:*``, ``timeout``, ``worker-crashed``, ...)
    fallback: Optional[str] = None


def extract_task(aig: Aig, window: Window, index: int) -> WindowTask:
    """Extract *window* from *aig* into a self-contained :class:`WindowTask`."""
    sub, _mapping, _root_to_po = extract_window_aig(aig, window)
    return WindowTask(index=index, compact=CompactAig.from_aig(sub),
                      size=window.size)


def whole_network_window(aig: Aig) -> Window:
    """A :class:`Window` spanning all of *aig* (leaves = PIs, roots = POs).

    Workers use this to run the existing per-partition engine code on an
    extracted sub-AIG: the sub-network's primary inputs play the window-leaf
    role and its outputs the window-root role.
    """
    roots: List[int] = []
    seen = set()
    for po in aig.pos():
        n = lit_node(po)
        if aig.is_and(n) and n not in seen:
            seen.add(n)
            roots.append(n)
    return Window(nodes=aig.topological_order(), leaves=aig.pis(),
                  roots=roots)
