"""One process pool shared by many flows: the campaign execution substrate.

Historically every :class:`~repro.parallel.scheduler.PartitionScheduler`
pass built (and tore down) its own ``ProcessPoolExecutor`` — fine for one
flow, wasteful for a campaign that runs dozens of flows back to back: each
pass re-pays worker startup, and a pass with fewer windows than workers
leaves the spare slots idle while *other* flows have windows queued.

A :class:`SharedProcessPool` is that executor lifted to campaign scope:

* **one pool, many schedulers** — every flow's partition passes submit
  into the same executor, so worker processes are started once per
  campaign instead of once per pass;
* **work stealing across benchmarks** — submissions carry the submitting
  job's label (bound per thread via :meth:`bind`); whenever a window is
  submitted while another job also has windows in flight, the pool slots
  are being contended and the submission is counted as *stolen* — idle
  capacity left by one benchmark's serial stages is absorbed by another
  benchmark's windows;
* **crash recovery by generation** — a worker crash breaks the executor
  for every scheduler using it.  Each scheduler notes the pool
  *generation* before submitting and asks for a rebuild of exactly that
  generation on failure; the first request wins, later ones see the fresh
  executor already in place.  Per-scheduler retry budgets
  (``max_pool_restarts``) are unchanged.

Determinism: the pool changes only *where* a window executes, never what
it computes or the order results are merged (the scheduler still merges
in partition order), so flows keep producing bit-identical networks with
or without a shared pool — the property the campaign result cache relies
on (see :mod:`repro.campaign.cache`).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Dict, Optional


def _default_mp_context():
    """Prefer ``fork``: cheap worker startup, no re-import per task."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return multiprocessing.get_context()


class SharedProcessPool:
    """A thread-safe, rebuildable ``ProcessPoolExecutor`` for many flows.

    Parameters
    ----------
    workers:
        Worker process count; ``None``/``0`` means ``os.cpu_count()``.

    The pool is created eagerly (and its workers pre-spawned) so that, in
    the common campaign setup, every ``fork`` happens from the main thread
    before any job threads exist.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers if workers and workers > 0 \
            else (os.cpu_count() or 1)
        self._mp_context = _default_mp_context()
        self._lock = threading.Lock()
        self._generation = 0
        self._closed = False
        self.rebuilds = 0
        self._label = threading.local()
        self._inflight: Dict[str, int] = {}
        #: windows submitted per job label (telemetry)
        self.submitted: Dict[str, int] = {}
        #: windows submitted while another job had windows in flight
        self.stolen: Dict[str, int] = {}
        self._executor = self._new_executor()
        # Pre-spawn the worker processes from the constructing thread.
        for _ in range(self.workers):
            self._executor.submit(int)

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=self._mp_context)

    # -- job binding ----------------------------------------------------------

    def bind(self, label: str) -> None:
        """Tag every submission from *this thread* with the job *label*."""
        self._label.value = label

    def _current_label(self) -> str:
        return getattr(self._label, "value", "")

    # -- executor access ------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic executor generation; bumps on every rebuild."""
        return self._generation

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Submit one task under the thread's bound job label.

        Raises whatever the underlying executor raises (notably
        ``BrokenProcessPool`` after a worker crash) — callers handle that
        exactly as they would with a private pool, then call
        :meth:`rebuild`.
        """
        label = self._current_label()
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedProcessPool is shut down")
            others_active = any(count > 0 for job, count
                                in self._inflight.items() if job != label)
            future = self._executor.submit(fn, *args)
            self.submitted[label] = self.submitted.get(label, 0) + 1
            if others_active:
                self.stolen[label] = self.stolen.get(label, 0) + 1
            self._inflight[label] = self._inflight.get(label, 0) + 1
        future.add_done_callback(lambda _f: self._settle(label))
        return future

    def _settle(self, label: str) -> None:
        with self._lock:
            remaining = self._inflight.get(label, 0) - 1
            if remaining > 0:
                self._inflight[label] = remaining
            else:
                self._inflight.pop(label, None)

    def rebuild(self, generation: int) -> int:
        """Replace the executor *iff* it is still the broken *generation*.

        Concurrent schedulers observing the same crash all call in; only
        the first swap happens, the rest return the already-current
        generation.  Returns the generation now in effect.
        """
        stale = None
        with self._lock:
            if not self._closed and generation == self._generation:
                stale = self._executor
                self._executor = self._new_executor()
                self._generation += 1
                self.rebuilds += 1
            current = self._generation
        if stale is not None:
            stale.shutdown(wait=False, cancel_futures=True)
        return current

    # -- telemetry ------------------------------------------------------------

    def stolen_windows(self, label: str) -> int:
        """Stolen-submission count for one job label."""
        return self.stolen.get(label, 0)

    @property
    def total_stolen(self) -> int:
        """Stolen-submission count across all labels."""
        return sum(self.stolen.values())

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop accepting work and release the worker processes."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
        executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "SharedProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
