"""Stage wall-clock budgets with a graceful degradation ladder.

The paper's engines are individually *bounded* (BDD node caps, partition
windows, gradient cost budgets), but the flow that strings them together
had no time discipline: one pathological stage could stall an entire EPFL
run.  Following DAG-aware synthesis orchestration (Li et al.), the
*orchestrator* owns the budget policy: a :class:`DeadlineManager` splits a
flow-level wall-clock budget (``FlowConfig.flow_timeout_s``, CLI
``--timeout``) across the remaining stages and answers, before each stage,
at which rung of the degradation ladder it should run:

* :data:`FULL` — the configured effort,
* :data:`REDUCED` — cheaper knobs (fewer kernel thresholds, smaller MSPF
  partitions, halved budgets) chosen per stage by the flow,
* :data:`SKIP` — the stage does not run at all.

The policy is deliberately simple and deterministic given a clock: a stage
is *skipped* once the budget is exhausted, and *reduced* when the fraction
of budget spent runs ahead of the fraction of stages completed by more
than ``degrade_margin``.  Every downgrade is recorded (and surfaces in the
run report via :class:`repro.guard.stage_guard.GuardReport`), so a
degraded run is always distinguishable from a full-effort one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

#: Degradation-ladder rungs, in decreasing effort order.
FULL = 0
REDUCED = 1
SKIP = 2

LEVEL_NAMES = ("full", "reduced", "skip")


@dataclass
class StagePlan:
    """The budget verdict for one upcoming stage."""

    stage: str
    level: int                       #: FULL, REDUCED, or SKIP
    remaining_s: Optional[float]     #: budget left (None = unbounded)
    share_s: Optional[float]         #: fair share for this stage

    @property
    def level_name(self) -> str:
        """Human name of the ladder rung."""
        return LEVEL_NAMES[self.level]


class DeadlineManager:
    """Split one flow-level wall-clock budget across the remaining stages.

    Parameters
    ----------
    budget_s:
        Total wall-clock budget for every stage still to run; ``None``
        disables all time discipline (every plan is :data:`FULL`).
    total_stages:
        How many stages will ask for a plan.
    clock:
        Monotonic-time source; injectable for deterministic tests.
    degrade_margin:
        How far (as a fraction of the budget) time spent may run ahead of
        stages completed before stages degrade to :data:`REDUCED`.
    """

    def __init__(self, budget_s: Optional[float], total_stages: int,
                 clock: Callable[[], float] = time.monotonic,
                 degrade_margin: float = 0.15) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"budget_s must be positive, got {budget_s}")
        self.budget_s = budget_s
        self.total_stages = max(1, total_stages)
        self.degrade_margin = degrade_margin
        self._clock = clock
        self._start = clock()
        self._done = 0
        #: every non-FULL verdict, in planning order
        self.downgrades: List[StagePlan] = []

    # -- queries -------------------------------------------------------------

    def elapsed_s(self) -> float:
        """Wall-clock seconds since the manager was created."""
        return self._clock() - self._start

    def remaining_s(self) -> Optional[float]:
        """Budget left, or ``None`` when unbounded (never negative)."""
        if self.budget_s is None:
            return None
        return max(0.0, self.budget_s - self.elapsed_s())

    @property
    def stages_done(self) -> int:
        """Stages planned so far (skipped stages count as done)."""
        return self._done

    # -- policy --------------------------------------------------------------

    def plan(self, stage: str) -> StagePlan:
        """Decide the degradation level for the next stage.

        Call exactly once per stage, in execution order; the verdict also
        advances the internal progress counter via :meth:`finish`.
        """
        if self.budget_s is None:
            return StagePlan(stage, FULL, None, None)
        remaining = self.remaining_s()
        stages_left = max(1, self.total_stages - self._done)
        share = remaining / stages_left
        if remaining <= 0.0:
            verdict = StagePlan(stage, SKIP, remaining, share)
        else:
            time_frac = self.elapsed_s() / self.budget_s
            work_frac = self._done / self.total_stages
            level = REDUCED if time_frac - work_frac > self.degrade_margin \
                else FULL
            verdict = StagePlan(stage, level, remaining, share)
        if verdict.level != FULL:
            self.downgrades.append(verdict)
        return verdict

    def finish(self, stage: str) -> None:
        """Mark one planned stage as completed (or skipped)."""
        self._done += 1

    # -- reporting -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary for the run report."""
        return {
            "budget_s": self.budget_s,
            "elapsed_s": self.elapsed_s(),
            "total_stages": self.total_stages,
            "stages_done": self._done,
            "downgrades": [
                {"stage": p.stage, "level": p.level_name,
                 "remaining_s": p.remaining_s}
                for p in self.downgrades
            ],
        }
