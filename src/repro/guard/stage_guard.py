"""Per-stage equivalence guard with rollback (``repro.guard.stage_guard``).

Replaces the flow's old all-or-nothing ``verify_each_step`` assert with a
two-rung ladder run after every stage, following Simulation-Guided Boolean
Resubstitution (Lee et al.): random simulation is a cheap first-line
correctness signal, SAT the expensive proof behind it.

1. **Fast check** — 256 deterministic random input patterns (four 64-bit
   simulation words per PI) compared PO-by-PO against the last *verified*
   network; a miscompare yields the exact failing pattern immediately.
2. **SAT CEC** — only when the fast check passes, a full miter proof
   (:func:`repro.sat.equivalence.find_counterexample`, which itself
   front-loads random refutation).

A miscompare does not abort the run: the flow rolls the network back to
the guard's reference (the last verified snapshot), the counterexample —
input pattern plus first miscomparing PO — is attached to the run report,
and the flow continues with the next stage.  Verification is chained: the
reference advances after each verified stage, so transitively the final
network is equivalent to the original input.

:class:`GuardReport` collects everything the hardened execution layer did
— degradations, skips, rollbacks, checkpoints, injected faults, resume
cursor — and is what ``repro.obs`` report schema v2 embeds under the
``guard`` key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import hotpath
from repro.aig.aig import Aig
from repro.aig.simprogram import pack_rounds, sim_program, wide_mask
from repro.aig.simulate import WORD_MASK, po_words, simulate_words
from repro.sat.equivalence import Counterexample, find_counterexample

#: Default number of random patterns for the fast rung (multiple of 64).
DEFAULT_PATTERNS = 256


class StageGuard:
    """Equivalence ladder against the last verified network.

    Parameters
    ----------
    reference:
        The initial verified network — a standalone copy the guard owns;
        it must not be edited by the caller afterwards.
    patterns:
        Random patterns for the fast rung (rounded up to words of 64).
    seed:
        Seed of the fast rung's pattern generator; fixed so guard
        verdicts are reproducible run-to-run.
    """

    def __init__(self, reference: Aig, patterns: int = DEFAULT_PATTERNS,
                 seed: int = 0x5BAD) -> None:
        self.reference = reference
        self.patterns = max(64, patterns)
        self.seed = seed
        self.fast_checks = 0
        self.fast_rejects = 0
        self.sat_checks = 0

    def fast_check(self, candidate: Aig) -> Optional[Counterexample]:
        """Random-simulation miscompare check; None when all patterns agree."""
        self.fast_checks += 1
        rng = random.Random(self.seed)
        rounds = (self.patterns + 63) // 64
        if hotpath.enabled():
            # Wide hot path: all rounds in one pass per network.  Patterns
            # are drawn round-major (the reference RNG sequence) and the
            # scan below follows the reference loop's (round, po, bit)
            # order, so any counterexample is bit-identical.
            num_pis = self.reference.num_pis
            round_words = [[rng.getrandbits(64) for _ in range(num_pis)]
                           for _ in range(rounds)]
            packed = pack_rounds(round_words)
            mask = wide_mask(rounds)
            prog_a = sim_program(self.reference)
            prog_b = sim_program(candidate)
            wa = prog_a.po_words(prog_a.run(packed, mask), mask)
            wb = prog_b.po_words(prog_b.run(packed, mask), mask)
            for r in range(rounds):
                shift = 64 * r
                for po, (x, y) in enumerate(zip(wa, wb)):
                    diff = ((x >> shift) ^ (y >> shift)) & WORD_MASK
                    if diff:
                        bit = (diff & -diff).bit_length() - 1
                        inputs = [bool((w >> bit) & 1)
                                  for w in round_words[r]]
                        self.fast_rejects += 1
                        return Counterexample(inputs, po,
                                              self.reference.po_name(po))
            return None
        for _ in range(rounds):
            words = [rng.getrandbits(64)
                     for _ in range(self.reference.num_pis)]
            wa = po_words(self.reference,
                          simulate_words(self.reference, words))
            wb = po_words(candidate, simulate_words(candidate, words))
            for po, (x, y) in enumerate(zip(wa, wb)):
                diff = x ^ y
                if diff:
                    bit = (diff & -diff).bit_length() - 1
                    inputs = [bool((w >> bit) & 1) for w in words]
                    self.fast_rejects += 1
                    return Counterexample(inputs, po,
                                          self.reference.po_name(po))
        return None

    def check(self, candidate: Aig) -> Optional[Counterexample]:
        """Run the full ladder; a counterexample means "roll back"."""
        cex = self.fast_check(candidate)
        if cex is not None:
            return cex
        self.sat_checks += 1
        return find_counterexample(self.reference, candidate)

    def commit(self, verified: Aig) -> None:
        """Advance the reference to a fresh snapshot of *verified*."""
        self.reference = verified.cleanup()

    def rollback_copy(self) -> Aig:
        """A fresh editable copy of the last verified network."""
        return self.reference.cleanup()


@dataclass
class GuardEvent:
    """One thing the hardened execution layer did."""

    kind: str            #: degraded | skipped | rolled_back | checkpoint |
                         #: fault | resume | interrupted
    stage: str           #: flow stage name ("" for flow-level events)
    iteration: int = 0
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "stage": self.stage,
                "iteration": self.iteration, "detail": dict(self.detail)}


@dataclass
class GuardReport:
    """Everything ``repro.guard`` did during one flow run."""

    budget_s: Optional[float] = None
    chaos_seed: Optional[int] = None
    resumed_from: Optional[int] = None   #: global stage cursor, when resumed
    events: List[GuardEvent] = field(default_factory=list)
    #: injected faults, ``(site, kind)`` in draw order
    faults: List[Any] = field(default_factory=list)

    def add(self, kind: str, stage: str, iteration: int = 0,
            **detail: Any) -> GuardEvent:
        """Append and return a new event."""
        event = GuardEvent(kind=kind, stage=stage, iteration=iteration,
                           detail=detail)
        self.events.append(event)
        return event

    def count(self, kind: str) -> int:
        """Number of recorded events of *kind*."""
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def rollbacks(self) -> int:
        """Stages rolled back by the equivalence guard."""
        return self.count("rolled_back")

    @property
    def degradations(self) -> int:
        """Stages run at reduced effort."""
        return self.count("degraded")

    @property
    def skips(self) -> int:
        """Stages skipped outright by the deadline manager."""
        return self.count("skipped")

    @property
    def checkpoints(self) -> int:
        """Checkpoints committed."""
        return self.count("checkpoint")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (report schema v2, ``guard`` entries)."""
        return {
            "budget_s": self.budget_s,
            "chaos_seed": self.chaos_seed,
            "resumed_from": self.resumed_from,
            "rollbacks": self.rollbacks,
            "degradations": self.degradations,
            "skips": self.skips,
            "checkpoints": self.checkpoints,
            "faults": [{"site": site, "kind": kind}
                       for site, kind in self.faults],
            "events": [e.to_dict() for e in self.events],
        }
