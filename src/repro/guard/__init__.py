"""Hardened flow execution: budgets, equivalence guard, checkpoints, chaos.

The paper's whole pitch is *bounded* Boolean methods — BDD size caps, MSPF
memory bailouts, partition windows.  ``repro.guard`` extends that
philosophy from the engines to the orchestrator, so a production run
degrades gracefully, never corrupts, and always resumes:

* :mod:`repro.guard.budget` — :class:`DeadlineManager` gives every stage a
  share of a flow-level wall-clock budget and a degradation ladder
  (full → reduced → skip) instead of a hang or a hard kill,
* :mod:`repro.guard.stage_guard` — :class:`StageGuard` verifies every
  stage with a 256-pattern random-simulation fast check then SAT CEC, and
  rolls back to the last verified network on miscompare,
* :mod:`repro.guard.checkpoint` — atomic write-then-rename AIGER + state
  snapshots after each verified stage; ``sbm_flow(..., resume_from=dir)``
  continues a ``kill -9``'d run from the last good network,
* :mod:`repro.guard.chaos` — :class:`FaultPlan`, a seeded deterministic
  fault-injection harness (worker crashes, window timeouts, corrupt
  results, forced BDD bailouts) threaded through the partition scheduler
  and the stage runner.

The flow (:func:`repro.sbm.flow.sbm_flow`) drives all four through
``FlowConfig`` (``flow_timeout_s``, ``verify_each_step``,
``checkpoint_dir``, ``chaos``); what happened lands in
:class:`~repro.guard.stage_guard.GuardReport`, embedded in the
``repro.obs`` run report (schema v2, ``guard`` key).
"""

from repro.guard.budget import (
    FULL,
    REDUCED,
    SKIP,
    DeadlineManager,
    StagePlan,
)
from repro.guard.chaos import (
    FAULT_KINDS,
    ChaosInterrupt,
    FaultPlan,
    corrupt_window_result,
    in_worker_process,
)
from repro.guard.checkpoint import (
    CheckpointState,
    CheckpointStore,
    ResumePoint,
    atomic_write_text,
    load_checkpoint,
)
from repro.guard.stage_guard import (
    DEFAULT_PATTERNS,
    GuardEvent,
    GuardReport,
    StageGuard,
)

__all__ = [
    "CheckpointState",
    "CheckpointStore",
    "ChaosInterrupt",
    "DEFAULT_PATTERNS",
    "DeadlineManager",
    "FAULT_KINDS",
    "FULL",
    "FaultPlan",
    "GuardEvent",
    "GuardReport",
    "REDUCED",
    "ResumePoint",
    "SKIP",
    "StageGuard",
    "StagePlan",
    "atomic_write_text",
    "corrupt_window_result",
    "in_worker_process",
    "load_checkpoint",
]
