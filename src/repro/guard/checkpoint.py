"""Crash-safe checkpoint/resume for the SBM flow.

After every verified stage the flow snapshots its complete state into a
checkpoint directory: the current network and the best-so-far network,
plus a JSON state record (stage cursor, depth limit, stage records,
consumed runtime).  Every file is written **write-then-rename** (temp
file, flush, ``os.fsync``, ``os.replace``), and ``state.json`` is written
*last* — it is the commit point, so a ``kill -9`` at any instant leaves
either the previous consistent checkpoint or the new one, never a torn
mix.

Networks are stored in two forms: the :class:`~repro.parallel.window_io
.CompactAig` JSON encoding (``network.json``/``best.json``) — the form
resume actually loads, because it round-trips the graph *node-for-node*
(the AIGER writer renumbers nodes, which would nudge the order-sensitive
engines onto a different optimization path) — and ASCII AIGER exports
(``network.aag``/``best.aag``) for interoperability with external tools.

Resuming (``sbm_flow(..., resume_from=dir)``, CLI ``--resume``) loads the
latest committed checkpoint, restores the networks and stage records, and
skips every stage whose global index is below the stored cursor.  Because
all stages are deterministic functions of the network and configuration,
an interrupted-then-resumed run produces the same final network as an
uninterrupted one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.aig.aig import Aig
from repro.aig.io_aiger import write_aag_string
from repro.errors import CheckpointError

SCHEMA_NAME = "repro.guard/checkpoint"
SCHEMA_VERSION = 1

STATE_FILE = "state.json"
NETWORK_FILE = "network.json"
BEST_FILE = "best.json"
NETWORK_EXPORT = "network.aag"
BEST_EXPORT = "best.aag"


def _encode_network(aig: Aig) -> str:
    """Structure-preserving JSON encoding of *aig* (CompactAig layout)."""
    from repro.parallel.window_io import CompactAig
    compact = CompactAig.from_aig(aig)
    return json.dumps({"num_pis": compact.num_pis,
                       "gates": [list(gate) for gate in compact.gates],
                       "outputs": list(compact.outputs),
                       "name": compact.name}) + "\n"


def _decode_network(text: str) -> Aig:
    """Rebuild a network encoded by :func:`_encode_network`."""
    from repro.parallel.window_io import CompactAig
    data = json.loads(text)
    compact = CompactAig(num_pis=int(data["num_pis"]),
                         gates=[tuple(gate) for gate in data["gates"]],
                         outputs=list(data["outputs"]),
                         name=str(data.get("name", "")))
    return compact.to_aig()


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* via temp-file + fsync + atomic rename."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class CheckpointState:
    """The JSON-serializable part of one checkpoint."""

    next_index: int                 #: global index of the next stage to run
    iteration: int                  #: iteration the checkpointed stage was in
    stage: str                      #: name of the last completed stage
    total_stages: int               #: stage count of the producing config
    design: str
    num_pis: int
    num_pos: int
    depth_limit: Optional[int] = None
    runtime_s: float = 0.0          #: flow runtime consumed before the save
    records: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "next_index": self.next_index,
            "iteration": self.iteration,
            "stage": self.stage,
            "total_stages": self.total_stages,
            "design": self.design,
            "num_pis": self.num_pis,
            "num_pos": self.num_pos,
            "depth_limit": self.depth_limit,
            "runtime_s": self.runtime_s,
            "records": self.records,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckpointState":
        if data.get("schema") != SCHEMA_NAME:
            raise CheckpointError(
                f"not a flow checkpoint: schema={data.get('schema')!r}")
        if data.get("version") != SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {data.get('version')!r}")
        try:
            return cls(next_index=int(data["next_index"]),
                       iteration=int(data["iteration"]),
                       stage=str(data["stage"]),
                       total_stages=int(data["total_stages"]),
                       design=str(data["design"]),
                       num_pis=int(data["num_pis"]),
                       num_pos=int(data["num_pos"]),
                       depth_limit=data.get("depth_limit"),
                       runtime_s=float(data.get("runtime_s", 0.0)),
                       records=list(data.get("records", [])))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint state: {exc}") from exc


@dataclass
class ResumePoint:
    """A loaded checkpoint: state plus the two snapshotted networks."""

    state: CheckpointState
    network: Aig
    best: Aig


class CheckpointStore:
    """One checkpoint directory, overwritten atomically on every save."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.saves = 0

    def save(self, state: CheckpointState, network: Aig, best: Aig) -> None:
        """Persist one checkpoint; ``state.json`` lands last (commit point)."""
        atomic_write_text(os.path.join(self.directory, NETWORK_FILE),
                          _encode_network(network))
        atomic_write_text(os.path.join(self.directory, BEST_FILE),
                          _encode_network(best))
        atomic_write_text(os.path.join(self.directory, NETWORK_EXPORT),
                          write_aag_string(network))
        atomic_write_text(os.path.join(self.directory, BEST_EXPORT),
                          write_aag_string(best))
        atomic_write_text(os.path.join(self.directory, STATE_FILE),
                          json.dumps(state.to_dict(), indent=2,
                                     sort_keys=True) + "\n")
        self.saves += 1

    def load(self) -> Optional[ResumePoint]:
        """The committed checkpoint, or ``None`` when none exists yet."""
        return load_checkpoint(self.directory, missing_ok=True)


def load_checkpoint(directory: str,
                    missing_ok: bool = False) -> Optional[ResumePoint]:
    """Load the checkpoint committed in *directory*.

    Raises :class:`CheckpointError` when the directory holds no committed
    ``state.json`` (unless *missing_ok*) or when any file is unreadable.
    """
    state_path = os.path.join(directory, STATE_FILE)
    if not os.path.exists(state_path):
        if missing_ok:
            return None
        raise CheckpointError(f"no checkpoint committed in {directory!r} "
                              f"({STATE_FILE} missing)")
    try:
        with open(state_path, "r", encoding="utf-8") as handle:
            state = CheckpointState.from_dict(json.load(handle))
        with open(os.path.join(directory, NETWORK_FILE), "r",
                  encoding="utf-8") as handle:
            network = _decode_network(handle.read())
        with open(os.path.join(directory, BEST_FILE), "r",
                  encoding="utf-8") as handle:
            best = _decode_network(handle.read())
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"cannot load checkpoint from {directory!r}: {exc}") from exc
    network.name = state.design
    best.name = state.design
    if network.num_pis != state.num_pis or network.num_pos != state.num_pos:
        raise CheckpointError(
            f"checkpoint network interface ({network.num_pis} PIs / "
            f"{network.num_pos} POs) does not match its state record "
            f"({state.num_pis} PIs / {state.num_pos} POs)")
    return ResumePoint(state=state, network=network, best=best)
