"""Deterministic fault injection for the hardened flow (``repro.guard.chaos``).

A :class:`FaultPlan` is a *pure function from site name to fault*: each
injection site (one partition window of one stage, or one stage boundary)
hashes ``(seed, site)`` into a uniform draw, so the same seed injects the
same faults at the same sites on every run, regardless of scheduling or
process timing.  That is what lets the chaos CI job assert exact outcomes
("this window crashed its worker, that stage produced a non-equivalent
result, and the flow still converged") and what makes
interrupt-then-resume runs comparable against uninterrupted ones.

Fault kinds (``FAULT_KINDS``):

* ``worker-crash`` — the worker process hard-exits (``os._exit``),
  breaking the process pool; inline execution converts it to a fallback.
* ``window-timeout`` — the worker sleeps past the window budget so the
  parent's per-window timeout fires; inline execution falls back directly.
* ``corrupt-result`` — the window result is made *non-equivalent* (its
  first output is complemented) while keeping its size, so it passes the
  scheduler's structural guards and must be caught by the stage-level
  equivalence guard.
* ``bdd-limit`` — a forced :class:`repro.errors.BddLimitError` inside the
  worker, exercising the engines' bailout isolation path.

Window-level faults are **one-shot transient faults**: the scheduler
evaluates the plan in the parent before submission (so injected faults are
known and reported even when the worker dies) and a window retried after a
pool crash runs clean.  Stage-level corruption (``draw_stage``) flips a PO
of the stage result and therefore requires the equivalence guard
(``FlowConfig.verify_each_step=True``) to keep the final network correct —
chaos runs without the guard are intentionally allowed to produce wrong
answers, that is the point of the exercise.

``interrupt_after=K`` additionally raises :class:`ChaosInterrupt` right
after the checkpoint of global stage *K* — a deterministic stand-in for
``kill -9`` used by the resume-after-interrupt CI check.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Every injectable window-level fault kind, in draw order.
FAULT_KINDS = ("worker-crash", "window-timeout", "corrupt-result",
               "bdd-limit")


class ChaosInterrupt(ReproError):
    """Deterministic mid-flow interrupt (the fault plan's ``kill -9``)."""

    def __init__(self, stage_index: int, checkpoint_dir: Optional[str]):
        super().__init__(
            f"chaos interrupt after stage index {stage_index} "
            f"(checkpoint_dir={checkpoint_dir!r})")
        self.stage_index = stage_index
        self.checkpoint_dir = checkpoint_dir


def in_worker_process() -> bool:
    """True when running inside a multiprocessing worker process."""
    return multiprocessing.current_process().name != "MainProcess"


def _unit(seed: int, site: str) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, site).

    Uses SHA-256 rather than ``hash()`` so draws are stable across
    processes and interpreter invocations (``PYTHONHASHSEED`` immune).
    """
    digest = hashlib.sha256(f"{seed}|{site}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A seeded, deterministic schedule of faults keyed by site name.

    Parameters
    ----------
    seed:
        Drives every draw; two plans with the same seed and parameters
        inject identical faults.
    rate:
        Probability that any given *window* site receives a fault.
    kinds:
        The fault kinds drawn at window sites (uniformly among these).
    stage_corrupt_rate:
        Probability that a *stage* site has its result corrupted (PO 0
        complemented) after the stage runs; 0 by default.
    forced:
        Exact overrides, ``{site: kind}`` — used by tests and the soak
        script to place e.g. exactly one corrupt window.
    interrupt_after:
        Global stage index after whose checkpoint the flow raises
        :class:`ChaosInterrupt`; ``None`` disables.

    The plan records every fault it hands out in :attr:`injected`
    (``(site, kind)`` in draw order); the flow copies that log into the
    run report, so an injected fault is visible even when the worker it
    hit never reported back.  Plans are picklable, but draws are only
    ever made in the parent process.
    """

    def __init__(self, seed: int, rate: float = 0.05,
                 kinds: Sequence[str] = FAULT_KINDS,
                 stage_corrupt_rate: float = 0.0,
                 forced: Optional[Dict[str, str]] = None,
                 interrupt_after: Optional[int] = None) -> None:
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        for kind in (forced or {}).values():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown forced fault kind {kind!r}")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.stage_corrupt_rate = stage_corrupt_rate
        self.forced = dict(forced or {})
        self.interrupt_after = interrupt_after
        self.injected: List[Tuple[str, str]] = []

    # -- draws ---------------------------------------------------------------

    def draw(self, site: str) -> Optional[str]:
        """Fault kind for a window *site*, or ``None`` (recorded if any)."""
        kind = self.forced.get(site)
        if kind is None and self.kinds and _unit(self.seed, site) < self.rate:
            pick = _unit(self.seed, site + "#kind")
            kind = self.kinds[min(len(self.kinds) - 1,
                                  int(pick * len(self.kinds)))]
        if kind is not None:
            self.injected.append((site, kind))
        return kind

    def draw_stage(self, site: str) -> Optional[str]:
        """``corrupt-result`` for a stage *site*, or ``None`` (recorded)."""
        kind = self.forced.get(site)
        if kind is None and _unit(self.seed, site) < self.stage_corrupt_rate:
            kind = "corrupt-result"
        if kind is not None:
            self.injected.append((site, kind))
        return kind

    def should_interrupt(self, stage_index: int) -> bool:
        """True when the flow must raise :class:`ChaosInterrupt` here."""
        return self.interrupt_after is not None \
            and stage_index == self.interrupt_after

    # -- reporting -----------------------------------------------------------

    def injected_since(self, mark: int) -> List[Tuple[str, str]]:
        """Faults handed out after :attr:`injected` had *mark* entries."""
        return list(self.injected[mark:])

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rate={self.rate}, "
                f"kinds={self.kinds}, forced={len(self.forced)}, "
                f"interrupt_after={self.interrupt_after})")


def corrupt_window_result(task, result):
    """Make a window result non-equivalent while keeping its size.

    Takes the worker's genuine result (or the window's original logic when
    the engine left it unchanged) and complements its first output — the
    scheduler's size guards still pass, splicing succeeds, and only a
    functional check can notice.  Returns a new
    :class:`~repro.parallel.window_io.WindowResult`.
    """
    from repro.parallel.window_io import CompactAig, WindowResult
    base = result.optimized if (result.changed and result.optimized
                                is not None) else task.compact
    outputs = list(base.outputs)
    outputs[0] ^= 1
    corrupted = CompactAig(num_pis=base.num_pis, gates=list(base.gates),
                           outputs=outputs, name=base.name)
    payload = dict(result.payload)
    payload["chaos"] = "corrupt-result"
    return WindowResult(index=result.index, changed=True,
                        optimized=corrupted, payload=payload,
                        wall_s=result.wall_s)
