"""Campaign suite files: a TOML description of (benchmark × config) jobs.

A suite file keeps nightly/CI campaign definitions in the repo instead of
in shell scripts::

    name = "epfl-quick"

    [defaults]            # applied to every job, overridable per job
    iterations = 1
    scaled = true

    [[jobs]]
    benchmark = "router"

    [[jobs]]
    benchmark = "i2c"
    iterations = 2        # per-job override
    name = "i2c-deep"     # optional label (default: benchmark[@k])

Per-job (and ``[defaults]``) keys are the *semantic* scalar knobs of
:class:`~repro.sbm.config.FlowConfig` — the fields that enter the cache
key — plus ``scaled``/``name``/``benchmark``.  Execution-side knobs
(worker count, cache directory) come from the CLI, never from the suite:
the same suite file must produce the same cache keys everywhere.

A job may also carry a ``tier`` marker (e.g. ``tier = "nightly-large"``
on the big arithmetic benchmarks).  Tiered jobs are **excluded** from
:func:`load_suite` by default and only included when the caller opts in
(``load_suite(path, tiers=["nightly-large"])`` — CLI ``--tier``), so the
quick CI campaign and the full nightly one share a single suite file.
"""

from __future__ import annotations

import os
import tomllib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.runner import CampaignJob
from repro.sbm.config import FlowConfig, OrchestrateConfig

#: suite keys forwarded verbatim into ``FlowConfig(...)``
_CONFIG_KEYS = ("iterations", "max_depth_growth", "enable_simresub",
                "enable_sat_sweep", "enable_redundancy_removal",
                "verify_each_step")
#: suite keys with bespoke handling (still semantic — they enter the key)
_SPECIAL_KEYS = ("orchestrate_k",)
_JOB_KEYS = _CONFIG_KEYS + _SPECIAL_KEYS + ("benchmark", "name", "scaled",
                                            "tier")


def _build_config(entry: Dict[str, Any], defaults: Dict[str, Any]
                  ) -> FlowConfig:
    kwargs: Dict[str, Any] = {}
    for key in _CONFIG_KEYS:
        if key in entry:
            kwargs[key] = entry[key]
        elif key in defaults:
            kwargs[key] = defaults[key]
    orchestrate_k = entry.get("orchestrate_k",
                              defaults.get("orchestrate_k"))
    if orchestrate_k is not None:
        if not isinstance(orchestrate_k, int) or orchestrate_k < 1:
            raise ValueError(
                f"orchestrate_k must be a positive integer, "
                f"got {orchestrate_k!r}")
        kwargs["orchestrate"] = OrchestrateConfig(k=orchestrate_k)
    return FlowConfig(**kwargs)


def load_suite(path: str, tiers: Optional[Sequence[str]] = None
               ) -> Tuple[str, List[CampaignJob]]:
    """Parse a suite TOML file into ``(suite_name, jobs)``.

    Untiered jobs are always included; a job with a ``tier`` marker is
    included only when that tier appears in *tiers*.
    """
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    name = data.get("name") or os.path.splitext(os.path.basename(path))[0]
    defaults = data.get("defaults", {})
    for key in defaults:
        if (key not in _CONFIG_KEYS and key not in _SPECIAL_KEYS
                and key != "scaled"):
            raise ValueError(f"{path}: unknown [defaults] key {key!r}")
    entries = data.get("jobs")
    if not entries:
        raise ValueError(f"{path}: no [[jobs]] entries")
    wanted_tiers = set(tiers or ())
    jobs: List[CampaignJob] = []
    seen: Dict[str, int] = {}
    for entry in entries:
        for key in entry:
            if key not in _JOB_KEYS:
                raise ValueError(f"{path}: unknown job key {key!r}")
        tier = entry.get("tier")
        if tier is not None and not isinstance(tier, str):
            raise ValueError(f"{path}: job tier must be a string")
        if tier is not None and tier not in wanted_tiers:
            continue
        benchmark = entry.get("benchmark")
        if not benchmark:
            raise ValueError(f"{path}: job without a benchmark")
        label = entry.get("name") or benchmark
        if label in seen:
            seen[label] += 1
            label = f"{label}@{seen[label]}"
        else:
            seen[label] = 0
        jobs.append(CampaignJob(
            name=label,
            benchmark=benchmark,
            config=_build_config(entry, defaults),
            scaled=bool(entry.get("scaled", defaults.get("scaled", True)))))
    return str(name), jobs


def jobs_from_benchmarks(benchmarks: Sequence[str],
                         config: Optional[FlowConfig] = None,
                         scaled: bool = True) -> List[CampaignJob]:
    """Ad-hoc job list: one job per benchmark name, one shared config."""
    config = config or FlowConfig()
    return [CampaignJob(name=name, benchmark=name, config=config,
                        scaled=scaled)
            for name in benchmarks]
