"""Persistent content-addressed result cache for campaign runs.

A campaign re-runs the same (benchmark, flow configuration) pairs over and
over — across CI pushes, nightly sweeps, and local experiment iterations —
and the flow is deterministic, so most of that work is recomputation.  The
cache keys each job by **content**, never by name:

    key = SHA-256( canonical network JSON
                 + canonical semantic FlowConfig
                 + code-version salt )

* The network is serialized through the :class:`~repro.parallel.window_io
  .CompactAig` layout (the same byte-stable encoding the checkpoint layer
  uses), so two structurally identical AIGs share a key regardless of how
  they were produced.
* The config canonicalization (:func:`canonical_flow_config`) allowlists
  only fields that change the *result*.  Execution-side knobs — ``jobs``,
  ``checkpoint_dir``, ``pool`` — are excluded: the parallel contract
  guarantees bit-identical results for every ``jobs`` value, so a serial
  cold run and a 8-way warm run share entries.
* :data:`repro.hotpath.CODE_VERSION` is salted in so bumping the engine
  version invalidates every stale entry at once (partial invalidation:
  entries under other salts stay untouched on disk and simply stop
  matching).

Runs that are **not** pure functions of (network, config) are uncacheable
and must bypass the cache entirely: chaos fault injection and wall-clock
budgets (``flow_timeout_s`` / ``window_timeout_s``) make the result depend
on timing or the fault plan.  :func:`flow_cache_key` returns ``None`` for
those, and the campaign runner reports them under ``uncached``.

Entries are committed with the checkpoint layer's temp + fsync + rename
discipline, so a crash mid-write can never leave a half entry that later
reads as a hit; a corrupt or truncated entry (killed writer on a non-atomic
filesystem, manual tampering) is detected, counted, unlinked, and treated
as a miss — never an exception.

Two cache **slots** share one :class:`ResultCache` root:

``flow``
    whole-flow results keyed by :func:`flow_cache_key` — the original
    (PR-5) namespace, stored at ``<root>/<key[:2]>/<key>.json`` so every
    pre-existing entry stays valid;
``stage``
    per-stage results keyed by :func:`stage_cache_key` over
    (network fingerprint, stage name, semantic stage config) — the memo
    layer behind the ``repro.orchestrate`` pass-ordering search, stored
    under ``<root>/stage/``.  Hit/miss/store counters are tracked per
    slot (:meth:`ResultCache.slot_stats`), so flow-level and stage-level
    memo effectiveness are observable independently in the campaign
    section of run-report v3.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from repro import hotpath
from repro.aig.aig import Aig
from repro.guard.checkpoint import atomic_write_text
from repro.partition.partitioner import PartitionConfig
from repro.sbm.config import FlowConfig

#: Bump when the entry layout (not the flow semantics) changes.
CACHE_SCHEMA = "repro.campaign/cache-v1"
#: Entry schema of the per-stage memo slot (``repro.orchestrate``).
STAGE_SCHEMA = "repro.campaign/stage-cache-v1"


# -- canonical forms -----------------------------------------------------------

def canonical_digest(document: Any) -> str:
    """SHA-256 hex digest of *document* in canonical JSON form.

    Canonical = sorted keys, no whitespace variance — stable across
    processes, platforms, and dict-ordering accidents.  This is the one
    hash primitive behind every content key in the repo: flow cache keys,
    stage memo keys, fuzz bundle fingerprints
    (:func:`repro.fuzz.oracle.network_key`), and telemetry-history ingest
    keys (:func:`repro.obs.history.ingest_key_of`) all reduce to it, so
    their outputs are mutually consistent and previously written keys
    stay valid.
    """
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def canonical_network(aig: Aig) -> Dict[str, Any]:
    """Order-stable CompactAig dict of *aig*; the network part of the key."""
    from repro.parallel.window_io import CompactAig
    compact = CompactAig.from_aig(aig)
    # ``name`` is labeling, not structure: two renamed copies of the same
    # network must share a cache entry.
    return {"num_pis": compact.num_pis,
            "gates": [list(gate) for gate in compact.gates],
            "outputs": list(compact.outputs)}


def network_fingerprint(network: Any) -> str:
    """SHA-256 hex content fingerprint of a network (name excluded).

    Accepts an :class:`~repro.aig.aig.Aig` or an already-flattened
    :class:`~repro.parallel.window_io.CompactAig`.  Two structurally
    identical networks share a fingerprint regardless of how they were
    produced or what they are called.  This is the single network-hash
    helper for the repo — the stage memo layer, fuzz bundle fingerprints,
    and history ingest all route through it instead of rolling their own.
    """
    if isinstance(network, Aig):
        document = canonical_network(network)
    else:  # CompactAig (duck-typed: avoids importing window_io eagerly)
        document = {"num_pis": network.num_pis,
                    "gates": [list(gate) for gate in network.gates],
                    "outputs": list(network.outputs)}
    return canonical_digest(document)


def _partition_dict(config: Optional[PartitionConfig]) -> Optional[Dict[str, int]]:
    if config is None:
        return None
    return {"max_levels": config.max_levels,
            "max_size": config.max_size,
            "max_leaves": config.max_leaves}


def _engine_dicts(config: FlowConfig) -> Dict[str, Dict[str, Any]]:
    """Canonical per-engine knob dicts; one source for flow AND stage keys."""
    bdiff = config.boolean_difference
    return {
        "boolean_difference": {
            "xor_cost": bdiff.xor_cost,
            "bdd_size_limit": bdiff.bdd_size_limit,
            "bdd_node_limit": bdiff.bdd_node_limit,
            "max_pairs_per_node": bdiff.max_pairs_per_node,
            "max_pairs_per_partition": bdiff.max_pairs_per_partition,
            "min_shared_support": bdiff.min_shared_support,
            "max_inclusion": bdiff.max_inclusion,
            "accept_zero_gain": bdiff.accept_zero_gain,
            "reorder": bdiff.reorder,
            "partition": _partition_dict(bdiff.partition),
        },
        "mspf": {
            "bdd_node_limit": config.mspf.bdd_node_limit,
            "max_connectable_fanins": config.mspf.max_connectable_fanins,
            "partition": _partition_dict(config.mspf.partition),
        },
        "simresub": {
            "pattern_words": config.simresub.pattern_words,
            "max_patterns": config.simresub.max_patterns,
            "max_divisors": config.simresub.max_divisors,
            "max_pair_checks": config.simresub.max_pair_checks,
            "sat_conflict_budget": config.simresub.sat_conflict_budget,
            "seed": config.simresub.seed,
            "partition": _partition_dict(config.simresub.partition),
        },
        "kernel": {
            "eliminate_thresholds": list(config.kernel.eliminate_thresholds),
            "max_cubes": config.kernel.max_cubes,
            "kernel_rounds": config.kernel.kernel_rounds,
            "partition": _partition_dict(config.kernel.partition),
        },
        "gradient": {
            "cost_budget": config.gradient.cost_budget,
            "window_k": config.gradient.window_k,
            "min_gain_gradient": config.gradient.min_gain_gradient,
            "budget_extension": config.gradient.budget_extension,
            "partition": _partition_dict(config.gradient.partition),
        },
    }


def canonical_flow_config(config: FlowConfig) -> Optional[Dict[str, Any]]:
    """Semantic fields of *config* as a canonical dict, or ``None``.

    ``None`` means the run is uncacheable: chaos injection and wall-clock
    budgets make the result a function of timing/faults, not just of
    (network, config).  Execution-side fields (``jobs``, ``checkpoint_dir``,
    ``pool``, ``orchestrate.threads``) are deliberately absent — they
    change *where* windows run, never what they compute.
    """
    if config.chaos is not None:
        return None
    if config.flow_timeout_s is not None or config.window_timeout_s is not None:
        return None
    ocfg = config.orchestrate
    orchestrate = None if ocfg is None else {
        "k": ocfg.k,
        "rounds": ocfg.rounds,
        "seed": ocfg.seed,
        "explore": ocfg.explore,
        "min_stages": ocfg.min_stages,
    }
    document: Dict[str, Any] = {
        "iterations": config.iterations,
        "orchestrate": orchestrate,
        "max_depth_growth": config.max_depth_growth,
        "enable_simresub": config.enable_simresub,
        "enable_sat_sweep": config.enable_sat_sweep,
        "enable_redundancy_removal": config.enable_redundancy_removal,
        "verify_each_step": config.verify_each_step,
    }
    document.update(_engine_dicts(config))
    return document


#: Which per-engine knob dicts each flow stage actually reads.  Stages not
#: listed here (script/sweep/cleanup stages) have no engine knobs — their
#: stage key is (network, stage name, effort, depth limit) alone.
_STAGE_CONFIG_DEPS: Dict[str, Tuple[str, ...]] = {
    "aig_script": (),
    "gradient": ("gradient",),
    "kernel": ("kernel",),
    "mspf": ("mspf",),
    "simresub": ("simresub",),
    "collapse_decomp": (),
    "boolean_diff": ("boolean_difference",),
    "sat_sweep": (),
    "redundancy": (),
    "balance": (),
}


def canonical_stage_config(config: FlowConfig, stage: str) -> Dict[str, Any]:
    """The slice of *config* that stage *stage* can observe, canonicalized.

    This is deliberately **narrower** than :func:`canonical_flow_config`:
    a stage key must not change when an unrelated engine's knobs change,
    or the memo would miss on semantically identical work.  ``enable_*``
    flags, ``iterations``, and ``verify_each_step`` are excluded — they
    select *which* stages run and how results are checked, never what one
    stage computes from one input network.
    """
    try:
        deps = _STAGE_CONFIG_DEPS[stage]
    except KeyError:
        raise ValueError(f"unknown flow stage {stage!r}") from None
    engines = _engine_dicts(config)
    return {name: engines[name] for name in deps}


def flow_cache_key(aig: Aig, config: FlowConfig) -> Optional[str]:
    """SHA-256 cache key of running ``sbm_flow(aig, config)``, or ``None``.

    The key is a hash of a canonical JSON document — sorted keys, no
    whitespace variance — so it is stable across processes, platforms, and
    dict-ordering accidents.  ``None`` marks the job uncacheable (see
    :func:`canonical_flow_config`).
    """
    semantic = canonical_flow_config(config)
    if semantic is None:
        return None
    return canonical_digest({
        "schema": CACHE_SCHEMA,
        "code": hotpath.CODE_VERSION,
        "network": canonical_network(aig),
        "config": semantic,
    })


def stage_cache_key(network_fp: str, stage: str,
                    stage_config: Dict[str, Any],
                    effort: int = 1,
                    depth_limit: Optional[int] = None) -> str:
    """SHA-256 memo key of running one flow stage on one input network.

    *network_fp* is the input's :func:`network_fingerprint`; *stage_config*
    comes from :func:`canonical_stage_config`.  *effort* and *depth_limit*
    are in the key because a reduced-effort or depth-rolled-back result is
    a different function of the input than the full-effort one.  The code
    salt invalidates entries when the engines change, exactly like the
    flow slot.
    """
    return canonical_digest({
        "schema": STAGE_SCHEMA,
        "code": hotpath.CODE_VERSION,
        "network": network_fp,
        "stage": stage,
        "effort": effort,
        "depth_limit": depth_limit,
        "config": stage_config,
    })


# -- the on-disk cache ---------------------------------------------------------

@dataclasses.dataclass
class CacheEntry:
    """One decoded cache hit: the result network plus its flow record."""

    key: str
    network: Aig
    stats: Dict[str, Any]           #: ``FlowStats.to_dict()`` of the cold run
    nodes_before: int
    nodes_after: int


@dataclasses.dataclass
class StageEntry:
    """One decoded stage-memo hit: the stage's output network + telemetry."""

    key: str
    network: Aig
    #: stage telemetry of the cold run — ``{"nodes_before", "nodes_after",
    #: "gain", "runtime_s"}`` plus whatever the stage recorded
    stats: Dict[str, Any]


#: Counter names tracked per slot.
_SLOT_COUNTERS = ("hits", "misses", "corrupt", "stores", "store_failures")


class ResultCache:
    """Crash-safe content-addressed store of finished flow results.

    Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fanout keeps any
    single directory small on big campaigns).  Every entry is one JSON
    document carrying its own key, the code salt, the CompactAig result,
    and the cold run's ``FlowStats`` dict; :meth:`lookup` re-checks the
    embedded key and salt, so a moved, truncated, or stale file can only
    ever read as a miss.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        #: per-slot counters: ``{"flow": {...}, "stage": {...}}``
        self._stats: Dict[str, Dict[str, int]] = {
            slot: dict.fromkeys(_SLOT_COUNTERS, 0)
            for slot in ("flow", "stage")}
        self._store_warned = False

    # Aggregate counters kept as read-only properties so pre-existing
    # callers (reports, tests, benches) keep working; per-layer numbers
    # come from :meth:`slot_stats`.
    @property
    def hits(self) -> int:
        return sum(stats["hits"] for stats in self._stats.values())

    @property
    def misses(self) -> int:
        return sum(stats["misses"] for stats in self._stats.values())

    @property
    def corrupt(self) -> int:
        return sum(stats["corrupt"] for stats in self._stats.values())

    @property
    def stores(self) -> int:
        return sum(stats["stores"] for stats in self._stats.values())

    @property
    def store_failures(self) -> int:
        """Commits refused by the filesystem (disk full, permissions);
        each one degrades to an uncacheable write, never an exception."""
        return sum(stats["store_failures"] for stats in self._stats.values())

    def slot_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-slot counter snapshot: ``{"flow": {...}, "stage": {...}}``."""
        return {slot: dict(stats) for slot, stats in self._stats.items()}

    def path(self, key: str, slot: str = "flow") -> str:
        """Absolute path of *key*'s entry file (existing or not).

        The ``flow`` slot keeps the original ``<root>/<key[:2]>/`` layout
        so every pre-existing entry stays addressable; the ``stage`` slot
        nests under ``<root>/stage/``.
        """
        base = self.root if slot == "flow" else os.path.join(self.root, slot)
        return os.path.join(base, key[:2], key + ".json")

    def _read(self, key: str, slot: str) -> Optional[str]:
        """Raw entry text for *key*, counting a miss on absence."""
        path = self.path(key, slot)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            self._stats[slot]["misses"] += 1
            return None

    def _drop_corrupt(self, key: str, slot: str) -> None:
        """Self-heal: a corrupt entry would otherwise miss forever while
        still occupying its key's slot."""
        self._stats[slot]["corrupt"] += 1
        self._stats[slot]["misses"] += 1
        try:
            os.unlink(self.path(key, slot))
        except OSError:
            pass

    def lookup(self, key: str) -> Optional[CacheEntry]:
        """Decode the entry for *key*; corrupt/stale entries count as misses."""
        raw = self._read(key, "flow")
        if raw is None:
            return None
        entry = self._decode(key, raw)
        if entry is None:
            self._drop_corrupt(key, "flow")
            return None
        self._stats["flow"]["hits"] += 1
        return entry

    def _decode(self, key: str, raw: str) -> Optional[CacheEntry]:
        from repro.parallel.window_io import CompactAig
        try:
            data = json.loads(raw)
            if data.get("schema") != CACHE_SCHEMA:
                return None
            if data.get("key") != key:
                return None
            if data.get("code") != hotpath.CODE_VERSION:
                return None
            net = data["network"]
            compact = CompactAig(num_pis=int(net["num_pis"]),
                                 gates=[tuple(gate) for gate in net["gates"]],
                                 outputs=list(net["outputs"]),
                                 name=str(net.get("name", "")))
            network = compact.to_aig()
            stats = data["stats"]
            if not isinstance(stats, dict):
                return None
            return CacheEntry(key=key, network=network, stats=stats,
                              nodes_before=int(data["nodes_before"]),
                              nodes_after=int(data["nodes_after"]))
        except (KeyError, TypeError, ValueError):
            return None

    def _commit(self, key: str, slot: str, document: Dict[str, Any]) -> None:
        """Atomic write-then-rename of one entry; failures degrade to cold."""
        path = self.path(key, slot)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            atomic_write_text(path,
                              json.dumps(document, sort_keys=True) + "\n")
        except OSError as exc:
            # A full disk or revoked permission must not sink a campaign
            # mid-run: the result is already computed, the entry just
            # stays cold.  Warn once per cache, count every refusal.
            self._stats[slot]["store_failures"] += 1
            from repro import obs
            obs.metrics().inc("campaign.cache.store_failures")
            if not self._store_warned:
                self._store_warned = True
                import warnings
                warnings.warn(
                    f"result cache at {self.root} is not writable "
                    f"({type(exc).__name__}: {exc}); continuing uncached",
                    RuntimeWarning, stacklevel=2)
            return
        self._stats[slot]["stores"] += 1

    def store(self, key: str, network: Aig, stats: Dict[str, Any],
              nodes_before: int) -> None:
        """Commit a finished result under *key* (atomic write-then-rename)."""
        from repro.parallel.window_io import CompactAig
        compact = CompactAig.from_aig(network)
        self._commit(key, "flow", {
            "schema": CACHE_SCHEMA,
            "key": key,
            "code": hotpath.CODE_VERSION,
            "network": {"num_pis": compact.num_pis,
                        "gates": [list(gate) for gate in compact.gates],
                        "outputs": list(compact.outputs),
                        "name": compact.name},
            "stats": stats,
            "nodes_before": nodes_before,
            "nodes_after": network.num_ands,
        })

    # -- the stage slot (repro.orchestrate memo layer) -------------------------

    def lookup_stage(self, key: str) -> Optional[StageEntry]:
        """Decode the stage-memo entry for *key* (corrupt ⇒ miss, healed)."""
        raw = self._read(key, "stage")
        if raw is None:
            return None
        entry = self._decode_stage(key, raw)
        if entry is None:
            self._drop_corrupt(key, "stage")
            return None
        self._stats["stage"]["hits"] += 1
        return entry

    def _decode_stage(self, key: str, raw: str) -> Optional[StageEntry]:
        from repro.parallel.window_io import CompactAig
        try:
            data = json.loads(raw)
            if data.get("schema") != STAGE_SCHEMA:
                return None
            if data.get("key") != key:
                return None
            if data.get("code") != hotpath.CODE_VERSION:
                return None
            net = data["network"]
            compact = CompactAig(num_pis=int(net["num_pis"]),
                                 gates=[tuple(gate) for gate in net["gates"]],
                                 outputs=list(net["outputs"]),
                                 name=str(net.get("name", "")))
            stats = data["stats"]
            if not isinstance(stats, dict):
                return None
            return StageEntry(key=key, network=compact.to_aig(), stats=stats)
        except (KeyError, TypeError, ValueError):
            return None

    def store_stage(self, key: str, network: Aig,
                    stats: Dict[str, Any]) -> None:
        """Commit one stage result under *key* in the ``stage`` slot."""
        from repro.parallel.window_io import CompactAig
        compact = CompactAig.from_aig(network)
        self._commit(key, "stage", {
            "schema": STAGE_SCHEMA,
            "key": key,
            "code": hotpath.CODE_VERSION,
            "network": {"num_pis": compact.num_pis,
                        "gates": [list(gate) for gate in compact.gates],
                        "outputs": list(compact.outputs),
                        "name": compact.name},
            "stats": stats,
        })

    def __len__(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count


# -- the process-wide active cache ---------------------------------------------
#
# Deep call sites — the experiment tables, the ASIC flow inside Table III —
# invoke ``sbm_flow`` several layers below anything that knows about
# campaigns.  Instead of threading a cache argument through every layer,
# ``cache_context`` installs one process-wide cache that
# :func:`cached_sbm_flow` falls back to when no explicit cache is given.

_ACTIVE: Optional[ResultCache] = None


def active_cache() -> Optional[ResultCache]:
    """The cache installed by :func:`cache_context`, or ``None``."""
    return _ACTIVE


@contextlib.contextmanager
def cache_context(cache_dir: Optional[str]) -> Iterator[Optional[ResultCache]]:
    """Install a process-wide result cache for the duration of the block.

    ``None`` is a no-op context, so callers can forward an optional
    ``--cache-dir`` flag unconditionally.  Contexts nest; the innermost
    wins.
    """
    global _ACTIVE
    previous = _ACTIVE
    cache = ResultCache(cache_dir) if cache_dir is not None else previous
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous


def cached_sbm_flow(aig: Aig, config: FlowConfig,
                    cache: Optional[ResultCache] = None,
                    ) -> Tuple[Aig, Any, bool, Optional[str]]:
    """Run ``sbm_flow`` through *cache*: ``(result, stats, hit, key)``.

    On a hit the returned network is decoded from the stored CompactAig —
    bit-identical to what the cold run produced (the warm == cold
    contract) — and *stats* is the cold run's ``FlowStats.to_dict()`` dict
    rather than a live ``FlowStats`` object.  On a miss (or with no cache,
    or an uncacheable config) the flow runs and, when cacheable, the result
    is committed before returning.  With no explicit *cache* the
    process-wide one from :func:`cache_context` applies, if any.
    """
    global _ACTIVE
    from repro.sbm.flow import sbm_flow
    if cache is None:
        cache = _ACTIVE
    key = flow_cache_key(aig, config) if cache is not None else None
    if key is not None and cache is not None:
        entry = cache.lookup(key)
        if entry is not None:
            return entry.network, entry.stats, True, key
    nodes_before = aig.num_ands
    # Install this cache as the process-wide one for the duration of the
    # flow: the orchestrate search memoizes per-stage results through
    # ``active_cache()`` several layers below, and an explicitly passed
    # campaign cache must be the one it finds.
    previous = _ACTIVE
    _ACTIVE = cache if cache is not None else previous
    try:
        result, stats = sbm_flow(aig, config)
    finally:
        _ACTIVE = previous
    if key is not None and cache is not None:
        cache.store(key, result, stats.to_dict(), nodes_before)
    return result, stats, False, key
