"""Deterministic shard planning for campaign fleets.

A sharded nightly splits one suite across N CI workers.  Each worker
computes the plan **independently** — there is no coordinator — so the
plan must be a pure function of (jobs, shard count, optional cost
model), never of wall time, worker identity, or Python hashing:

* the **hash planner** (default) assigns every job by a stable SHA-256
  token: the job's flow cache key when it has one (uncacheable jobs fall
  back to a digest of their name/benchmark), reduced mod N.  Any two
  workers given the same suite file derive the same disjoint cover; no
  shared state is needed;
* the **cost planner** (opt in via a cost table, typically seeded from
  the :mod:`repro.obs.history` store) groups jobs by token, sorts groups
  by descending estimated runtime, and greedily assigns each to the
  currently lightest shard (longest-processing-time heuristic) — shards
  finish in comparable wall time instead of comparable job counts.
  Workers must share the same cost table (the same history DB snapshot)
  to derive the same plan; CI achieves this by restoring one cached DB.

Jobs that share a cache key always land in the same shard — both
planners key on the token — so within-campaign dedup behaves exactly as
in an unsharded run and the fleet's combined report equals the
single-worker one row for row.

The **disjoint-cover invariant**: every job is assigned to exactly one
shard, for every N.  Both planners guarantee it by construction
(:func:`plan_shards` assigns each position once); the merge layer
(:mod:`repro.campaign.sync`) then guarantees the combined cache equals
the single-worker cache key for key.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.cache import canonical_digest, flow_cache_key
from repro.campaign.runner import CampaignJob

#: Outcomes whose flow runtimes were actually measured (mirrors
#: ``repro.obs.history._COLD_OUTCOMES`` — a hit replays the cold stats).
_COLD_OUTCOMES = ("miss", "uncached")


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One worker's slice of a fleet: shard *index* of *count*."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``i/N`` (e.g. ``--shard 1/3``)."""
        parts = text.split("/")
        if len(parts) != 2:
            raise ValueError(f"expected shard spec 'i/N', got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(
                f"expected shard spec 'i/N' with integers, got {text!r}"
            ) from None
        return cls(index=index, count=count)

    @property
    def label(self) -> str:
        return f"{self.index}/{self.count}"


def shard_token(job: CampaignJob) -> str:
    """The stable SHA-256 token that places *job* on a shard.

    Cacheable jobs use their flow cache key, so the shard boundary is
    drawn on the exact identity the cache and the dedup pass use; jobs
    without a key (chaos/timeouts make them uncacheable, or the
    benchmark fails to resolve) fall back to a digest of their labels —
    still deterministic across processes and ``PYTHONHASHSEED`` values,
    because every byte comes from SHA-256 over canonical JSON.
    """
    key: Optional[str] = None
    try:
        key = flow_cache_key(job.resolve_network(), job.config)
    except Exception:
        key = None
    if key is None:
        key = canonical_digest({"shard-fallback": [job.name, job.benchmark]})
    return key


@dataclasses.dataclass
class ShardPlan:
    """A complete assignment of one job list onto *count* shards."""

    count: int
    planner: str                 #: ``hash`` | ``cost``
    names: List[str]             #: job labels, in suite order
    tokens: List[str]            #: per-job shard tokens (parallel to names)
    assignments: List[int]       #: per-job shard index (parallel to names)
    estimates: List[float]       #: per-job cost estimate (1.0 under hash)

    def positions(self, index: int) -> List[int]:
        """Job positions (suite order) assigned to shard *index*."""
        return [i for i, shard in enumerate(self.assignments)
                if shard == index]

    def select(self, jobs: Sequence[CampaignJob],
               index: int) -> List[CampaignJob]:
        """The sub-list of *jobs* this shard runs, in suite order."""
        if len(jobs) != len(self.assignments):
            raise ValueError(
                f"plan covers {len(self.assignments)} jobs, got {len(jobs)}")
        return [jobs[i] for i in self.positions(index)]

    def loads(self) -> List[float]:
        """Estimated total cost per shard (suite seconds under ``cost``)."""
        totals = [0.0] * self.count
        for shard, estimate in zip(self.assignments, self.estimates):
            totals[shard] += estimate
        return totals

    def tag(self, index: int) -> Dict[str, Any]:
        """The JSON-safe shard tag recorded on the campaign report."""
        return {
            "index": index,
            "count": self.count,
            "planner": self.planner,
            "jobs": [self.names[i] for i in self.positions(index)],
            "total_jobs": len(self.names),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "planner": self.planner,
            "assignments": dict(zip(self.names, self.assignments)),
            "loads": self.loads(),
        }


def plan_shards(jobs: Sequence[CampaignJob], count: int,
                costs: Optional[Dict[str, float]] = None) -> ShardPlan:
    """Assign every job in *jobs* to exactly one of *count* shards.

    Without *costs* the hash planner applies: shard = token mod *count*.
    With *costs* (benchmark name → estimated seconds, see
    :func:`shard_costs_from_history`) the cost planner applies: jobs are
    grouped by token (same-key jobs must stay together for dedup and
    report equality), groups sorted by descending cost then token, and
    each group goes to the currently lightest shard, ties broken by the
    lowest shard index.  Both are pure functions of their inputs.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    names = [job.name for job in jobs]
    tokens = [shard_token(job) for job in jobs]
    if costs is None:
        assignments = [int(token[:16], 16) % count for token in tokens]
        estimates = [1.0] * len(jobs)
        return ShardPlan(count=count, planner="hash", names=names,
                         tokens=tokens, assignments=assignments,
                         estimates=estimates)
    known = sorted(costs.values())
    default = known[len(known) // 2] if known else 1.0
    estimates = [max(float(costs.get(job.benchmark, default)), 1e-6)
                 for job in jobs]
    groups: Dict[str, List[int]] = {}
    for position, token in enumerate(tokens):
        groups.setdefault(token, []).append(position)
    ordered = sorted(
        groups.items(),
        key=lambda item: (-sum(estimates[p] for p in item[1]), item[0]))
    loads = [0.0] * count
    assignments = [0] * len(jobs)
    for token, positions in ordered:
        target = min(range(count), key=lambda shard: (loads[shard], shard))
        for position in positions:
            assignments[position] = target
            loads[target] += estimates[position]
    return ShardPlan(count=count, planner="cost", names=names,
                     tokens=tokens, assignments=assignments,
                     estimates=estimates)


def shard_costs_from_history(db_path: str,
                             window: int = 20) -> Dict[str, float]:
    """Median cold flow runtime per benchmark from a history store.

    Reads the :mod:`repro.obs.history` ``jobs`` table over the newest
    *window* runs, considering only cold outcomes (a hit replays the
    cold run's stats — its timing is not this fleet's).  Returns an
    empty dict when the store is missing or empty, which makes the cost
    planner fall back to uniform estimates (still deterministic).
    """
    import os
    import sqlite3
    import statistics
    if not os.path.exists(db_path):
        return {}
    samples: Dict[str, List[float]] = {}
    try:
        conn = sqlite3.connect(db_path)
        try:
            marks = ",".join("?" * len(_COLD_OUTCOMES))
            rows = conn.execute(
                f"SELECT benchmark, flow_runtime_s FROM jobs"
                f" WHERE outcome IN ({marks}) AND run_id IN"
                f" (SELECT run_id FROM runs ORDER BY run_id DESC LIMIT ?)",
                (*_COLD_OUTCOMES, window)).fetchall()
        finally:
            conn.close()
    except sqlite3.Error:
        return {}
    for benchmark, runtime in rows:
        samples.setdefault(str(benchmark), []).append(float(runtime))
    return {benchmark: float(statistics.median(values))
            for benchmark, values in samples.items()}
