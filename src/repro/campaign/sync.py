"""Cache pack/merge: move ``ResultCache`` contents between fleet workers.

Each shard of a fleet (:mod:`repro.campaign.shard`) runs against its own
cache directory; this module turns those directories into portable,
byte-reproducible archives and merges any number of archives back into
one combined cache that is key-for-key identical to what a single worker
would have produced:

* :func:`pack_cache` walks a cache root (both the ``flow`` and ``stage``
  slots), validates every entry (undecodable JSON, a key that does not
  match its filename, or an unknown schema is **skipped and counted**,
  never shipped), and writes a deterministic ``.tar.gz`` — fixed
  metadata, sorted members, zeroed gzip timestamp — whose first member
  is a ``MANIFEST.json`` listing every entry's path, slot, key, raw
  SHA-256 (transport integrity) and **payload digest**;
* :func:`merge_cache` imports archives into a destination cache with
  conflict detection and idempotent re-merge.

**The payload digest and the conflict rule.**  A cache entry embeds the
cold run's telemetry (``stats``: wall seconds per stage), which is
measurement, not result — two workers computing the same key produce
bit-identical *networks* but different timings.  The entry's *payload*
is therefore the document minus ``stats``: schema, key, code salt,
CompactAig network, node counts — every field the determinism contract
covers.  Merge compares payloads:

* same key, **same payload** → idempotent duplicate (the existing entry
  wins; re-merging an archive is a no-op);
* same key, **different payload** → :class:`CacheMergeConflict`, a hard
  error: content-addressed entries must agree, so a payload mismatch
  means a broken determinism contract or a corrupted fleet — silently
  picking a winner would hide exactly the bug the fleet exists to catch.

Counter propagation: a shard whose cache degraded mid-run
(``ResultCache.store`` counts ``store_failures`` on a full disk or
revoked permission) looks healthy from its archive alone — the entries
that failed to commit simply are not there.  The pack manifest therefore
carries the run's per-slot cache counters (pass ``slot_stats`` from the
campaign report), and :func:`merge_cache` sums ``store_failures`` across
all manifests so the merge job's log shows the degradation instead of a
silently thinner cache.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import io
import json
import os
import posixpath
import tarfile
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import hotpath
from repro.campaign.cache import CACHE_SCHEMA, STAGE_SCHEMA, canonical_digest
from repro.guard.checkpoint import atomic_write_text

#: Bump when the archive/manifest layout changes.
PACK_SCHEMA = "repro.campaign/cache-pack-v1"
#: First member of every archive.
MANIFEST_NAME = "MANIFEST.json"

_ENTRY_SCHEMAS = (CACHE_SCHEMA, STAGE_SCHEMA)


class CacheMergeConflict(RuntimeError):
    """Same key, different payload: the content-address contract broke."""

    def __init__(self, key: str, slot: str, archive: str,
                 existing: str) -> None:
        self.key = key
        self.slot = slot
        self.archive = archive
        self.existing = existing
        super().__init__(
            f"cache entry {slot}/{key} from {archive} disagrees with the "
            f"existing entry at {existing}: same content-addressed key, "
            f"different result payload — refusing to pick a winner")


def entry_payload_digest(raw: bytes) -> Optional[str]:
    """Digest of an entry's deterministic payload, or ``None`` if corrupt.

    The payload is the entry document minus the volatile ``stats``
    telemetry (wall times); see the module docstring for why identity is
    defined over it.  ``None`` means the bytes do not decode to a known
    entry schema at all.
    """
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") not in _ENTRY_SCHEMAS:
        return None
    if not isinstance(data.get("key"), str):
        return None
    payload = {name: value for name, value in data.items()
               if name != "stats"}
    return canonical_digest(payload)


def _entry_slot(relpath: str) -> str:
    return "stage" if relpath.split("/", 1)[0] == "stage" else "flow"


def _collect_entries(cache_dir: str) -> List[str]:
    """Relative POSIX paths of every ``.json`` entry under *cache_dir*."""
    root = os.path.abspath(cache_dir)
    entries: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if not name.endswith(".json"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            entries.append(rel.replace(os.sep, "/"))
    entries.sort()
    return entries


def pack_cache(cache_dir: str, archive_path: str,
               slot_stats: Optional[Dict[str, Dict[str, int]]] = None,
               ) -> Dict[str, Any]:
    """Export *cache_dir* to *archive_path*; returns the manifest document.

    *slot_stats* is the producing run's per-slot cache counter snapshot
    (``CampaignReport.cache_slots``); embedding it lets the merge side
    surface ``store_failures`` of shards whose cache silently degraded.
    The archive is byte-reproducible: packing the same directory twice
    yields identical files, so artifact stores dedup and re-packs never
    churn.
    """
    root = os.path.abspath(cache_dir)
    entries: List[Dict[str, Any]] = []
    corrupt_skipped = 0
    payloads: List[Tuple[str, bytes]] = []
    for rel in _collect_entries(root):
        with open(os.path.join(root, rel.replace("/", os.sep)),
                  "rb") as handle:
            raw = handle.read()
        key = posixpath.basename(rel)[:-len(".json")]
        payload = entry_payload_digest(raw)
        if payload is None or json.loads(raw)["key"] != key:
            corrupt_skipped += 1
            continue
        entries.append({
            "path": rel,
            "slot": _entry_slot(rel),
            "key": key,
            "sha256": hashlib.sha256(raw).hexdigest(),
            "payload": payload,
            "bytes": len(raw),
        })
        payloads.append((rel, raw))
    manifest: Dict[str, Any] = {
        "schema": PACK_SCHEMA,
        "code": hotpath.CODE_VERSION,
        "entries": entries,
        "slot_stats": slot_stats,
        "corrupt_skipped": corrupt_skipped,
    }
    manifest_raw = json.dumps(manifest, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")

    def _member(name: str, size: int) -> tarfile.TarInfo:
        info = tarfile.TarInfo(name=name)
        info.size = size
        info.mtime = 0          # reproducible: no wall clock in the archive
        info.mode = 0o644
        info.uid = info.gid = 0
        info.uname = info.gname = ""
        return info

    with open(archive_path, "wb") as out:
        # GzipFile over our own handle with an empty filename and zeroed
        # mtime: nothing environment-dependent in the gzip header, so
        # identical content packs to identical bytes.
        with gzip.GzipFile(filename="", fileobj=out, mode="wb",
                           mtime=0) as gz:
            with tarfile.open(fileobj=gz, mode="w") as tar:
                tar.addfile(_member(MANIFEST_NAME, len(manifest_raw)),
                            io.BytesIO(manifest_raw))
                for rel, raw in payloads:
                    tar.addfile(_member(rel, len(raw)), io.BytesIO(raw))
    return manifest


@dataclasses.dataclass
class MergeReport:
    """Outcome of merging one or more cache archives."""

    into: str
    archives: List[str] = dataclasses.field(default_factory=list)
    imported: int = 0            #: entries written into the destination
    duplicates: int = 0          #: same key, same payload — idempotent skips
    corrupt_skipped: int = 0     #: transport/decode failures at merge time
    packed_corrupt: int = 0      #: entries the pack side already skipped
    #: per-slot entries imported (``{"flow": n, "stage": n}``)
    imported_by_slot: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {"flow": 0, "stage": 0})
    #: summed per-slot ``store_failures`` from the shard manifests — a
    #: nonzero value means some shard computed results it could not cache
    store_failures: Dict[str, int] = dataclasses.field(
        default_factory=lambda: {"flow": 0, "stage": 0})

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        lines = [
            f"merged {len(self.archives)} archive(s) into {self.into}: "
            f"{self.imported} imported "
            f"(flow={self.imported_by_slot['flow']} "
            f"stage={self.imported_by_slot['stage']}), "
            f"{self.duplicates} duplicate(s), "
            f"{self.corrupt_skipped} corrupt skipped"]
        if self.packed_corrupt:
            lines.append(f"  note: {self.packed_corrupt} corrupt entr(ies) "
                         f"were already skipped at pack time")
        failures = sum(self.store_failures.values())
        if failures:
            lines.append(
                f"  WARNING: shards recorded {failures} cache store "
                f"failure(s) (flow={self.store_failures['flow']} "
                f"stage={self.store_failures['stage']}) — results were "
                f"computed but never cached; the merged cache is thinner "
                f"than a healthy fleet's")
        return "\n".join(lines)


def _safe_relpath(path: str) -> str:
    """Reject absolute or parent-escaping member paths (tar hardening)."""
    normalized = posixpath.normpath(path)
    if normalized.startswith(("/", "../")) or normalized == ".." \
            or "\\" in path:
        raise ValueError(f"unsafe archive member path {path!r}")
    return normalized


def merge_cache(archives: Sequence[str], into_dir: str) -> MergeReport:
    """Import every archive into *into_dir*; returns the merge report.

    Raises :class:`CacheMergeConflict` when an incoming entry's payload
    disagrees with an existing entry under the same key (hard error —
    see the module docstring), and ``ValueError`` on an archive without
    a valid manifest.  Entries whose bytes do not match their manifest
    digest, or that no longer decode, are skipped and counted.  Merging
    is idempotent: re-merging an already-merged archive only increments
    ``duplicates``.
    """
    root = os.path.abspath(into_dir)
    os.makedirs(root, exist_ok=True)
    report = MergeReport(into=root)
    for archive in archives:
        report.archives.append(archive)
        with tarfile.open(archive, mode="r:gz") as tar:
            try:
                member = tar.extractfile(MANIFEST_NAME)
            except KeyError:
                member = None
            if member is None:
                raise ValueError(f"{archive}: no {MANIFEST_NAME}")
            try:
                manifest = json.loads(member.read().decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ValueError(
                    f"{archive}: unreadable {MANIFEST_NAME}: {exc}") from exc
            if manifest.get("schema") != PACK_SCHEMA:
                raise ValueError(
                    f"{archive}: unknown manifest schema "
                    f"{manifest.get('schema')!r}")
            report.packed_corrupt += int(manifest.get("corrupt_skipped", 0))
            for slot, stats in (manifest.get("slot_stats") or {}).items():
                if slot in report.store_failures and isinstance(stats, dict):
                    report.store_failures[slot] += \
                        int(stats.get("store_failures", 0))
            for entry in manifest.get("entries", []):
                rel = _safe_relpath(str(entry["path"]))
                slot = str(entry.get("slot") or _entry_slot(rel))
                key = str(entry.get("key", ""))
                try:
                    extracted = tar.extractfile(rel)
                except KeyError:
                    extracted = None
                if extracted is None:
                    report.corrupt_skipped += 1
                    continue
                raw = extracted.read()
                if hashlib.sha256(raw).hexdigest() != entry.get("sha256"):
                    report.corrupt_skipped += 1
                    continue
                payload = entry_payload_digest(raw)
                if payload is None:
                    report.corrupt_skipped += 1
                    continue
                dest = os.path.join(root, rel.replace("/", os.sep))
                if os.path.exists(dest):
                    with open(dest, "rb") as handle:
                        existing = handle.read()
                    existing_payload = entry_payload_digest(existing)
                    if existing_payload == payload:
                        report.duplicates += 1
                        continue
                    if existing_payload is None:
                        # A corrupt destination entry would miss forever
                        # anyway (the cache self-heals on lookup); the
                        # verified incoming entry replaces it.
                        report.corrupt_skipped += 1
                    else:
                        raise CacheMergeConflict(key=key, slot=slot,
                                                 archive=archive,
                                                 existing=dest)
                os.makedirs(os.path.dirname(dest), exist_ok=True)
                atomic_write_text(dest, raw.decode("utf-8"))
                report.imported += 1
                if slot in report.imported_by_slot:
                    report.imported_by_slot[slot] += 1
    return report


def cache_inventory(cache_dir: str) -> Dict[str, Dict[str, str]]:
    """``{"flow"|"stage": {key: payload digest}}`` of a cache directory.

    The fleet verifier's comparison primitive: two caches with equal
    inventories hold the same keys with bit-identical payloads (corrupt
    entries are excluded — they read as misses anyway).
    """
    root = os.path.abspath(cache_dir)
    inventory: Dict[str, Dict[str, str]] = {"flow": {}, "stage": {}}
    for rel in _collect_entries(root):
        with open(os.path.join(root, rel.replace("/", os.sep)),
                  "rb") as handle:
            raw = handle.read()
        payload = entry_payload_digest(raw)
        if payload is None:
            continue
        key = posixpath.basename(rel)[:-len(".json")]
        inventory[_entry_slot(rel)][key] = payload
    return inventory
