"""Batch orchestration of many (benchmark × FlowConfig) jobs.

The runner turns a list of :class:`CampaignJob` into one
:class:`CampaignReport`:

* **one shared worker pool** — every flow gets the campaign's
  :class:`~repro.parallel.shared_pool.SharedProcessPool` injected via
  ``FlowConfig.pool``, so partition windows of *all* benchmarks compete
  for the same worker slots (work stealing) instead of each flow paying
  for a private pool;
* **content-addressed caching** — jobs whose ``(network, config, code)``
  key is already on disk return the stored network without running
  (see :mod:`repro.campaign.cache`); jobs *within* one campaign that share
  a key are computed once and the rest marked ``dedup``;
* **thread isolation for telemetry** — each job thread runs behind a
  thread-local tracer/metrics override plus a per-job
  :class:`~repro.obs.TelemetryCollector`; after all jobs finish, collected
  flow/parallel/guard telemetry is merged into the active obs session in
  **job order**, so a report produced from a concurrent campaign lists
  flows in the same order as a serial one.

Determinism contract: outcomes (result networks, node counts) are
independent of ``workers``/``threads``; only timing and the
stolen-window/pool telemetry vary.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro import obs
from repro.aig.aig import Aig
from repro.campaign.cache import ResultCache, cached_sbm_flow, flow_cache_key
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.parallel.shared_pool import SharedProcessPool
from repro.parallel.stats import aggregate_reports
from repro.sbm.config import FlowConfig


@dataclasses.dataclass
class CampaignJob:
    """One unit of campaign work: a network plus the flow to run on it."""

    name: str                     #: display/report label, unique per campaign
    benchmark: str                #: registry name (``repro.bench.registry``)
    config: FlowConfig = dataclasses.field(default_factory=FlowConfig)
    scaled: bool = True           #: registry scale (DESIGN.md §6)
    network: Optional[Aig] = None  #: explicit input; overrides *benchmark*

    def resolve_network(self) -> Aig:
        """The input AIG: the explicit network or the registry benchmark."""
        if self.network is not None:
            return self.network
        from repro.bench.registry import get_benchmark
        return get_benchmark(self.benchmark, scaled=self.scaled)


@dataclasses.dataclass
class JobResult:
    """Outcome of one campaign job."""

    name: str
    benchmark: str
    #: ``hit`` | ``miss`` | ``dedup`` | ``uncached`` | ``error``
    outcome: str
    key: Optional[str] = None
    wall_s: float = 0.0            #: campaign-side wall time for this job
    flow_runtime_s: float = 0.0    #: the flow's own runtime (0 on a hit)
    nodes_before: int = 0
    nodes_after: int = 0
    stolen_windows: int = 0
    pool_restarts: int = 0
    faults: int = 0                #: chaos faults injected into this job
    #: per-engine applied node gain on this benchmark (cold runs only; a
    #: cache hit replays the network, not the window telemetry)
    engine_gain: Dict[str, int] = dataclasses.field(default_factory=dict)
    error: Optional[str] = None
    network: Optional[Aig] = None
    stats: Optional[Dict[str, Any]] = None  #: ``FlowStats.to_dict()`` shape
    collector: Optional[obs.TelemetryCollector] = None
    #: snapshot of the job's private metrics registry (session runs only)
    collector_metrics: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe row for the run report's ``jobs_detail`` list."""
        row = {
            "name": self.name,
            "benchmark": self.benchmark,
            "outcome": self.outcome,
            "key": self.key,
            "wall_s": self.wall_s,
            "flow_runtime_s": self.flow_runtime_s,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "stolen_windows": self.stolen_windows,
            "pool_restarts": self.pool_restarts,
            "faults": self.faults,
            "engine_gain": dict(self.engine_gain),
            "error": self.error,
        }
        # Per-stage sizes/times feed the telemetry history store; a cache
        # hit replays the cold run's stats dict, so hits carry them too.
        if self.stats and self.stats.get("stages"):
            row["stages"] = [
                {"name": s.get("name"), "size": s.get("size"),
                 "elapsed_s": s.get("elapsed_s", 0.0)}
                for s in self.stats["stages"]]
        return row


@dataclasses.dataclass
class CampaignReport:
    """Aggregate of one campaign run: counters, telemetry, per-job rows."""

    suite: str = "adhoc"
    cache_dir: Optional[str] = None
    #: fleet shard tag (``repro.campaign.shard``): ``{"index", "count",
    #: "planner", "jobs", "total_jobs"}``; ``None`` for unsharded runs
    shard: Optional[Dict[str, Any]] = None
    results: List[JobResult] = dataclasses.field(default_factory=list)
    hits: int = 0
    misses: int = 0
    deduped: int = 0
    uncached: int = 0
    errors: int = 0
    corrupt_entries: int = 0
    #: per-slot cache counters (``flow`` = whole-flow entries, ``stage`` =
    #: the orchestrate memo layer), from :meth:`repro.campaign.cache
    #: .ResultCache.slot_stats`; ``None`` without a cache
    cache_slots: Optional[Dict[str, Dict[str, int]]] = None
    stolen_windows: int = 0
    pool_rebuilds: int = 0
    pool_restarts: int = 0
    elapsed_s: float = 0.0
    cpu_s: float = 0.0
    worker_wall_s: float = 0.0
    #: :func:`repro.parallel.stats.aggregate_reports` over every parallel
    #: pass of every job — summed across the whole campaign, never just the
    #: last flow's report
    parallel: Optional[Dict[str, Any]] = None

    @property
    def jobs(self) -> int:
        return len(self.results)

    def result(self, name: str) -> JobResult:
        """The job row labelled *name* (raises ``KeyError`` when absent)."""
        for row in self.results:
            if row.name == name:
                return row
        raise KeyError(name)

    def to_dict(self) -> Dict[str, Any]:
        """The run report's ``campaign`` section (schema v3)."""
        return {
            "suite": self.suite,
            "cache_dir": self.cache_dir,
            "shard": self.shard,
            "jobs": self.jobs,
            "hits": self.hits,
            "misses": self.misses,
            "deduped": self.deduped,
            "uncached": self.uncached,
            "errors": self.errors,
            "corrupt_entries": self.corrupt_entries,
            "cache_slots": self.cache_slots,
            "stolen_windows": self.stolen_windows,
            "pool_rebuilds": self.pool_rebuilds,
            "pool_restarts": self.pool_restarts,
            "elapsed_s": self.elapsed_s,
            "cpu_s": self.cpu_s,
            "worker_wall_s": self.worker_wall_s,
            "parallel": self.parallel,
            "jobs_detail": [row.to_dict() for row in self.results],
        }


def _run_one(job: CampaignJob, cache: Optional[ResultCache],
             pool: Optional[SharedProcessPool]) -> JobResult:
    """Execute one job on the current thread; never raises."""
    collector = obs.TelemetryCollector()
    # The global Tracer keeps one span stack — concurrent job threads must
    # not touch it.  Per-job engine metrics go to a private registry that
    # the campaign merges back in job order.
    registry = MetricsRegistry() if obs.session() is not None else None
    obs.install_local(NULL_TRACER,
                      registry if registry is not None else obs.NULL_METRICS)
    obs.push_collector(collector)
    if pool is not None:
        pool.bind(job.name)
    start = time.perf_counter()
    result = JobResult(name=job.name, benchmark=job.benchmark,
                       outcome="error", collector=collector)
    bus = obs.live_bus()
    if bus.enabled:
        bus.emit("job_start", name=job.name, benchmark=job.benchmark)
    try:
        network = job.resolve_network()
        result.nodes_before = network.num_ands
        config = job.config
        if pool is not None and config.pool is not pool:
            config = dataclasses.replace(config, pool=pool)
        optimized, stats, hit, key = cached_sbm_flow(network, config, cache)
        result.key = key
        result.network = optimized
        result.nodes_after = optimized.num_ands
        if hit:
            result.outcome = "hit"
            result.stats = stats                      # the cold run's dict
        else:
            result.outcome = "miss" if key is not None else "uncached"
            result.stats = stats.to_dict()
            result.flow_runtime_s = stats.runtime_s
            if stats.guard is not None:
                result.faults = len(stats.guard.faults)
    except Exception as exc:  # a failed job must not sink the campaign
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        result.wall_s = time.perf_counter() - start
        result.pool_restarts = sum(
            report.pool_restarts for report in collector.parallel_reports)
        for parallel in collector.parallel_reports:
            if parallel.total_gain:
                result.engine_gain[parallel.engine] = \
                    result.engine_gain.get(parallel.engine, 0) \
                    + parallel.total_gain
        if pool is not None:
            result.stolen_windows = pool.stolen_windows(job.name)
        obs.pop_collector()
        obs.clear_local()
        if registry is not None:
            result.collector_metrics = registry.snapshot()
        if bus.enabled:
            bus.emit("job_end", name=job.name, outcome=result.outcome,
                     nodes_before=result.nodes_before,
                     nodes_after=result.nodes_after)
    return result


def run_campaign(jobs: List[CampaignJob],
                 cache_dir: Optional[str] = None,
                 workers: Optional[int] = 1,
                 threads: Optional[int] = None,
                 suite: str = "adhoc",
                 history_db: Optional[str] = None,
                 shard: Optional[Dict[str, Any]] = None) -> CampaignReport:
    """Run every job; returns the campaign report (and registers it).

    Parameters
    ----------
    jobs:
        The campaign's job list; ``name`` labels must be unique.
    cache_dir:
        Root of the persistent result cache; ``None`` disables caching.
    workers:
        Width of the shared process pool.  ``1`` (default) runs every flow
        on the inline serial path with no pool; ``None``/``0`` means
        ``os.cpu_count()``.
    threads:
        Concurrent job threads.  Defaults to the pool width (work
        stealing needs overlapping jobs) or ``1`` without a pool.
    suite:
        Label recorded in the report (the suite file name, usually).
    history_db:
        Path of a :mod:`repro.obs.history` SQLite store; when given, the
        finished report is ingested into it (a history failure is reported
        on stderr but never sinks the campaign).
    shard:
        Fleet shard tag (:meth:`repro.campaign.shard.ShardPlan.tag`);
        recorded verbatim on the report and in the history store so a
        shard's rows are distinguishable from a full run's.
    """
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate campaign job names: {sorted(names)}")
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    pool_width = workers if workers is not None else 0
    pool = SharedProcessPool(pool_width) if pool_width != 1 else None
    if threads is None or threads <= 0:
        threads = pool.workers if pool is not None else 1
    threads = max(1, min(threads, len(jobs) or 1))

    report = CampaignReport(suite=suite, cache_dir=cache_dir, shard=shard)
    bus = obs.live_bus()
    if bus.enabled:
        bus.emit("campaign_start", suite=suite, jobs=len(jobs))
    start_wall = time.perf_counter()
    start_cpu = time.process_time()
    try:
        # Within-campaign dedup: jobs sharing a cache key run once.  Keys
        # are resolved up front (cheap: hash of the generated network) so
        # leaders and followers are fixed regardless of thread timing.
        leader_of: Dict[str, CampaignJob] = {}
        followers: Dict[int, str] = {}           # job index -> leader name
        for index, job in enumerate(jobs):
            try:
                key = flow_cache_key(job.resolve_network(), job.config)
            except Exception:
                # An unresolvable benchmark must not sink the campaign;
                # _run_one reports it as an "error" row like any other
                # per-job failure.
                continue
            if key is None:
                continue
            if key in leader_of:
                followers[index] = leader_of[key].name
            else:
                leader_of[key] = job
        runnable = [job for index, job in enumerate(jobs)
                    if index not in followers]

        outcomes: Dict[str, JobResult] = {}
        if threads == 1 or len(runnable) <= 1:
            for job in runnable:
                outcomes[job.name] = _run_one(job, cache, pool)
        else:
            with ThreadPoolExecutor(max_workers=threads) as executor:
                futures = {job.name: executor.submit(_run_one, job, cache,
                                                     pool)
                           for job in runnable}
                for name, future in futures.items():
                    outcomes[name] = future.result()

        for index, job in enumerate(jobs):
            if index in followers:
                leader = outcomes[followers[index]]
                row = dataclasses.replace(
                    leader, name=job.name, benchmark=job.benchmark,
                    outcome="dedup", wall_s=0.0, flow_runtime_s=0.0,
                    stolen_windows=0, pool_restarts=0, faults=0,
                    collector=None)
                report.results.append(row)
            else:
                report.results.append(outcomes[job.name])
    finally:
        if pool is not None:
            report.pool_rebuilds = pool.rebuilds
            report.stolen_windows = pool.total_stolen
            pool.shutdown()

    for row in report.results:
        counter = {"hit": "hits", "miss": "misses", "dedup": "deduped",
                   "uncached": "uncached", "error": "errors"}[row.outcome]
        setattr(report, counter, getattr(report, counter) + 1)
        report.pool_restarts += row.pool_restarts
    if cache is not None:
        report.corrupt_entries = cache.corrupt
        report.cache_slots = cache.slot_stats()
    report.elapsed_s = time.perf_counter() - start_wall
    report.cpu_s = time.process_time() - start_cpu

    # Merge per-job telemetry into the session in job order — a concurrent
    # campaign must report the same flow/parallel sequence as a serial one.
    all_parallel = []
    session = obs.session()
    for row in report.results:
        collector = row.collector
        if collector is None:
            continue
        all_parallel.extend(collector.parallel_reports)
        if session is not None:
            session.flow_stats.extend(collector.flow_stats)
            session.parallel_reports.extend(collector.parallel_reports)
            session.guard_reports.extend(collector.guard_reports)
            if row.collector_metrics:
                session.metrics.merge(row.collector_metrics)
    if all_parallel:
        aggregate = aggregate_reports(all_parallel)
        report.parallel = aggregate
        report.worker_wall_s = float(aggregate["worker_wall_s"])
    if bus.enabled:
        bus.emit("campaign_end", suite=suite, hits=report.hits,
                 misses=report.misses, deduped=report.deduped,
                 uncached=report.uncached, errors=report.errors)
    obs.record_campaign_report(report)
    if history_db is not None:
        # Telemetry history is best-effort bookkeeping — a locked or
        # corrupt store must not turn a finished campaign into a failure.
        try:
            from repro.obs.history import ingest_campaign_report
            ingest_campaign_report(history_db, report)
        except Exception as exc:
            import sys
            print(f"history ingest failed ({history_db}): "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
    return report
