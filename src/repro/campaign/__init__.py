"""Cross-run campaign orchestration with a persistent result cache.

``repro.campaign`` runs many (benchmark × FlowConfig) jobs as one batch:

* :mod:`repro.campaign.runner` — the orchestrator: one shared
  :class:`~repro.parallel.shared_pool.SharedProcessPool` for every flow
  (work stealing across benchmarks), per-job telemetry collectors merged
  back in deterministic job order, within-campaign dedup of identical
  jobs;
* :mod:`repro.campaign.cache` — the crash-safe content-addressed result
  cache keyed by SHA-256 of (network, semantic config, code version);
  warm hits decode to networks bit-identical to the cold run;
* :mod:`repro.campaign.suite` — TOML suite files describing campaigns.

CLI: ``python -m repro campaign <suite.toml | benchmark...>
--cache-dir DIR --jobs N --report-json PATH``.
"""

from repro.campaign.cache import (
    CacheEntry,
    ResultCache,
    StageEntry,
    active_cache,
    cache_context,
    cached_sbm_flow,
    canonical_digest,
    canonical_flow_config,
    canonical_stage_config,
    flow_cache_key,
    network_fingerprint,
    stage_cache_key,
)
from repro.campaign.runner import (
    CampaignJob,
    CampaignReport,
    JobResult,
    run_campaign,
)
from repro.campaign.suite import jobs_from_benchmarks, load_suite

__all__ = [
    "CacheEntry",
    "CampaignJob",
    "CampaignReport",
    "JobResult",
    "ResultCache",
    "StageEntry",
    "active_cache",
    "cache_context",
    "cached_sbm_flow",
    "canonical_digest",
    "canonical_flow_config",
    "canonical_stage_config",
    "flow_cache_key",
    "jobs_from_benchmarks",
    "load_suite",
    "network_fingerprint",
    "run_campaign",
    "stage_cache_key",
]
