"""Cross-run campaign orchestration with a persistent result cache.

``repro.campaign`` runs many (benchmark × FlowConfig) jobs as one batch:

* :mod:`repro.campaign.runner` — the orchestrator: one shared
  :class:`~repro.parallel.shared_pool.SharedProcessPool` for every flow
  (work stealing across benchmarks), per-job telemetry collectors merged
  back in deterministic job order, within-campaign dedup of identical
  jobs;
* :mod:`repro.campaign.cache` — the crash-safe content-addressed result
  cache keyed by SHA-256 of (network, semantic config, code version);
  warm hits decode to networks bit-identical to the cold run;
* :mod:`repro.campaign.suite` — TOML suite files describing campaigns;
* :mod:`repro.campaign.shard` — deterministic shard planner splitting a
  suite across fleet workers (``--shard i/N``), by stable cache-key hash
  or a history-seeded cost model;
* :mod:`repro.campaign.sync` — cache pack/merge: byte-reproducible
  archives of a cache directory with manifest digests, merged back with
  conflict detection so the fleet's combined cache equals a single
  worker's.

CLI: ``python -m repro campaign <suite.toml | benchmark...>
--cache-dir DIR --jobs N --shard i/N --report-json PATH`` and
``python -m repro cache pack|merge``.
"""

from repro.campaign.cache import (
    CacheEntry,
    ResultCache,
    StageEntry,
    active_cache,
    cache_context,
    cached_sbm_flow,
    canonical_digest,
    canonical_flow_config,
    canonical_stage_config,
    flow_cache_key,
    network_fingerprint,
    stage_cache_key,
)
from repro.campaign.runner import (
    CampaignJob,
    CampaignReport,
    JobResult,
    run_campaign,
)
from repro.campaign.shard import (
    ShardPlan,
    ShardSpec,
    plan_shards,
    shard_costs_from_history,
    shard_token,
)
from repro.campaign.suite import jobs_from_benchmarks, load_suite
from repro.campaign.sync import (
    CacheMergeConflict,
    MergeReport,
    cache_inventory,
    entry_payload_digest,
    merge_cache,
    pack_cache,
)

__all__ = [
    "CacheEntry",
    "CacheMergeConflict",
    "CampaignJob",
    "CampaignReport",
    "JobResult",
    "MergeReport",
    "ResultCache",
    "ShardPlan",
    "ShardSpec",
    "StageEntry",
    "active_cache",
    "cache_context",
    "cache_inventory",
    "cached_sbm_flow",
    "canonical_digest",
    "canonical_flow_config",
    "canonical_stage_config",
    "entry_payload_digest",
    "flow_cache_key",
    "jobs_from_benchmarks",
    "load_suite",
    "merge_cache",
    "network_fingerprint",
    "pack_cache",
    "plan_shards",
    "run_campaign",
    "shard_costs_from_history",
    "shard_token",
    "stage_cache_key",
]
