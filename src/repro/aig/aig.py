"""Core And-Inverter Graph (AIG) data structure.

The AIG is the central logic representation of the SBM framework: every
optimization engine in the paper consumes and produces AIGs ("after each
transformation, the logic network is translated into an AIG in order to have
a consistent interface", Section V-A).

Representation
--------------
Nodes are integers.  Node ``0`` is the constant-FALSE node; primary inputs
and two-input AND gates follow.  Edges are *literals*: ``lit = 2 * node + c``
where ``c = 1`` encodes an inverter on the edge (the dashed edges of Fig. 1
in the paper).  This is the AIGER convention, so ``lit ^ 1`` complements an
edge and ``lit >> 1`` recovers the node.

The graph is *editable*: :meth:`Aig.replace` redirects all fanouts of a node
to another literal, merging structurally identical gates and propagating
constants, exactly the primitive needed by resubstitution-style engines
(Alg. 2 line 14, "Change f with diff in N").  Structural hashing (strashing)
is maintained incrementally, and reference counts track dangling logic so
that Maximum Fanout-Free Cones (MFFCs) can be measured cheaply.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AigError

# Public literal helpers -----------------------------------------------------

CONST0 = 0  #: literal for the constant-FALSE function
CONST1 = 1  #: literal for the constant-TRUE function


def lit(node: int, complemented: bool = False) -> int:
    """Build the literal pointing at *node*, optionally complemented."""
    return 2 * node + (1 if complemented else 0)


def lit_node(literal: int) -> int:
    """Return the node a literal points at."""
    return literal >> 1


def lit_is_compl(literal: int) -> bool:
    """Return ``True`` if the literal carries an inverter."""
    return bool(literal & 1)


def lit_not(literal: int) -> int:
    """Complement a literal."""
    return literal ^ 1


def lit_notcond(literal: int, condition: bool) -> int:
    """Complement a literal iff *condition* is true."""
    return literal ^ 1 if condition else literal


class Aig:
    """A structurally hashed, editable And-Inverter Graph.

    Example
    -------
    >>> aig = Aig()
    >>> a, b = aig.add_pi("a"), aig.add_pi("b")
    >>> f = aig.add_and(a, lit_not(b))
    >>> aig.add_po(f, "f")
    0
    >>> aig.num_ands
    1
    """

    #: Process-wide monotonic source of network generations.  Every edit
    #: stamps the network with a *globally unique* generation, so anything
    #: cached against a generation (the compiled simulation program of
    #: :mod:`repro.aig.simprogram`) can never be confused between two
    #: network objects — even after wholesale ``__dict__`` swaps.
    _gen_source = count(1)

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        self._generation = next(Aig._gen_source)
        # Parallel node arrays.  Node 0 is the constant node.
        self._fanin0: List[int] = [-1]
        self._fanin1: List[int] = [-1]
        self._nrefs: List[int] = [0]
        self._dead: List[bool] = [False]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []          # literals
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}
        self._fanouts: List[List[int]] = [[]]  # AND-node fanouts only
        self._n_dead_ands = 0

    # -- construction --------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its (positive) literal."""
        node = self._new_node(-1, -1)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return lit(node)

    def add_pis(self, count: int, prefix: str = "x") -> List[int]:
        """Create *count* primary inputs named ``{prefix}{i}``."""
        return [self.add_pi(f"{prefix}{i}") for i in range(count)]

    def add_po(self, literal: int, name: Optional[str] = None) -> int:
        """Register *literal* as a primary output; return the PO index."""
        self._check_lit(literal)
        self._pos.append(literal)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        self._ref_lit(literal)
        self._touch()
        return len(self._pos) - 1

    def set_po(self, index: int, literal: int) -> None:
        """Redirect PO *index* to a new literal, updating reference counts."""
        self._check_lit(literal)
        old = self._pos[index]
        self._pos[index] = literal
        self._ref_lit(literal)
        self._deref_lit(old)
        self._touch()

    def add_and(self, a: int, b: int) -> int:
        """Return the literal of ``a AND b``, creating a node if needed.

        Applies constant propagation and the trivial identities
        ``x*x = x`` and ``x*!x = 0`` before consulting the strash table.
        """
        self._check_lit(a)
        self._check_lit(b)
        if a > b:
            a, b = b, a
        if a == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return CONST0
        key = (a, b)
        node = self._strash.get(key)
        if node is not None and not self._dead[node]:
            return lit(node)
        node = self._new_node(a, b)
        self._strash[key] = node
        self._ref_lit(a)
        self._ref_lit(b)
        self._fanouts[lit_node(a)].append(node)
        self._fanouts[lit_node(b)].append(node)
        return lit(node)

    # Convenience gates, all expressed over AND/NOT.

    def add_or(self, a: int, b: int) -> int:
        """Return the literal of ``a OR b``."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        """Return the literal of ``a XOR b`` (two AND nodes)."""
        return lit_not(self.add_and(lit_not(self.add_and(a, lit_not(b))),
                                    lit_not(self.add_and(lit_not(a), b))))

    def add_mux(self, sel: int, t: int, e: int) -> int:
        """Return the literal of ``sel ? t : e``."""
        return lit_not(self.add_and(lit_not(self.add_and(sel, t)),
                                    lit_not(self.add_and(lit_not(sel), e))))

    def add_maj(self, a: int, b: int, c: int) -> int:
        """Return the literal of the majority of three literals."""
        return self.add_or(self.add_and(a, b),
                           self.add_or(self.add_and(a, c), self.add_and(b, c)))

    def add_and_multi(self, literals: Sequence[int]) -> int:
        """Balanced AND over a sequence of literals (CONST1 when empty)."""
        return self._reduce_balanced(list(literals), self.add_and, CONST1)

    def add_or_multi(self, literals: Sequence[int]) -> int:
        """Balanced OR over a sequence of literals (CONST0 when empty)."""
        return self._reduce_balanced(list(literals), self.add_or, CONST0)

    def add_xor_multi(self, literals: Sequence[int]) -> int:
        """Balanced XOR over a sequence of literals (CONST0 when empty)."""
        return self._reduce_balanced(list(literals), self.add_xor, CONST0)

    def _reduce_balanced(self, lits: List[int], op, empty: int) -> int:
        if not lits:
            return empty
        while len(lits) > 1:
            nxt = [op(lits[i], lits[i + 1]) for i in range(0, len(lits) - 1, 2)]
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    # -- structure queries ----------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic, globally unique stamp of the network's current shape.

        Any structural edit — node creation, PO changes, fanin patches,
        node deaths — advances it, invalidating generation-keyed caches
        (notably the compiled :class:`~repro.aig.simprogram.SimProgram`).
        """
        return self._generation

    def _touch(self) -> None:
        """Advance the generation after a structural edit."""
        self._generation = next(Aig._gen_source)

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    @property
    def num_ands(self) -> int:
        """Number of live AND nodes — the *size* of the network."""
        return len(self._fanin0) - 1 - len(self._pis) - self._n_dead_ands

    @property
    def size(self) -> int:
        """Alias for :attr:`num_ands` (the paper's "size")."""
        return self.num_ands

    @property
    def max_node(self) -> int:
        """Largest node id ever allocated (dead nodes included)."""
        return len(self._fanin0) - 1

    def pis(self) -> List[int]:
        """Node ids of the primary inputs, in declaration order."""
        return list(self._pis)

    def pi_literals(self) -> List[int]:
        """Positive literals of the primary inputs, in declaration order."""
        return [lit(n) for n in self._pis]

    def pos(self) -> List[int]:
        """PO literals in declaration order."""
        return list(self._pos)

    def pi_name(self, index: int) -> str:
        """Name of the *index*-th primary input."""
        return self._pi_names[index]

    def po_name(self, index: int) -> str:
        """Name of the *index*-th primary output."""
        return self._po_names[index]

    def is_const(self, node: int) -> bool:
        """True iff *node* is the constant node."""
        return node == 0

    def is_pi(self, node: int) -> bool:
        """True iff *node* is a primary input."""
        return self._fanin0[node] == -1 and node != 0

    def is_and(self, node: int) -> bool:
        """True iff *node* is a live AND gate."""
        return self._fanin0[node] >= 0 and not self._dead[node]

    def is_dead(self, node: int) -> bool:
        """True iff *node* has been removed by editing."""
        return self._dead[node]

    def fanin0(self, node: int) -> int:
        """First fanin literal of an AND node."""
        return self._fanin0[node]

    def fanin1(self, node: int) -> int:
        """Second fanin literal of an AND node."""
        return self._fanin1[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        """Both fanin literals of an AND node."""
        return self._fanin0[node], self._fanin1[node]

    def ref_count(self, node: int) -> int:
        """Number of references (fanouts plus PO uses) of *node*."""
        return self._nrefs[node]

    def fanout_nodes(self, node: int) -> List[int]:
        """Live AND nodes that use *node* as a fanin."""
        seen = set()
        out = []
        for t in self._fanouts[node]:
            if t in seen or self._dead[t]:
                continue
            if lit_node(self._fanin0[t]) == node or lit_node(self._fanin1[t]) == node:
                seen.add(t)
                out.append(t)
        if len(out) != len(self._fanouts[node]):
            self._fanouts[node] = list(out)
        return out

    def nodes(self) -> Iterator[int]:
        """All live nodes (constant, PIs and ANDs) in id order."""
        for node in range(len(self._fanin0)):
            if not self._dead[node]:
                yield node

    def ands(self) -> Iterator[int]:
        """All live AND nodes in id order (not necessarily topological)."""
        for node in range(len(self._fanin0)):
            if self._fanin0[node] >= 0 and not self._dead[node]:
                yield node

    # -- editing ---------------------------------------------------------------

    def replace(self, node: int, new_lit: int) -> None:
        """Redirect every use of *node* (fanouts and POs) to *new_lit*.

        This is the transformation primitive of every SBM engine: once a
        cheaper implementation of a node's function is built, ``replace``
        splices it in, merges any gates that become structurally identical,
        propagates constants, and dereferences the logic that became
        dangling (the node's MFFC).

        The caller must guarantee that *new_lit*'s cone does not contain
        *node*, otherwise a combinational cycle would be created.
        """
        self._check_lit(new_lit)
        if not self.is_and(node) and not self.is_pi(node):
            raise AigError(f"cannot replace node {node}")
        if lit_node(new_lit) == node:
            raise AigError("self-replacement")
        # Every queued replacement literal carries a protective reference
        # taken at queue time: a cascade kill triggered while the entry
        # waits must not collect the node it points at, or a live gate
        # would end up with a dead fanin.
        worklist: List[Tuple[int, int]] = [(node, new_lit)]
        self._ref_lit(new_lit)
        self._touch()
        while worklist:
            old_node, repl = worklist.pop()
            if self._dead[old_node] or lit_node(repl) == old_node:
                self._deref_lit(repl)
                continue
            for idx, po in enumerate(self._pos):
                if lit_node(po) == old_node:
                    self._pos[idx] = lit_notcond(repl, lit_is_compl(po))
                    self._ref_lit(self._pos[idx])
                    self._nrefs[old_node] -= 1
            for target in list(self.fanout_nodes(old_node)):
                if self._dead[target]:
                    continue
                merged = self._patch_fanin(target, old_node, repl)
                if merged is not None:
                    # _patch_fanin returned the literal already carrying the
                    # protective reference for this queue entry.
                    worklist.append((target, merged))
            # Collect the old cone, then drop the protective reference.
            if self.is_and(old_node):
                self._kill_if_dangling(old_node)
            self._deref_lit(repl)

    def _patch_fanin(self, target: int, old_node: int, repl: int) -> Optional[int]:
        """Rewrite *target*'s fanin literals that point at *old_node*.

        Returns a literal the *target itself* must be replaced with when the
        patched gate simplifies to a constant/copy or merges with an existing
        strashed gate; ``None`` when the target was updated in place.  A
        returned literal carries one protective reference (taken *before*
        the old fanins are dereferenced, whose kill cascade could otherwise
        collect it); the caller's worklist processing releases it.
        """
        f0, f1 = self._fanin0[target], self._fanin1[target]
        self._touch()
        self._strash.pop(self._strash_key(f0, f1), None)
        n0 = lit_notcond(repl, lit_is_compl(f0)) if lit_node(f0) == old_node else f0
        n1 = lit_notcond(repl, lit_is_compl(f1)) if lit_node(f1) == old_node else f1
        if n0 > n1:
            n0, n1 = n1, n0
        # Trivial simplifications after patching.
        simplified: Optional[int] = None
        if n0 == CONST0 or n0 == lit_not(n1):
            simplified = CONST0
        elif n0 == CONST1 or n0 == n1:
            simplified = n1
        if simplified is None:
            existing = self._strash.get((n0, n1))
            if existing is not None and not self._dead[existing] and existing != target:
                simplified = lit(existing)
        # Update fanin refs: protect everything the patched gate (or its
        # pending merge) will point at before releasing the old fanins —
        # the release can cascade kills through shared cones.
        if simplified is not None:
            self._ref_lit(simplified)
        self._ref_lit(n0)
        self._ref_lit(n1)
        self._deref_lit(f0)
        self._deref_lit(f1)
        if simplified is not None:
            # The target will be replaced; restore it to a consistent dead-able
            # state pointing at its new fanins so dereferencing works.
            self._fanin0[target] = n0
            self._fanin1[target] = n1
            return simplified
        self._fanin0[target] = n0
        self._fanin1[target] = n1
        self._strash[(n0, n1)] = target
        self._fanouts[lit_node(n0)].append(target)
        self._fanouts[lit_node(n1)].append(target)
        return None

    def _strash_key(self, f0: int, f1: int) -> Tuple[int, int]:
        return (f0, f1) if f0 <= f1 else (f1, f0)

    def _kill_if_dangling(self, node: int) -> None:
        """Recursively delete AND nodes whose reference count reached zero."""
        stack = [node]
        while stack:
            n = stack.pop()
            if not self.is_and(n) or self._nrefs[n] > 0:
                continue
            self._dead[n] = True
            self._n_dead_ands += 1
            self._touch()
            key = self._strash_key(self._fanin0[n], self._fanin1[n])
            if self._strash.get(key) == n:
                del self._strash[key]
            for f in (self._fanin0[n], self._fanin1[n]):
                fn = lit_node(f)
                self._nrefs[fn] -= 1
                if self._nrefs[fn] == 0 and self.is_and(fn):
                    stack.append(fn)

    def protect(self, literal: int) -> None:
        """Take an external reference on a literal's node.

        Keeps freshly built logic alive across intervening :meth:`replace`
        calls; pair with :meth:`unprotect`.
        """
        self._ref_lit(literal)

    def unprotect(self, literal: int) -> None:
        """Drop a reference taken with :meth:`protect` (may collect the cone)."""
        self._deref_lit(literal)

    # -- MFFC -------------------------------------------------------------------

    def mffc_size(self, node: int) -> int:
        """Size of the Maximum Fanout-Free Cone of *node*.

        The MFFC is the set of AND nodes that would become dangling if *node*
        were removed — the "saving" term of Alg. 1 line 11.  Computed with
        the classic deref/ref trick, leaving reference counts unchanged.
        """
        if not self.is_and(node):
            return 0
        count, touched = self._deref_mffc(node)
        for n in touched:
            self._nrefs[n] += 1
        return count

    def mffc_nodes(self, node: int) -> List[int]:
        """The AND nodes inside the MFFC of *node* (including *node*)."""
        if not self.is_and(node):
            return []
        nodes = [node]
        _count, touched = self._deref_mffc(node, collect=nodes)
        for n in touched:
            self._nrefs[n] += 1
        return nodes

    def _deref_mffc(self, node: int, collect: Optional[List[int]] = None):
        count = 1
        touched: List[int] = []
        stack = [node]
        while stack:
            n = stack.pop()
            for f in (self._fanin0[n], self._fanin1[n]):
                fn = lit_node(f)
                self._nrefs[fn] -= 1
                touched.append(fn)
                if self._nrefs[fn] == 0 and self.is_and(fn):
                    count += 1
                    if collect is not None:
                        collect.append(fn)
                    stack.append(fn)
        return count, touched

    # -- traversal helpers (see traversal.py for the heavier ones) ---------------

    def topological_order(self) -> List[int]:
        """Live AND nodes in topological (fanin-before-fanout) order."""
        order: List[int] = []
        visited = bytearray(len(self._fanin0))
        stack: List[int] = []
        for po in self._pos:
            root = lit_node(po)
            if visited[root] or not self.is_and(root):
                continue
            stack.append(root)
            while stack:
                n = stack[-1]
                if visited[n] == 2:
                    stack.pop()
                    continue
                if visited[n] == 0:
                    visited[n] = 1
                    for f in (self._fanin0[n], self._fanin1[n]):
                        fn = lit_node(f)
                        if self.is_and(fn) and visited[fn] == 0:
                            stack.append(fn)
                else:
                    visited[n] = 2
                    order.append(n)
                    stack.pop()
        return order

    def levels(self) -> Dict[int, int]:
        """Level (logic depth) of every live node reachable from the POs."""
        level = {0: 0}
        for p in self._pis:
            level[p] = 0
        for n in self.topological_order():
            level[n] = 1 + max(level[lit_node(self._fanin0[n])],
                               level[lit_node(self._fanin1[n])])
        return level

    @property
    def depth(self) -> int:
        """Number of levels of the network (the paper's "level count")."""
        level = self.levels()
        return max((level.get(lit_node(po), 0) for po in self._pos), default=0)

    # -- copying / compaction ------------------------------------------------------

    def cleanup(self) -> "Aig":
        """Return a compacted copy containing only logic reachable from POs."""
        new, _mapping = self.cleanup_with_map()
        return new

    def cleanup_with_map(self) -> Tuple["Aig", Dict[int, int]]:
        """Like :meth:`cleanup`, also returning the old-node → new-literal map."""
        new = Aig(self.name)
        mapping: Dict[int, int] = {0: CONST0}
        for i, p in enumerate(self._pis):
            mapping[p] = new.add_pi(self._pi_names[i])
        for n in self.topological_order():
            f0, f1 = self._fanin0[n], self._fanin1[n]
            a = lit_notcond(mapping[lit_node(f0)], lit_is_compl(f0))
            b = lit_notcond(mapping[lit_node(f1)], lit_is_compl(f1))
            mapping[n] = new.add_and(a, b)
        for i, po in enumerate(self._pos):
            new.add_po(lit_notcond(mapping[lit_node(po)], lit_is_compl(po)),
                       self._po_names[i])
        return new, mapping

    def clone(self) -> "Aig":
        """Deep copy preserving structure (via :meth:`cleanup`)."""
        return self.cleanup()

    # -- misc ---------------------------------------------------------------------

    def check(self) -> None:
        """Validate internal invariants; raise :class:`AigError` on corruption."""
        refs = [0] * len(self._fanin0)
        for n in self.ands():
            f0, f1 = self._fanin0[n], self._fanin1[n]
            for f in (f0, f1):
                if self._dead[lit_node(f)]:
                    raise AigError(f"node {n} has dead fanin {lit_node(f)}")
                refs[lit_node(f)] += 1
            if self._strash.get(self._strash_key(f0, f1)) != n:
                raise AigError(f"node {n} missing from strash table")
        for po in self._pos:
            if self._dead[lit_node(po)]:
                raise AigError("PO points at dead node")
            refs[lit_node(po)] += 1
        for n in self.nodes():
            if refs[n] != self._nrefs[n]:
                raise AigError(f"refcount mismatch at node {n}: "
                               f"{self._nrefs[n]} stored vs {refs[n]} actual")

    def stats(self) -> Dict[str, int]:
        """Summary statistics: inputs, outputs, size and depth."""
        return {
            "pis": self.num_pis,
            "pos": self.num_pos,
            "ands": self.num_ands,
            "levels": self.depth,
        }

    def __repr__(self) -> str:
        return (f"Aig(name={self.name!r}, pis={self.num_pis}, "
                f"pos={self.num_pos}, ands={self.num_ands})")

    # -- internals -------------------------------------------------------------------

    def _new_node(self, f0: int, f1: int) -> int:
        self._fanin0.append(f0)
        self._fanin1.append(f1)
        self._nrefs.append(0)
        self._dead.append(False)
        self._fanouts.append([])
        self._touch()
        return len(self._fanin0) - 1

    def _ref_lit(self, literal: int) -> None:
        self._nrefs[lit_node(literal)] += 1

    def _deref_lit(self, literal: int) -> None:
        node = lit_node(literal)
        self._nrefs[node] -= 1
        if self._nrefs[node] == 0 and self.is_and(node):
            self._kill_if_dangling(node)

    def _check_lit(self, literal: int) -> None:
        node = lit_node(literal)
        if literal < 0 or node >= len(self._fanin0):
            raise AigError(f"literal {literal} out of range")
        if self._dead[node]:
            raise AigError(f"literal {literal} points at dead node {node}")
