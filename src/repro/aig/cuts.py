"""K-feasible cut enumeration over AIGs.

Cuts are the windows on which local Boolean methods operate: the rewriting
move of the gradient engine evaluates replacement structures per cut, and the
LUT-6 mapper of the Table I experiment covers the network with 6-feasible
cuts.  A *cut* of node ``n`` is a set of nodes (leaves) such that every path
from a PI to ``n`` passes through a leaf; it is K-feasible when it has at most
K leaves.

The enumerator is the classic bottom-up cross-product with per-node priority
lists, keeping at most ``cut_limit`` cuts per node ranked by size — the same
pruning used by ABC's mappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aig.aig import Aig, lit_is_compl, lit_node
from repro.aig.traversal import topological_order_all

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - older interpreters
    def _popcount(value: int) -> int:
        return bin(value).count("1")


@dataclass(frozen=True)
class Cut:
    """An immutable cut: sorted leaf tuple plus the truth table over leaves.

    The truth table (when computed) is an integer over ``2**len(leaves)``
    bits, with leaf 0 the least significant variable.

    Each cut carries a precomputed *leaf-bitmask signature* — the OR of
    ``1 << leaf`` over its leaves.  Because every leaf maps to exactly one
    bit, ``sig_a & sig_b == sig_a`` is not a filter but the *exact* subset
    test, so :meth:`dominates` (the hottest comparison of cut enumeration)
    never builds a set.
    """

    leaves: Tuple[int, ...]
    table: Optional[int] = field(default=None, compare=False)
    sig: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.sig == 0 and self.leaves:
            mask = 0
            for leaf in self.leaves:
                mask |= 1 << leaf
            object.__setattr__(self, "sig", mask)

    def __len__(self) -> int:
        return len(self.leaves)

    def dominates(self, other: "Cut") -> bool:
        """True when this cut's leaves are a subset of *other*'s."""
        return self.sig & other.sig == self.sig


def enumerate_cuts(aig: Aig, k: int = 4, cut_limit: int = 8,
                   compute_tables: bool = False) -> Dict[int, List[Cut]]:
    """Enumerate up to *cut_limit* K-feasible cuts for every live node.

    Every node always keeps its trivial cut ``{n}`` (required for mapping).
    With ``compute_tables=True`` each cut carries its local truth table,
    enabling NPN-class lookups during rewriting.

    Returns a dict from node id to its cut list; PIs and the constant node
    have only their trivial cut.
    """
    cuts: Dict[int, List[Cut]] = {0: [Cut((0,), 0 if compute_tables else None)]}
    for p in aig.pis():
        cuts[p] = [Cut((p,), 0b10 if compute_tables else None)]
    for n in topological_order_all(aig):
        f0, f1 = aig.fanins(n)
        n0, n1 = lit_node(f0), lit_node(f1)
        c0, c1 = lit_is_compl(f0), lit_is_compl(f1)
        merged: List[Cut] = []
        for cut_a in cuts[n0]:
            sig_a = cut_a.sig
            for cut_b in cuts[n1]:
                # Signature union rejects oversized merges before any
                # tuple/set is built; each leaf is one bit, so the
                # popcount is the exact merged leaf count.
                sig = sig_a | cut_b.sig
                if _popcount(sig) > k:
                    continue
                if sig == sig_a:
                    leaves = cut_a.leaves
                elif sig == cut_b.sig:
                    leaves = cut_b.leaves
                else:
                    leaves = tuple(sorted(set(cut_a.leaves) | set(cut_b.leaves)))
                table = None
                if compute_tables:
                    table = _merge_tables(cut_a, cut_b, leaves, c0, c1)
                merged.append(Cut(leaves, table, sig))
        merged = _filter_cuts(merged, cut_limit)
        trivial_table = 0b10 if compute_tables else None
        merged.append(Cut((n,), trivial_table))
        cuts[n] = merged
    return cuts


def _filter_cuts(cands: List[Cut], limit: int) -> List[Cut]:
    """Remove duplicate and dominated cuts, keep the *limit* smallest."""
    cands.sort(key=lambda c: (len(c.leaves), c.leaves))
    kept: List[Cut] = []
    seen = set()
    for cut in cands:
        if cut.leaves in seen:
            continue
        if any(prev.dominates(cut) for prev in kept):
            continue
        seen.add(cut.leaves)
        kept.append(cut)
        if len(kept) >= limit:
            break
    return kept


def _merge_tables(cut_a: Cut, cut_b: Cut, leaves: Tuple[int, ...],
                  compl_a: bool, compl_b: bool) -> int:
    """Truth table of the AND of two fanin cuts over the merged leaf set."""
    nvars = len(leaves)
    nbits = 1 << nvars
    mask = (1 << nbits) - 1
    ta = _expand_table(cut_a.table, cut_a.leaves, leaves, nbits)
    tb = _expand_table(cut_b.table, cut_b.leaves, leaves, nbits)
    if compl_a:
        ta ^= mask
    if compl_b:
        tb ^= mask
    return ta & tb


def _expand_table(table: int, from_leaves: Tuple[int, ...],
                  to_leaves: Tuple[int, ...], nbits: int) -> int:
    """Re-express *table* (over *from_leaves*) over the superset *to_leaves*."""
    if from_leaves == to_leaves:
        return table
    positions = [to_leaves.index(leaf) for leaf in from_leaves]
    out = 0
    for row in range(nbits):
        idx = 0
        for bit, pos in enumerate(positions):
            if (row >> pos) & 1:
                idx |= 1 << bit
        if (table >> idx) & 1:
            out |= 1 << row
    return out


def cut_cone_size(aig: Aig, node: int, cut: Cut) -> int:
    """Number of AND nodes strictly inside *cut* rooted at *node*."""
    leaves = set(cut.leaves)
    if node in leaves:
        return 0
    seen = set()
    stack = [node]
    while stack:
        n = stack.pop()
        if n in seen or n in leaves or not aig.is_and(n):
            continue
        seen.add(n)
        stack.extend(lit_node(f) for f in aig.fanins(n))
    return len(seen)


def cut_volume_refs(aig: Aig, node: int, cut: Cut) -> int:
    """Nodes of the cut cone whose only fanouts stay inside the cone.

    This approximates the gain of replacing the cone: nodes referenced from
    outside survive the rewrite, the rest are reclaimed (MFFC-style counting
    restricted to the cut cone).
    """
    leaves = set(cut.leaves)
    cone = []
    seen = set()
    stack = [node]
    while stack:
        n = stack.pop()
        if n in seen or n in leaves or not aig.is_and(n):
            continue
        seen.add(n)
        cone.append(n)
        stack.extend(lit_node(f) for f in aig.fanins(n))
    reclaim = 0
    for n in cone:
        if n == node:
            reclaim += 1
            continue
        if all(t in seen for t in aig.fanout_nodes(n)) and aig.ref_count(n) == len(aig.fanout_nodes(n)):
            reclaim += 1
    return reclaim
