"""Word-level circuit composition helpers.

The EPFL arithmetic benchmarks (adder, mult, div, sqrt, square, hypotenuse,
log2, sin, max, bar) are word-level operators; this module provides the
building blocks to construct them gate-by-gate on an :class:`~repro.aig.Aig`.
All functions take and return lists of literals, least-significant bit first.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aig.aig import CONST0, CONST1, Aig, lit_not
from repro.errors import AigError


def full_adder(aig: Aig, a: int, b: int, cin: int) -> Tuple[int, int]:
    """One-bit full adder; returns ``(sum, carry_out)``."""
    s = aig.add_xor(aig.add_xor(a, b), cin)
    c = aig.add_maj(a, b, cin)
    return s, c


def ripple_adder(aig: Aig, a: Sequence[int], b: Sequence[int],
                 cin: int = CONST0) -> Tuple[List[int], int]:
    """Ripple-carry addition of two equal-width words; returns (sum, carry)."""
    if len(a) != len(b):
        raise AigError("adder operand widths differ")
    out: List[int] = []
    carry = cin
    for bit_a, bit_b in zip(a, b):
        s, carry = full_adder(aig, bit_a, bit_b, carry)
        out.append(s)
    return out, carry


def subtractor(aig: Aig, a: Sequence[int], b: Sequence[int]) -> Tuple[List[int], int]:
    """Two's-complement subtraction ``a - b``; returns (difference, borrow).

    The returned *borrow* is 1 when ``a < b`` (unsigned).
    """
    diff, carry = ripple_adder(aig, list(a), [lit_not(x) for x in b], CONST1)
    return diff, lit_not(carry)


def less_than(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned comparison literal for ``a < b``."""
    _diff, borrow = subtractor(aig, a, b)
    return borrow


def equal(aig: Aig, a: Sequence[int], b: Sequence[int]) -> int:
    """Equality literal for two equal-width words."""
    bits = [lit_not(aig.add_xor(x, y)) for x, y in zip(a, b)]
    return aig.add_and_multi(bits)


def mux_word(aig: Aig, sel: int, t: Sequence[int], e: Sequence[int]) -> List[int]:
    """Bitwise two-way multiplexer: ``sel ? t : e``."""
    if len(t) != len(e):
        raise AigError("mux operand widths differ")
    return [aig.add_mux(sel, x, y) for x, y in zip(t, e)]


def max_word(aig: Aig, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Unsigned maximum of two words (the EPFL *max* primitive)."""
    a_smaller = less_than(aig, a, b)
    return mux_word(aig, a_smaller, b, a)


def multiplier(aig: Aig, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Unsigned array multiplier; result width is ``len(a) + len(b)``."""
    width = len(a) + len(b)
    acc: List[int] = [CONST0] * width
    for i, bit_b in enumerate(b):
        partial = [CONST0] * i + [aig.add_and(bit_a, bit_b) for bit_a in a]
        partial += [CONST0] * (width - len(partial))
        acc, _carry = ripple_adder(aig, acc, partial)
    return acc


def square(aig: Aig, a: Sequence[int]) -> List[int]:
    """Unsigned squarer (EPFL *square*): ``a * a`` with width ``2*len(a)``."""
    return multiplier(aig, a, a)


def divider(aig: Aig, num: Sequence[int], den: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Restoring array divider; returns (quotient, remainder).

    Matches the EPFL *div* benchmark semantics (quotient and remainder
    outputs).  Division by zero yields all-ones quotient, remainder = num,
    as produced by the restoring scheme with borrow inspection.
    """
    n = len(num)
    den_ext = list(den) + [CONST0]
    rem: List[int] = [CONST0] * (n + 1)
    quot: List[int] = [CONST0] * n
    for i in range(n - 1, -1, -1):
        rem = [num[i]] + rem[:-1]
        diff, borrow = subtractor(aig, rem, den_ext)
        take = lit_not(borrow)  # rem >= den
        rem = mux_word(aig, take, diff, rem)
        quot[i] = take
    return quot, rem[:n]


def isqrt(aig: Aig, a: Sequence[int]) -> List[int]:
    """Integer square root of a ``2k``-bit word, ``k`` output bits (EPFL *sqrt*).

    Uses the restoring digit-recurrence method: each iteration appends two
    operand bits to the partial remainder and conditionally subtracts the
    trial value ``(root << 2) | 1``.
    """
    if len(a) % 2:
        a = list(a) + [CONST0]
    k = len(a) // 2
    root: List[int] = []
    rem: List[int] = []
    for i in range(k - 1, -1, -1):
        rem = [a[2 * i], a[2 * i + 1]] + rem
        trial = [CONST1, CONST0] + root  # (root << 2) | 1, LSB first
        width = max(len(rem), len(trial) + 1)
        rem_ext = list(rem) + [CONST0] * (width - len(rem))
        trial_ext = list(trial) + [CONST0] * (width - len(trial))
        diff, borrow = subtractor(aig, rem_ext, trial_ext)
        take = lit_not(borrow)
        rem = mux_word(aig, take, diff, rem_ext)
        root = [take] + root
    return root


def hypotenuse(aig: Aig, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """EPFL *hypotenuse*: ``isqrt(a*a + b*b)`` over equal-width operands."""
    sq_a = square(aig, a)
    sq_b = square(aig, b)
    total, carry = ripple_adder(aig, sq_a, sq_b)
    total = total + [carry]
    if len(total) % 2:
        total.append(CONST0)
    return isqrt(aig, total)


def barrel_shifter(aig: Aig, data: Sequence[int], shift: Sequence[int]) -> List[int]:
    """Logarithmic left-rotate barrel shifter (EPFL *bar* style)."""
    word = list(data)
    n = len(word)
    for stage, sel in enumerate(shift):
        amount = (1 << stage) % n
        rotated = word[-amount:] + word[:-amount] if amount else word
        word = mux_word(aig, sel, rotated, word)
    return word


def popcount(aig: Aig, bits: Sequence[int]) -> List[int]:
    """Population count using a balanced adder tree (used by *voter*)."""
    words: List[List[int]] = [[b] for b in bits]
    while len(words) > 1:
        nxt: List[List[int]] = []
        for i in range(0, len(words) - 1, 2):
            a, b = words[i], words[i + 1]
            width = max(len(a), len(b))
            a = a + [CONST0] * (width - len(a))
            b = b + [CONST0] * (width - len(b))
            total, carry = ripple_adder(aig, a, b)
            nxt.append(total + [carry])
        if len(words) % 2:
            nxt.append(words[-1])
        words = nxt
    return words[0]


def constant_word(value: int, width: int) -> List[int]:
    """Literal list encoding *value* as an unsigned *width*-bit constant."""
    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def decoder(aig: Aig, sel: Sequence[int]) -> List[int]:
    """Full binary decoder: ``2**len(sel)`` one-hot outputs."""
    outs = [CONST1]
    for s in sel:
        outs = [aig.add_and(o, lit_not(s)) for o in outs] + \
               [aig.add_and(o, s) for o in outs]
    return outs


def onehot_mux(aig: Aig, selects: Sequence[int], data: Sequence[int]) -> int:
    """OR of ``select_i AND data_i`` — one-hot multiplexer."""
    if len(selects) != len(data):
        raise AigError("one-hot mux width mismatch")
    return aig.add_or_multi([aig.add_and(s, d) for s, d in zip(selects, data)])
