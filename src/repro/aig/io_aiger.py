"""Reading and writing AIGs in the ASCII AIGER (``.aag``) format.

The EPFL suite distributes its benchmarks as AIGER files; this module lets the
reproduction exchange circuits with external tools (ABC, mockturtle) and store
generated benchmarks on disk.  Only the combinational subset (no latches) is
supported, matching the paper's scope.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from repro.aig.aig import Aig, lit_is_compl, lit_node, lit_notcond
from repro.errors import AigError


def write_aag(aig: Aig, target: Union[str, TextIO]) -> None:
    """Write *aig* as an ASCII AIGER file to a path or file object.

    Nodes are renumbered densely (PIs first, ANDs in topological order), so a
    round trip through :func:`read_aag` yields a compacted network.
    """
    if isinstance(target, str):
        with open(target, "w", encoding="ascii") as handle:
            write_aag(aig, handle)
            return
    order = aig.topological_order()
    mapping = {0: 0}
    for i, p in enumerate(aig.pis()):
        mapping[p] = 2 * (i + 1)
    for j, n in enumerate(order):
        mapping[n] = 2 * (aig.num_pis + 1 + j)

    def map_lit(literal: int) -> int:
        return mapping[lit_node(literal)] | (1 if lit_is_compl(literal) else 0)

    max_var = aig.num_pis + len(order)
    target.write(f"aag {max_var} {aig.num_pis} 0 {aig.num_pos} {len(order)}\n")
    for i in range(aig.num_pis):
        target.write(f"{2 * (i + 1)}\n")
    for po in aig.pos():
        target.write(f"{map_lit(po)}\n")
    for n in order:
        f0, f1 = aig.fanins(n)
        a, b = map_lit(f0), map_lit(f1)
        if a < b:
            a, b = b, a
        target.write(f"{mapping[n]} {a} {b}\n")
    for i in range(aig.num_pis):
        target.write(f"i{i} {aig.pi_name(i)}\n")
    for i in range(aig.num_pos):
        target.write(f"o{i} {aig.po_name(i)}\n")


def write_aag_string(aig: Aig) -> str:
    """Serialize *aig* to an ASCII AIGER string."""
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def read_aag(source: Union[str, TextIO], name: str = "aag") -> Aig:
    """Parse an ASCII AIGER file from a path, file object, or literal text."""
    if isinstance(source, str):
        if source.lstrip().startswith("aag "):
            return _parse_aag(io.StringIO(source), name)
        with open(source, "r", encoding="ascii") as handle:
            return _parse_aag(handle, name)
    return _parse_aag(source, name)


def _parse_aag(handle: TextIO, name: str) -> Aig:
    header = handle.readline().split()
    if len(header) < 6 or header[0] != "aag":
        raise AigError(f"not an ASCII AIGER header: {header}")
    _max_var, num_in, num_latch, num_out, num_and = (int(x) for x in header[1:6])
    if num_latch:
        raise AigError("sequential AIGER files are not supported")
    aig = Aig(name)
    in_lits: List[int] = []
    for _ in range(num_in):
        line = handle.readline().split()
        in_lits.append(int(line[0]))
    out_lits: List[int] = []
    for _ in range(num_out):
        out_lits.append(int(handle.readline().split()[0]))
    and_rows = []
    for _ in range(num_and):
        row = handle.readline().split()
        and_rows.append((int(row[0]), int(row[1]), int(row[2])))

    mapping = {0: 0}
    pi_lits = aig.add_pis(num_in)
    for file_lit, our_lit in zip(in_lits, pi_lits):
        if file_lit & 1:
            raise AigError("complemented input definition")
        mapping[file_lit >> 1] = our_lit

    def resolve(file_lit: int) -> int:
        node = file_lit >> 1
        if node not in mapping:
            raise AigError(f"literal {file_lit} used before definition")
        return lit_notcond(mapping[node], bool(file_lit & 1))

    # AIGER guarantees definitions before uses for ANDs in well-formed files,
    # but sort defensively by lhs just in case.
    and_rows.sort(key=lambda row: row[0])
    for lhs, rhs0, rhs1 in and_rows:
        if lhs & 1:
            raise AigError("complemented AND definition")
        mapping[lhs >> 1] = aig.add_and(resolve(rhs0), resolve(rhs1))

    # Symbol table (optional).
    pi_names = {}
    po_names = {}
    for line in handle:
        line = line.strip()
        if not line or line == "c":
            break
        if line[0] == "i":
            idx, _sep, symbol = line[1:].partition(" ")
            pi_names[int(idx)] = symbol
        elif line[0] == "o":
            idx, _sep, symbol = line[1:].partition(" ")
            po_names[int(idx)] = symbol

    for i, file_lit in enumerate(out_lits):
        aig.add_po(resolve(file_lit), po_names.get(i))
    for i, symbol in pi_names.items():
        aig._pi_names[i] = symbol
    return aig
