"""Reading and writing AIGs in the ASCII AIGER (``.aag``) format.

The EPFL suite distributes its benchmarks as AIGER files; this module lets the
reproduction exchange circuits with external tools (ABC, mockturtle) and store
generated benchmarks on disk.  Only the combinational subset (no latches) is
supported, matching the paper's scope.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from repro.aig.aig import Aig, lit_is_compl, lit_node, lit_notcond
from repro.errors import AigerParseError


def write_aag(aig: Aig, target: Union[str, TextIO]) -> None:
    """Write *aig* as an ASCII AIGER file to a path or file object.

    Nodes are renumbered densely (PIs first, ANDs in topological order), so a
    round trip through :func:`read_aag` yields a compacted network.
    """
    if isinstance(target, str):
        with open(target, "w", encoding="ascii") as handle:
            write_aag(aig, handle)
            return
    order = aig.topological_order()
    mapping = {0: 0}
    for i, p in enumerate(aig.pis()):
        mapping[p] = 2 * (i + 1)
    for j, n in enumerate(order):
        mapping[n] = 2 * (aig.num_pis + 1 + j)

    def map_lit(literal: int) -> int:
        return mapping[lit_node(literal)] | (1 if lit_is_compl(literal) else 0)

    max_var = aig.num_pis + len(order)
    target.write(f"aag {max_var} {aig.num_pis} 0 {aig.num_pos} {len(order)}\n")
    for i in range(aig.num_pis):
        target.write(f"{2 * (i + 1)}\n")
    for po in aig.pos():
        target.write(f"{map_lit(po)}\n")
    for n in order:
        f0, f1 = aig.fanins(n)
        a, b = map_lit(f0), map_lit(f1)
        if a < b:
            a, b = b, a
        target.write(f"{mapping[n]} {a} {b}\n")
    for i in range(aig.num_pis):
        target.write(f"i{i} {aig.pi_name(i)}\n")
    for i in range(aig.num_pos):
        target.write(f"o{i} {aig.po_name(i)}\n")


def write_aag_string(aig: Aig) -> str:
    """Serialize *aig* to an ASCII AIGER string."""
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def read_aag(source: Union[str, TextIO], name: str = "aag") -> Aig:
    """Parse an ASCII AIGER file from a path, file object, or literal text."""
    if isinstance(source, str):
        if source.lstrip().startswith("aag "):
            return _parse_aag(io.StringIO(source), name)
        with open(source, "r", encoding="ascii") as handle:
            return _parse_aag(handle, name)
    return _parse_aag(source, name)


def _parse_aag(handle: TextIO, name: str) -> Aig:
    reader = _LineReader(handle)
    header = reader.next_fields("AIGER header")
    if len(header) < 6 or header[0] != "aag":
        raise AigerParseError(f"not an ASCII AIGER header: {header}",
                              line=reader.line)
    _max_var, num_in, num_latch, num_out, num_and = (
        reader.to_int(x, "header field") for x in header[1:6])
    if min(_max_var, num_in, num_latch, num_out, num_and) < 0:
        raise AigerParseError("negative count in AIGER header",
                              line=reader.line)
    if num_latch:
        raise AigerParseError("sequential AIGER files are not supported",
                              line=reader.line)
    max_lit = 2 * _max_var + 1
    aig = Aig(name)
    in_lits: List[int] = []
    for _ in range(num_in):
        fields = reader.next_fields("input definition")
        in_lits.append(reader.literal(fields[0], max_lit, "input"))
    out_lits: List[int] = []
    out_lines: List[int] = []
    for _ in range(num_out):
        fields = reader.next_fields("output definition")
        out_lits.append(reader.literal(fields[0], max_lit, "output"))
        out_lines.append(reader.line)
    and_rows = []
    for _ in range(num_and):
        row = reader.next_fields("AND definition")
        if len(row) < 3:
            raise AigerParseError(
                f"AND definition needs 3 literals, got {len(row)}",
                line=reader.line)
        and_rows.append((reader.literal(row[0], max_lit, "AND lhs"),
                         reader.literal(row[1], max_lit, "AND rhs"),
                         reader.literal(row[2], max_lit, "AND rhs"),
                         reader.line))

    mapping = {0: 0}
    pi_lits = aig.add_pis(num_in)
    for file_lit, our_lit in zip(in_lits, pi_lits):
        if file_lit & 1:
            raise AigerParseError(
                f"complemented input definition {file_lit}")
        if file_lit >> 1 in mapping:
            raise AigerParseError(
                f"input literal {file_lit} redefines variable "
                f"{file_lit >> 1}")
        mapping[file_lit >> 1] = our_lit

    def resolve(file_lit: int, line: int) -> int:
        node = file_lit >> 1
        if node not in mapping:
            raise AigerParseError(
                f"literal {file_lit} used before definition", line=line)
        return lit_notcond(mapping[node], bool(file_lit & 1))

    # AIGER guarantees definitions before uses for ANDs in well-formed files,
    # but sort defensively by lhs just in case.
    and_rows.sort(key=lambda row: row[0])
    for lhs, rhs0, rhs1, line in and_rows:
        if lhs & 1:
            raise AigerParseError(f"complemented AND definition {lhs}",
                                  line=line)
        if lhs >> 1 in mapping:
            raise AigerParseError(
                f"AND literal {lhs} redefines variable {lhs >> 1}",
                line=line)
        mapping[lhs >> 1] = aig.add_and(resolve(rhs0, line),
                                        resolve(rhs1, line))

    # Symbol table (optional).
    pi_names = {}
    po_names = {}
    for line in handle:
        reader.line += 1
        line = line.strip()
        if not line or line == "c":
            break
        if line[0] == "i":
            idx, _sep, symbol = line[1:].partition(" ")
            pi_names[reader.symbol_index(idx, num_in, "input")] = symbol
        elif line[0] == "o":
            idx, _sep, symbol = line[1:].partition(" ")
            po_names[reader.symbol_index(idx, num_out, "output")] = symbol

    for i, file_lit in enumerate(out_lits):
        aig.add_po(resolve(file_lit, out_lines[i]), po_names.get(i))
    for i, symbol in pi_names.items():
        aig._pi_names[i] = symbol
    return aig


class _LineReader:
    """Line-tracking reads so every parse defect can name its line."""

    def __init__(self, handle: TextIO) -> None:
        self.handle = handle
        self.line = 0

    def next_fields(self, what: str) -> List[str]:
        """Fields of the next line; raises on EOF or a blank line."""
        text = self.handle.readline()
        self.line += 1
        if not text:
            raise AigerParseError(f"unexpected end of file, expected {what}",
                                  line=self.line)
        fields = text.split()
        if not fields:
            raise AigerParseError(f"blank line where {what} was expected",
                                  line=self.line)
        return fields

    def to_int(self, token: str, what: str) -> int:
        try:
            return int(token)
        except ValueError:
            raise AigerParseError(f"{what} is not an integer: {token!r}",
                                  line=self.line) from None

    def literal(self, token: str, max_lit: int, what: str) -> int:
        value = self.to_int(token, f"{what} literal")
        if value < 0 or value > max_lit:
            raise AigerParseError(
                f"{what} literal {value} outside the header's range "
                f"0..{max_lit}", line=self.line)
        return value

    def symbol_index(self, token: str, count: int, what: str) -> int:
        index = self.to_int(token, f"{what} symbol index")
        if index < 0 or index >= count:
            raise AigerParseError(
                f"{what} symbol index {index} out of range (have {count})",
                line=self.line)
        return index
