"""Binary AIGER (``.aig``) reading and writing.

The EPFL suite (and most AIGER tooling) distributes circuits in the binary
format: inputs are implicit, AND definitions are consecutive, and each AND
stores two deltas in LEB128-style 7-bit groups.  Supporting it makes the
reproduction interoperable with the real benchmark files when they are
available.

Only the combinational subset is handled (no latches), like the ASCII
reader.
"""

from __future__ import annotations

import io
from typing import BinaryIO, List, Union

from repro.aig.aig import Aig, lit_is_compl, lit_node, lit_notcond
from repro.errors import AigerParseError


def _encode_delta(value: int, out: bytearray) -> None:
    """LEB128-style encoding used by AIGER: 7 bits per byte, MSB = more."""
    while value >= 0x80:
        out.append(0x80 | (value & 0x7F))
        value >>= 7
    out.append(value)


class _ByteReader:
    """Byte-counting reads so every parse defect can name its offset."""

    def __init__(self, handle: BinaryIO) -> None:
        self.handle = handle
        self.offset = 0

    def read1(self) -> bytes:
        raw = self.handle.read(1)
        self.offset += len(raw)
        return raw


def _decode_delta(reader: _ByteReader) -> int:
    value = 0
    shift = 0
    while True:
        raw = reader.read1()
        if not raw:
            raise AigerParseError("truncated binary AIGER delta",
                                  offset=reader.offset)
        byte = raw[0]
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7


def write_aig_binary(aig: Aig, target: Union[str, BinaryIO]) -> None:
    """Write *aig* in the binary AIGER format.

    Nodes are renumbered densely with PIs first and ANDs topologically, as
    the format requires (every AND literal must exceed both its operands).
    """
    if isinstance(target, str):
        with open(target, "wb") as handle:
            write_aig_binary(aig, handle)
            return
    order = aig.topological_order()
    mapping = {0: 0}
    for i, p in enumerate(aig.pis()):
        mapping[p] = 2 * (i + 1)
    for j, n in enumerate(order):
        mapping[n] = 2 * (aig.num_pis + 1 + j)

    def map_lit(literal: int) -> int:
        return mapping[lit_node(literal)] | (1 if lit_is_compl(literal) else 0)

    max_var = aig.num_pis + len(order)
    header = (f"aig {max_var} {aig.num_pis} 0 {aig.num_pos} "
              f"{len(order)}\n").encode("ascii")
    target.write(header)
    for po in aig.pos():
        target.write(f"{map_lit(po)}\n".encode("ascii"))
    body = bytearray()
    for n in order:
        lhs = mapping[n]
        a, b = map_lit(aig.fanin0(n)), map_lit(aig.fanin1(n))
        if a < b:
            a, b = b, a
        _encode_delta(lhs - a, body)
        _encode_delta(a - b, body)
    target.write(bytes(body))
    # Symbol table.
    symbols = []
    for i in range(aig.num_pis):
        symbols.append(f"i{i} {aig.pi_name(i)}\n")
    for i in range(aig.num_pos):
        symbols.append(f"o{i} {aig.po_name(i)}\n")
    target.write("".join(symbols).encode("ascii"))


def read_aig_binary(source: Union[str, bytes, BinaryIO],
                    name: str = "aig") -> Aig:
    """Parse a binary AIGER file from a path, bytes, or binary file object."""
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return read_aig_binary(handle, name)
    if isinstance(source, bytes):
        return read_aig_binary(io.BytesIO(source), name)
    reader = _ByteReader(source)
    header = _read_line(reader).split()
    if len(header) < 6 or header[0] != "aig":
        raise AigerParseError(f"not a binary AIGER header: {header}",
                              offset=0)
    max_var, num_in, num_latch, num_out, num_and = (
        _to_int(x, "header field", reader) for x in header[1:6])
    if min(max_var, num_in, num_latch, num_out, num_and) < 0:
        raise AigerParseError("negative count in binary AIGER header",
                              offset=0)
    if num_latch:
        raise AigerParseError(
            "sequential binary AIGER files are not supported", offset=0)
    if max_var != num_in + num_and:
        raise AigerParseError(
            f"inconsistent binary AIGER header: max_var {max_var} != "
            f"inputs {num_in} + ands {num_and}", offset=0)
    aig = Aig(name)
    max_lit = 2 * max_var + 1
    literal_of: List[int] = [0]  # file variable -> our literal
    for literal in aig.add_pis(num_in):
        literal_of.append(literal)
    out_lits = []
    for _ in range(num_out):
        value = _to_int(_read_line(reader), "output literal", reader)
        if value < 0 or value > max_lit:
            raise AigerParseError(
                f"output literal {value} outside the header's range "
                f"0..{max_lit}", offset=reader.offset)
        out_lits.append(value)
    for k in range(num_and):
        lhs = 2 * (num_in + 1 + k)
        delta0 = _decode_delta(reader)
        delta1 = _decode_delta(reader)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0 or rhs0 >= lhs:
            raise AigerParseError(f"invalid AND deltas at index {k}",
                                  offset=reader.offset)
        a = lit_notcond(literal_of[rhs0 >> 1], bool(rhs0 & 1))
        b = lit_notcond(literal_of[rhs1 >> 1], bool(rhs1 & 1))
        literal_of.append(aig.add_and(a, b))
    po_names = {}
    pi_names = {}
    while True:
        line = _read_line(reader, allow_eof=True)
        if line is None or line == "c":
            break
        if line.startswith("i"):
            idx, _sep, symbol = line[1:].partition(" ")
            pi_names[_symbol_index(idx, num_in, "input", reader)] = symbol
        elif line.startswith("o"):
            idx, _sep, symbol = line[1:].partition(" ")
            po_names[_symbol_index(idx, num_out, "output", reader)] = symbol
    for i, file_lit in enumerate(out_lits):
        literal = lit_notcond(literal_of[file_lit >> 1], bool(file_lit & 1))
        aig.add_po(literal, po_names.get(i))
    for i, symbol in pi_names.items():
        aig._pi_names[i] = symbol
    return aig


def _to_int(token: str, what: str, reader: _ByteReader) -> int:
    try:
        return int(token)
    except (ValueError, TypeError):
        raise AigerParseError(f"{what} is not an integer: {token!r}",
                              offset=reader.offset) from None


def _symbol_index(token: str, count: int, what: str,
                  reader: _ByteReader) -> int:
    index = _to_int(token, f"{what} symbol index", reader)
    if index < 0 or index >= count:
        raise AigerParseError(
            f"{what} symbol index {index} out of range (have {count})",
            offset=reader.offset)
    return index


def _read_line(reader: _ByteReader, allow_eof: bool = False):
    out = bytearray()
    while True:
        raw = reader.read1()
        if not raw:
            if allow_eof:
                return out.decode("ascii", "replace").rstrip() if out \
                    else None
            raise AigerParseError("unexpected end of binary AIGER file",
                                  offset=reader.offset)
        if raw == b"\n":
            return out.decode("ascii", "replace").rstrip()
        out.extend(raw)
