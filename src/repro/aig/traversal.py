"""Traversal utilities over AIGs: cones, supports, orderings.

These helpers back the partitioning engine (Section III-B sorts nodes "according
to the similarity of their structural support") and the candidate filters of the
Boolean-difference engine (shared support, inclusion of one cone in another).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.aig.aig import Aig, lit_node


def topological_order_all(aig: Aig) -> List[int]:
    """All live AND nodes in topological order, including dangling cones.

    :meth:`Aig.topological_order` only covers logic reachable from the POs;
    this variant also schedules live nodes no PO depends on, which matters for
    mid-edit inspection.
    """
    order: List[int] = []
    visited = bytearray(aig.max_node + 1)
    for root in aig.ands():
        if visited[root]:
            continue
        stack = [root]
        while stack:
            n = stack[-1]
            if visited[n] == 2:
                stack.pop()
                continue
            if visited[n] == 0:
                visited[n] = 1
                for f in aig.fanins(n):
                    fn = lit_node(f)
                    if aig.is_and(fn) and visited[fn] == 0:
                        stack.append(fn)
            else:
                visited[n] = 2
                order.append(n)
                stack.pop()
    return order


def transitive_fanin(aig: Aig, roots: Iterable[int], include_pis: bool = True) -> Set[int]:
    """Set of nodes in the transitive fanin cone of *roots* (roots included)."""
    seen: Set[int] = set()
    stack = [r for r in roots]
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        if aig.is_and(n):
            stack.extend(lit_node(f) for f in aig.fanins(n))
    if not include_pis:
        seen = {n for n in seen if aig.is_and(n)}
    return seen


def transitive_fanout(aig: Aig, roots: Iterable[int]) -> Set[int]:
    """Set of AND nodes in the transitive fanout cone of *roots* (roots included)."""
    seen: Set[int] = set(roots)
    stack = list(seen)
    while stack:
        n = stack.pop()
        for t in aig.fanout_nodes(n):
            if t not in seen:
                seen.add(t)
                stack.append(t)
    return seen


def structural_support(aig: Aig, node: int) -> Set[int]:
    """Primary-input nodes in the transitive fanin of *node*."""
    return {n for n in transitive_fanin(aig, [node]) if aig.is_pi(n)}


def all_supports(aig: Aig) -> Dict[int, frozenset]:
    """Structural support of every live node, computed in one topological pass.

    Used by the partitioner to group nodes with similar supports.  Supports are
    returned as frozensets of PI node ids.
    """
    supports: Dict[int, frozenset] = {0: frozenset()}
    for p in aig.pis():
        supports[p] = frozenset((p,))
    for n in topological_order_all(aig):
        f0, f1 = aig.fanins(n)
        s0 = supports[lit_node(f0)]
        s1 = supports[lit_node(f1)]
        supports[n] = s0 if s1 <= s0 else (s1 if s0 <= s1 else s0 | s1)
    return supports


def support_similarity(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity of two structural supports (1.0 = identical)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def cone_inclusion(aig: Aig, f: int, g: int) -> float:
    """Fraction of *f*'s AND cone that also lies in *g*'s AND cone.

    The Boolean-difference candidate filter "neglects cases where f is
    completely included in g, or partially included up to a certain
    threshold" (Section III-B); this measures that inclusion.
    """
    cone_f = transitive_fanin(aig, [f], include_pis=False)
    if not cone_f:
        return 0.0
    cone_g = transitive_fanin(aig, [g], include_pis=False)
    return len(cone_f & cone_g) / len(cone_f)


def node_level_map(aig: Aig) -> Dict[int, int]:
    """Level of every live node (dangling cones included)."""
    level: Dict[int, int] = {0: 0}
    for p in aig.pis():
        level[p] = 0
    for n in topological_order_all(aig):
        f0, f1 = aig.fanins(n)
        level[n] = 1 + max(level[lit_node(f0)], level[lit_node(f1)])
    return level
