"""Bit-parallel simulation of AIGs.

Two flavours are provided:

* :func:`simulate_words` — 64-bit-word random/directed pattern simulation, the
  workhorse behind SAT sweeping (candidate equivalence classes) and switching
  activity estimation for the power model of the ASIC flow.
* :func:`simulate_complete` — complete truth-table simulation for networks with
  few inputs (the "small windows of logic (≈ 15 inputs)" regime of Section II),
  returning one Python integer truth table per node/PO.

Both are backed by the compiled :class:`repro.aig.simprogram.SimProgram`
(flat fanin arrays + cached topological order, recompiled only when the
network's edit generation changes); the original interpreted walks are kept
as the reference path behind :mod:`repro.hotpath` so tests and benchmarks
can prove the compiled path bit-identical.  Multi-round callers should use
:func:`repro.aig.simprogram.simulate_wide`, which evaluates W 64-bit rounds
in a single pass over W×64-bit integers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro import hotpath
from repro.aig.aig import Aig, lit_is_compl, lit_node
from repro.aig.simprogram import sim_program
from repro.aig.traversal import topological_order_all
from repro.errors import AigError

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


def simulate_words(aig: Aig, pi_words: Sequence[int]) -> Dict[int, int]:
    """Simulate one 64-bit pattern word per primary input.

    Parameters
    ----------
    aig:
        The network to simulate.
    pi_words:
        One 64-bit integer per PI; bit *i* of each word forms pattern *i*.

    Returns
    -------
    dict mapping every live node id to its 64-bit output word.
    """
    if not hotpath.enabled():
        return _simulate_words_reference(aig, pi_words)
    program = sim_program(aig)
    values = program.run(pi_words, WORD_MASK)
    out: Dict[int, int] = {0: 0}
    for node in program.pi_nodes:
        out[node] = values[node]
    for op in program.ops:
        n = op[0]
        out[n] = values[n]
    return out


def _simulate_words_reference(aig: Aig, pi_words: Sequence[int]) -> Dict[int, int]:
    """Reference implementation: interpreted per-call topological walk."""
    if len(pi_words) != aig.num_pis:
        raise AigError(f"expected {aig.num_pis} PI words, got {len(pi_words)}")
    values: Dict[int, int] = {0: 0}
    for node, word in zip(aig.pis(), pi_words):
        values[node] = word & WORD_MASK
    for n in topological_order_all(aig):
        f0, f1 = aig.fanins(n)
        v0 = values[lit_node(f0)] ^ (WORD_MASK if lit_is_compl(f0) else 0)
        v1 = values[lit_node(f1)] ^ (WORD_MASK if lit_is_compl(f1) else 0)
        values[n] = v0 & v1
    return values


def po_words(aig: Aig, values) -> List[int]:
    """Extract PO output words from a node-value dictionary (or list)."""
    out = []
    for po in aig.pos():
        v = values[lit_node(po)]
        out.append(v ^ WORD_MASK if lit_is_compl(po) else v)
    return out


def random_words(num: int, rng: Optional[random.Random] = None) -> List[int]:
    """Generate *num* random 64-bit simulation words."""
    rng = rng or random.Random(0x5B5)
    return [rng.getrandbits(WORD_BITS) for _ in range(num)]


def simulate_complete(aig: Aig) -> Dict[int, int]:
    """Complete truth-table simulation (all ``2**num_pis`` patterns).

    Each node's value is a Python integer with ``2**num_pis`` bits, bit *i*
    holding the node output under the *i*-th input assignment (PI 0 is the
    least significant input variable).  Practical up to ~20 inputs.
    """
    k = aig.num_pis
    if k > 24:
        raise AigError(f"complete simulation infeasible for {k} inputs")
    nbits = 1 << k
    mask = (1 << nbits) - 1
    if hotpath.enabled():
        program = sim_program(aig)
        patterns = [_variable_pattern(i, nbits) for i in range(k)]
        flat = program.run(patterns, mask)
        out: Dict[int, int] = {0: 0}
        for node in program.pi_nodes:
            out[node] = flat[node]
        for op in program.ops:
            n = op[0]
            out[n] = flat[n]
        return out
    values: Dict[int, int] = {0: 0}
    for i, node in enumerate(aig.pis()):
        values[node] = _variable_pattern(i, nbits)
    for n in topological_order_all(aig):
        f0, f1 = aig.fanins(n)
        v0 = values[lit_node(f0)] ^ (mask if lit_is_compl(f0) else 0)
        v1 = values[lit_node(f1)] ^ (mask if lit_is_compl(f1) else 0)
        values[n] = v0 & v1
    return values


def po_tables(aig: Aig, values: Optional[Dict[int, int]] = None) -> List[int]:
    """Complete truth tables of all POs (convenience over simulate_complete)."""
    if values is None:
        values = simulate_complete(aig)
    nbits = 1 << aig.num_pis
    mask = (1 << nbits) - 1
    out = []
    for po in aig.pos():
        v = values[lit_node(po)]
        out.append((v ^ mask) if lit_is_compl(po) else v)
    return out


def _variable_pattern(index: int, nbits: int) -> int:
    """Truth table of input variable *index* over *nbits* rows."""
    period = 1 << (index + 1)
    run = (1 << (1 << index)) - 1
    pattern = 0
    pos = 1 << index
    while pos < nbits:
        pattern |= run << pos
        pos += period
    return pattern


def functional_fingerprints(aig: Aig, num_words: int = 4,
                            rng: Optional[random.Random] = None) -> Dict[int, int]:
    """Multi-word random simulation fingerprint per node.

    Concatenates *num_words* independent 64-bit simulations into one integer
    per node.  Nodes with different fingerprints are certainly inequivalent;
    equal fingerprints mark SAT-sweeping candidates (Section V-A's "SAT-based
    sweeping").
    """
    rng = rng or random.Random(20190325)
    fingerprints: Dict[int, int] = {}
    for w in range(num_words):
        words = [rng.getrandbits(WORD_BITS) for _ in range(aig.num_pis)]
        values = simulate_words(aig, words)
        for node, value in values.items():
            fingerprints[node] = (fingerprints.get(node, 0) << WORD_BITS) | value
    return fingerprints
