"""Compiled bit-parallel simulation (``repro.aig.simprogram``).

The interpreted :func:`repro.aig.simulate.simulate_words` re-derives the
same structures on every call: a fresh topological sort, a per-node dict,
tuple-returning ``fanins`` accessors and literal decoding for every gate.
Multi-round callers (SAT sweeping, the stage guard's 256-pattern fast
check, redundancy removal) pay that cost once per round.

:class:`SimProgram` compiles the network once per *generation* (the
:attr:`repro.aig.aig.Aig.generation` edit stamp) into flat parallel int
arrays — fanin node indices, complement masks, cached topological order —
and then evaluates any number of pattern words with a tight loop over
those arrays, writing into a node-indexed list instead of a dict.  This is
the flat-fanin-array device ABC's simulation engines use, expressed in
Python.

On top of it, :func:`simulate_wide` evaluates ``W`` 64-bit rounds in a
*single* pass: each PI carries one ``W x 64``-bit integer (round ``r`` in
bits ``[64*r, 64*r + 64)``), and Python's arbitrary-precision bitwise ops
process all rounds at once.  An 8-round SAT-sweep fingerprint becomes one
512-bit sweep over the program instead of eight 64-bit interpreter walks.

The program is cached on the network object and invalidated automatically:
any structural edit advances the network generation, and the next
simulation call recompiles.  Generations are globally unique across all
``Aig`` instances, so even wholesale ``__dict__`` swaps (see
``repro.sat.redundancy._replace_network``) can never resurrect a stale
program.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aig.aig import Aig
from repro.aig.traversal import topological_order_all
from repro.errors import AigError

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class SimProgram:
    """Flat, width-agnostic simulation program for one network generation.

    The same compiled program evaluates 64-bit words, ``W x 64``-bit wide
    words, or complete truth tables — only the evaluation mask changes.
    """

    __slots__ = ("generation", "num_slots", "pi_nodes", "ops", "pos")

    def __init__(self, aig: Aig) -> None:
        self.generation = aig.generation
        self.num_slots = aig.max_node + 1
        self.pi_nodes: Tuple[int, ...] = tuple(aig.pis())
        #: one ``(node, fanin0, compl0, fanin1, compl1)`` row per live AND
        #: gate, in topological (fanin-before-fanout) order.
        ops: List[Tuple[int, int, int, int, int]] = []
        fanin0 = aig._fanin0
        fanin1 = aig._fanin1
        for n in topological_order_all(aig):
            f0 = fanin0[n]
            f1 = fanin1[n]
            ops.append((n, f0 >> 1, f0 & 1, f1 >> 1, f1 & 1))
        self.ops = ops
        self.pos: Tuple[Tuple[int, int], ...] = tuple(
            (po >> 1, po & 1) for po in aig.pos())

    def run(self, pi_words: Sequence[int], mask: int = WORD_MASK) -> List[int]:
        """Evaluate the program; returns a node-indexed value list.

        ``pi_words`` supplies one pattern integer per PI (any width up to
        ``mask``); entry ``i`` of the result is node ``i``'s output word.
        Slots of dead/unsimulated nodes are 0.
        """
        if len(pi_words) != len(self.pi_nodes):
            raise AigError(f"expected {len(self.pi_nodes)} PI words, "
                           f"got {len(pi_words)}")
        values = [0] * self.num_slots
        for node, word in zip(self.pi_nodes, pi_words):
            values[node] = word & mask
        for n, a, ca, b, cb in self.ops:
            va = values[a] ^ mask if ca else values[a]
            vb = values[b] ^ mask if cb else values[b]
            values[n] = va & vb
        return values

    def po_words(self, values: Sequence[int], mask: int = WORD_MASK) -> List[int]:
        """PO output words extracted from a :meth:`run` result."""
        return [values[node] ^ mask if compl else values[node]
                for node, compl in self.pos]


def sim_program(aig: Aig) -> SimProgram:
    """The network's compiled simulation program (cached per generation)."""
    cached = getattr(aig, "_sim_program", None)
    if cached is not None and cached.generation == aig.generation:
        return cached
    program = SimProgram(aig)
    aig._sim_program = program
    return program


def wide_mask(width_words: int) -> int:
    """All-ones mask covering *width_words* 64-bit simulation rounds."""
    return (1 << (WORD_BITS * width_words)) - 1


def pack_rounds(rounds: Sequence[Sequence[int]]) -> List[int]:
    """Pack per-round 64-bit PI words into one wide word per PI.

    ``rounds[r][i]`` is PI *i*'s word for round *r*; round *r* lands in
    bits ``[64*r, 64*r + 64)`` of the packed word, so bit ``64*r + b`` of
    any simulated value is pattern bit *b* of round *r* — the layout every
    wide-simulation caller in :mod:`repro.sat` and :mod:`repro.guard`
    relies on when decoding counterexamples.
    """
    if not rounds:
        return []
    num_pis = len(rounds[0])
    packed = [0] * num_pis
    for r, words in enumerate(rounds):
        shift = WORD_BITS * r
        for i in range(num_pis):
            packed[i] |= (words[i] & WORD_MASK) << shift
    return packed


def simulate_wide(aig: Aig, pi_words: Sequence[int],
                  width_words: int) -> List[int]:
    """Simulate ``width_words`` 64-bit rounds in one pass.

    Each entry of *pi_words* is a ``width_words x 64``-bit integer (see
    :func:`pack_rounds` for the layout).  Returns the node-indexed value
    list; decode round *r* of node *n* as
    ``(values[n] >> (64 * r)) & WORD_MASK``.
    """
    return sim_program(aig).run(pi_words, wide_mask(width_words))
