"""And-Inverter Graph package: the logic substrate of the SBM framework."""

from repro.aig.aig import (
    CONST0,
    CONST1,
    Aig,
    lit,
    lit_is_compl,
    lit_node,
    lit_not,
    lit_notcond,
)
from repro.aig.cuts import Cut, cut_cone_size, cut_volume_refs, enumerate_cuts
from repro.aig.io_aiger import read_aag, write_aag, write_aag_string
from repro.aig.io_aiger_binary import read_aig_binary, write_aig_binary
from repro.aig.simprogram import (
    SimProgram,
    pack_rounds,
    sim_program,
    simulate_wide,
    wide_mask,
)
from repro.aig.simulate import (
    functional_fingerprints,
    po_tables,
    po_words,
    random_words,
    simulate_complete,
    simulate_words,
)
from repro.aig.traversal import (
    all_supports,
    cone_inclusion,
    node_level_map,
    structural_support,
    support_similarity,
    topological_order_all,
    transitive_fanin,
    transitive_fanout,
)

__all__ = [
    "Aig", "CONST0", "CONST1",
    "lit", "lit_node", "lit_is_compl", "lit_not", "lit_notcond",
    "Cut", "enumerate_cuts", "cut_cone_size", "cut_volume_refs",
    "read_aag", "write_aag", "write_aag_string",
    "read_aig_binary", "write_aig_binary",
    "simulate_words", "simulate_complete", "po_words", "po_tables",
    "random_words", "functional_fingerprints",
    "SimProgram", "sim_program", "simulate_wide", "pack_rounds", "wide_mask",
    "topological_order_all", "transitive_fanin", "transitive_fanout",
    "structural_support", "all_supports", "support_similarity",
    "cone_inclusion", "node_level_map",
]
