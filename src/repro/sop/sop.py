"""Sum-of-products (SOP) covers and their basic algebra.

Kernel extraction's effectiveness "depends on the properties and
characteristics of the nodes' SOPs" (Section IV-B); this module provides the
cover datatype that node elimination grows and kerneling factors.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro import hotpath
from repro.sop.cube import (
    Cube,
    TAUTOLOGY_CUBE,
    cube_and,
    cube_contains,
    cube_is_contradiction,
    cube_num_literals,
    cube_support,
)


class Sop:
    """An SOP cover: a list of cubes over integer-indexed variables.

    The cover is kept *minimal with respect to single-cube containment*
    (no duplicate cubes, no cube containing another), which is the standard
    normal form algebraic methods operate on.
    """

    __slots__ = ("cubes",)

    def __init__(self, cubes: Iterable[Cube] = ()) -> None:
        self.cubes: List[Cube] = []
        for cube in cubes:
            self.add_cube(cube)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(cls, value: bool) -> "Sop":
        """Constant-0 (empty cover) or constant-1 (tautology cube) SOP."""
        return cls([TAUTOLOGY_CUBE]) if value else cls()

    @classmethod
    def literal(cls, var: int, positive: bool = True) -> "Sop":
        """Single-literal SOP."""
        return cls([(1 << var, 0) if positive else (0, 1 << var)])

    # -- normal form -------------------------------------------------------------

    def add_cube(self, cube: Cube) -> None:
        """Insert a cube, maintaining single-cube-containment minimality."""
        if hotpath._ENABLED:
            # Fused single scan with inlined bit tests: bail on the first
            # covering cube, and materialize the survivor list lazily only
            # when the new cube actually swallows an existing one.  Same
            # final cover (containment minimality is an antichain; the
            # covered/covering outcomes are order-independent).
            p, n = cube
            if p & n:
                return
            cubes = self.cubes
            survivors = None
            for i, c in enumerate(cubes):
                ep, en = c
                if not (ep & ~p) and not (en & ~n):
                    return  # existing cube already covers the new one
                if not (p & ~ep) and not (n & ~en):
                    if survivors is None:
                        survivors = cubes[:i]
                elif survivors is not None:
                    survivors.append(c)
            if survivors is None:
                cubes.append(cube)
            else:
                survivors.append(cube)
                self.cubes = survivors
            return
        if cube_is_contradiction(cube):
            return
        for existing in self.cubes:
            if cube_contains(existing, cube):
                return  # already covered
        self.cubes = [c for c in self.cubes if not cube_contains(cube, c)]
        self.cubes.append(cube)

    # -- queries --------------------------------------------------------------------

    def is_const0(self) -> bool:
        """True for the empty cover."""
        return not self.cubes

    def is_const1(self) -> bool:
        """True when the cover contains the tautology cube."""
        return any(c == TAUTOLOGY_CUBE for c in self.cubes)

    def num_cubes(self) -> int:
        """Number of cubes (terms)."""
        return len(self.cubes)

    def num_literals(self) -> int:
        """Total literal count — the cost metric of elimination/kerneling."""
        return sum(p.bit_count() + n.bit_count() for p, n in self.cubes)

    def support_mask(self) -> int:
        """Bitmask of variables appearing in the cover."""
        mask = 0
        for cube in self.cubes:
            mask |= cube_support(cube)
        return mask

    def support(self) -> List[int]:
        """Sorted list of variables appearing in the cover."""
        from repro.sop.bitutil import bits_list
        return bits_list(self.support_mask())

    def literal_occurrences(self) -> dict:
        """Map from (var, positive) to occurrence count across cubes."""
        occ: dict = {}
        get = occ.get
        for pos, neg in self.cubes:
            while pos:
                low = pos & -pos
                pos ^= low
                key = (low.bit_length() - 1, True)
                occ[key] = get(key, 0) + 1
            while neg:
                low = neg & -neg
                neg ^= low
                key = (low.bit_length() - 1, False)
                occ[key] = get(key, 0) + 1
        return occ

    def copy(self) -> "Sop":
        """Shallow copy (cubes are immutable tuples)."""
        out = Sop()
        out.cubes = list(self.cubes)
        return out

    # -- algebra ------------------------------------------------------------------------

    def __or__(self, other: "Sop") -> "Sop":
        out = self.copy()
        for cube in other.cubes:
            out.add_cube(cube)
        return out

    def __and__(self, other: "Sop") -> "Sop":
        out = Sop()
        for a in self.cubes:
            for b in other.cubes:
                product = cube_and(a, b)
                if product is not None:
                    out.add_cube(product)
        return out

    def and_cube(self, cube: Cube) -> "Sop":
        """Product of the cover with a single cube."""
        out = Sop()
        for c in self.cubes:
            product = cube_and(c, cube)
            if product is not None:
                out.add_cube(product)
        return out

    def evaluate(self, assignment: int) -> bool:
        """Evaluate under a variable assignment given as a bitmask."""
        for pos, neg in self.cubes:
            if (assignment & pos) == pos and (assignment & neg) == 0:
                return True
        return False

    def to_truth_bits(self, num_vars: int) -> int:
        """Truth table integer over *num_vars* variables."""
        bits = 0
        for row in range(1 << num_vars):
            if self.evaluate(row):
                bits |= 1 << row
        return bits

    def complement(self, max_cubes: int = 4096) -> Optional["Sop"]:
        """Complement via Shannon expansion; None when it exceeds *max_cubes*.

        Needed when elimination substitutes a node that fanouts use in the
        negative phase.
        """
        result = _complement_rec(self, max_cubes)
        return result

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Sop) and sorted(self.cubes) == sorted(other.cubes)

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.cubes)))

    def __repr__(self) -> str:
        return f"Sop({self.cubes!r})"

    def pretty(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable form, e.g. ``a·!b + c``."""
        if self.is_const0():
            return "0"
        if self.is_const1():
            return "1"
        terms = []
        for pos, neg in sorted(self.cubes):
            literals = []
            v = 0
            p, n = pos, neg
            while p or n:
                label = names[v] if names else f"x{v}"
                if p & 1:
                    literals.append(label)
                if n & 1:
                    literals.append(f"!{label}")
                p >>= 1
                n >>= 1
                v += 1
            terms.append("·".join(literals) if literals else "1")
        return " + ".join(terms)


def _complement_rec(sop: Sop, max_cubes: int) -> Optional[Sop]:
    if sop.is_const0():
        return Sop.constant(True)
    if sop.is_const1():
        return Sop.constant(False)
    if len(sop.cubes) == 1:
        # De Morgan on a single cube.
        from repro.sop.bitutil import iter_bits
        pos, neg = sop.cubes[0]
        out = Sop()
        for v in iter_bits(pos):
            out.add_cube((0, 1 << v))
        for v in iter_bits(neg):
            out.add_cube((1 << v, 0))
        return out
    # Shannon split on the most frequent variable.
    occ = sop.literal_occurrences()
    var = max(occ, key=lambda key: occ[key])[0]
    bit = 1 << var
    cof_pos = Sop([( (p & ~bit), n) for p, n in sop.cubes if not (n & bit)])
    cof_neg = Sop([(p, (n & ~bit)) for p, n in sop.cubes if not (p & bit)])
    comp_pos = _complement_rec(cof_pos, max_cubes)
    comp_neg = _complement_rec(cof_neg, max_cubes)
    if comp_pos is None or comp_neg is None:
        return None
    out = comp_pos.and_cube((bit, 0)) | comp_neg.and_cube((0, bit))
    if len(out.cubes) > max_cubes:
        return None
    return out
