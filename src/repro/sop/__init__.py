"""SOP algebra: cubes, covers, division, kernels, factoring, networks."""

from repro.sop.cube import (
    Cube,
    TAUTOLOGY_CUBE,
    cube_and,
    cube_common,
    cube_contains,
    cube_divide,
    cube_num_literals,
    cube_rename,
    cube_support,
)
from repro.sop.division import divide, divide_by_cube, is_algebraic_divisor
from repro.sop.factor import (
    factor,
    factored_literal_count,
    factored_pretty,
    factored_to_aig,
    sop_to_aig,
)
from repro.sop.kernels import best_kernel, is_cube_free, kernel_value, kernels, make_cube_free
from repro.sop.network import SopNetwork
from repro.sop.sop import Sop

__all__ = [
    "Cube", "TAUTOLOGY_CUBE", "cube_and", "cube_contains", "cube_divide",
    "cube_num_literals", "cube_common", "cube_support", "cube_rename",
    "Sop", "divide", "divide_by_cube", "is_algebraic_divisor",
    "kernels", "best_kernel", "kernel_value", "make_cube_free", "is_cube_free",
    "factor", "factored_literal_count", "factored_to_aig", "sop_to_aig",
    "factored_pretty", "SopNetwork",
]
