"""Algebraic factoring: SOP covers → factored forms → AIG logic.

Factored forms are the bridge between the SOP world (elimination, kerneling)
and the AIG world the SBM flow standardizes on: after the kernel engine has
restructured a partition's SOPs, each node is factored and strashed back into
the network.  The refactor move of the gradient engine also uses this path
(collapse MFFC → ISOP → factor → rebuild).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.aig.aig import Aig
from repro.sop.cube import Cube
from repro.sop.division import divide, divide_by_cube
from repro.sop.kernels import make_cube_free
from repro.sop.sop import Sop

# A factored form is a tree of tuples:
#   ("lit", var, positive)
#   ("and", [children])
#   ("or",  [children])
#   ("const", bool)
FactoredForm = Tuple


def factor(sop: Sop) -> FactoredForm:
    """Algebraic "quick factor" of a cover.

    Recursively divides by the most frequent literal after pulling out the
    largest common cube; linear-ish and good enough to track literal counts
    the way MIS/SIS quick_factor does.
    """
    if sop.is_const0():
        return ("const", False)
    if sop.is_const1():
        return ("const", True)
    if sop.num_cubes() == 1:
        return _cube_form(sop.cubes[0])
    free, common = make_cube_free(sop)
    if common != (0, 0):
        sub = factor(free)
        return _make_and([_cube_form(common), sub])
    occ = sop.literal_occurrences()
    best = max(occ.items(), key=lambda item: (item[1], -item[0][0]))
    (var, positive), count = best
    if count < 2:
        # No sharing available: a flat OR of cube ANDs.
        return _make_or([_cube_form(c) for c in sop.cubes])
    literal_cube: Cube = ((1 << var, 0) if positive else (0, 1 << var))
    quotient, remainder = divide_by_cube(sop, literal_cube)
    # Good-factor refinement: re-divide by the *quotient* itself, which
    # turns a·(c+d) + b·(c+d) into (a+b)·(c+d) instead of distributing.
    if quotient.num_cubes() >= 2:
        q_free, _common = make_cube_free(quotient)
        if q_free.num_cubes() >= 2:
            outer, rest = divide(sop, q_free)
            if outer.num_cubes() >= 2:
                return _make_or([_make_and([factor(outer), factor(q_free)]),
                                 factor(rest)])
    q_form = factor(quotient)
    lit_form = ("lit", var, positive)
    product = _make_and([lit_form, q_form])
    if remainder.is_const0():
        return product
    return _make_or([product, factor(remainder)])


def _cube_form(cube: Cube) -> FactoredForm:
    from repro.sop.bitutil import iter_bits
    pos, neg = cube
    literals: List[FactoredForm] = []
    for v in iter_bits(pos):
        literals.append(("lit", v, True))
    for v in iter_bits(neg):
        literals.append(("lit", v, False))
    if not literals:
        return ("const", True)
    return _make_and(literals)


def _make_and(children: List[FactoredForm]) -> FactoredForm:
    flat: List[FactoredForm] = []
    for child in children:
        if child[0] == "and":
            flat.extend(child[1])
        elif child == ("const", True):
            continue
        elif child == ("const", False):
            return ("const", False)
        else:
            flat.append(child)
    if not flat:
        return ("const", True)
    if len(flat) == 1:
        return flat[0]
    return ("and", flat)


def _make_or(children: List[FactoredForm]) -> FactoredForm:
    flat: List[FactoredForm] = []
    for child in children:
        if child[0] == "or":
            flat.extend(child[1])
        elif child == ("const", False):
            continue
        elif child == ("const", True):
            return ("const", True)
        else:
            flat.append(child)
    if not flat:
        return ("const", False)
    if len(flat) == 1:
        return flat[0]
    return ("or", flat)


def factored_literal_count(form: FactoredForm) -> int:
    """Number of literal leaves — the standard factored-form cost."""
    kind = form[0]
    if kind == "lit":
        return 1
    if kind == "const":
        return 0
    return sum(factored_literal_count(child) for child in form[1])


def factored_to_aig(form: FactoredForm, aig: Aig,
                    fanin_literals: Sequence[int]) -> int:
    """Build the factored form into *aig*; returns the output literal.

    ``fanin_literals[v]`` supplies the AIG literal for SOP variable *v*.
    Balanced AND/OR trees keep depth logarithmic.
    """
    kind = form[0]
    if kind == "const":
        return 1 if form[1] else 0
    if kind == "lit":
        literal = fanin_literals[form[1]]
        return literal if form[2] else literal ^ 1
    children = [factored_to_aig(child, aig, fanin_literals) for child in form[1]]
    if kind == "and":
        return aig.add_and_multi(children)
    return aig.add_or_multi(children)


def sop_to_aig(sop: Sop, aig: Aig, fanin_literals: Sequence[int]) -> int:
    """Factor a cover and strash it into *aig*; returns the output literal."""
    return factored_to_aig(factor(sop), aig, fanin_literals)


def factored_pretty(form: FactoredForm, names: Optional[Sequence[str]] = None) -> str:
    """Render a factored form, e.g. ``a (b + !c) + d``."""
    kind = form[0]
    if kind == "const":
        return "1" if form[1] else "0"
    if kind == "lit":
        label = names[form[1]] if names else f"x{form[1]}"
        return label if form[2] else f"!{label}"
    if kind == "and":
        parts = []
        for child in form[1]:
            text = factored_pretty(child, names)
            parts.append(f"({text})" if child[0] == "or" else text)
        return " ".join(parts)
    return " + ".join(factored_pretty(child, names) for child in form[1])
