"""Multi-level Boolean networks with SOP nodes.

The elimination / kernel-extraction engine of Section IV-B operates on a
network of SOP nodes rather than on the AIG: "prior to kernel extraction,
node elimination is often used to create larger SOPs".  This module provides
that network, conversion to/from AIGs, *node elimination* (forward collapsing
with a literal-variation threshold, exactly the procedure described in the
paper), and greedy shared-kernel extraction.

SOP variables are network node ids directly (a global variable space), so
covers from different nodes can be compared, divided, and shared without
renaming.  Python's big integers keep the cube masks cheap as long as node
ids stay modest — partitions re-index densely before building a network.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import hotpath
from repro.aig.aig import Aig, lit_is_compl, lit_node, lit_notcond
from repro.sop.division import divide
from repro.sop.factor import factored_literal_count, factor, sop_to_aig
from repro.sop.kernels import best_kernel
from repro.sop.sop import Sop


class SopNetwork:
    """A DAG of SOP nodes between primary inputs and outputs."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.pis: List[int] = []
        self.pi_names: List[str] = []
        #: internal node id -> cover over node-id variables
        self.nodes: Dict[int, Sop] = {}
        #: outputs as (node id, complemented) pairs; node may be a PI
        self.pos: List[Tuple[int, bool]] = []
        self.po_names: List[str] = []
        self._next_id = 0

    # -- construction -----------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its node id."""
        node = self._next_id
        self._next_id += 1
        self.pis.append(node)
        self.pi_names.append(name or f"pi{len(self.pis) - 1}")
        return node

    def add_node(self, sop: Sop) -> int:
        """Create an internal node computing *sop*; returns its node id."""
        node = self._next_id
        self._next_id += 1
        self.nodes[node] = sop
        return node

    def add_po(self, node: int, complemented: bool = False,
               name: Optional[str] = None) -> None:
        """Mark *node* (possibly complemented) as a primary output."""
        self.pos.append((node, complemented))
        self.po_names.append(name or f"po{len(self.pos) - 1}")

    # -- queries ------------------------------------------------------------------

    def is_pi(self, node: int) -> bool:
        """True for primary inputs."""
        return node not in self.nodes and node in set(self.pis)

    def fanins(self, node: int) -> List[int]:
        """Support node ids of an internal node's cover."""
        return self.nodes[node].support()

    def fanouts(self) -> Dict[int, List[int]]:
        """Map from node id to the internal nodes using it."""
        out: Dict[int, List[int]] = {}
        for node, sop in self.nodes.items():
            mask = 0
            for p, n in sop.cubes:
                mask |= p | n
            while mask:
                low = mask & -mask
                mask ^= low
                out.setdefault(low.bit_length() - 1, []).append(node)
        return out

    def total_literals(self) -> int:
        """Sum of flat SOP literal counts — the eliminate/kernel cost metric."""
        return sum(sop.num_literals() for sop in self.nodes.values())

    def total_factored_literals(self) -> int:
        """Sum of factored-form literal counts over all nodes."""
        return sum(factored_literal_count(factor(sop))
                   for sop in self.nodes.values())

    def num_nodes(self) -> int:
        """Number of internal nodes."""
        return len(self.nodes)

    def topological_order(self) -> List[int]:
        """Internal nodes in fanin-before-fanout order."""
        order: List[int] = []
        state: Dict[int, int] = {}
        for root in list(self.nodes):
            if state.get(root):
                continue
            stack = [root]
            while stack:
                n = stack[-1]
                if state.get(n) == 2:
                    stack.pop()
                    continue
                if state.get(n) is None:
                    state[n] = 1
                    for f in self.nodes[n].support():
                        if f in self.nodes and state.get(f) is None:
                            stack.append(f)
                else:
                    state[n] = 2
                    order.append(n)
                    stack.pop()
        return order

    # -- elimination (forward collapsing) ----------------------------------------------

    def eliminate(self, threshold: int, max_cubes: int = 512,
                  max_passes: int = 10) -> int:
        """Collapse nodes into their fanouts under a literal-variation bound.

        "We go over all nodes in the partition, and for each node, we
        estimate the variation in the number of literals ... that would
        result from the collapsing of the node into its fanouts.  If this
        variation is less than the specified threshold, the collapsing is
        performed.  The operation is repeated until no node gets collapsed."
        (Section IV-B.)

        Returns the number of nodes eliminated.  ``threshold = -1``
        reproduces the strictest paper setting (only literal-reducing
        collapses); large thresholds aggressively grow SOPs.
        """
        eliminated = 0
        for _pass in range(max_passes):
            changed = False
            fanouts = self.fanouts()
            po_nodes = {node for node, _c in self.pos}
            for node in list(self.nodes):
                if node in po_nodes:
                    continue
                users = [u for u in fanouts.get(node, []) if u in self.nodes]
                if not users:
                    del self.nodes[node]
                    changed = True
                    continue
                substitution = self._collapse_preview(node, users, max_cubes)
                if substitution is None:
                    continue
                new_sops, variation = substitution
                if variation < threshold:
                    for user, sop in new_sops.items():
                        self.nodes[user] = sop
                    del self.nodes[node]
                    eliminated += 1
                    changed = True
                    fanouts = self.fanouts()
            if not changed:
                break
        return eliminated

    def _collapse_preview(self, node: int, users: List[int],
                          max_cubes: int) -> Optional[Tuple[Dict[int, Sop], int]]:
        """Substitute *node* into *users*; returns (new covers, literal delta)."""
        node_sop = self.nodes[node]
        complement: Optional[Sop] = None
        new_sops: Dict[int, Sop] = {}
        delta = -node_sop.num_literals()
        bit = 1 << node
        for user in users:
            user_sop = self.nodes[user]
            result = Sop()
            for pos, neg in user_sop.cubes:
                if pos & bit:
                    base = Sop([(pos & ~bit, neg)])
                    for cube in (base & node_sop).cubes:
                        result.add_cube(cube)
                elif neg & bit:
                    if complement is None:
                        complement = node_sop.complement()
                        if complement is None:
                            return None
                    base = Sop([(pos, neg & ~bit)])
                    for cube in (base & complement).cubes:
                        result.add_cube(cube)
                else:
                    result.add_cube((pos, neg))
                if len(result.cubes) > max_cubes:
                    return None
            new_sops[user] = result
            delta += result.num_literals() - user_sop.num_literals()
        return new_sops, delta

    # -- kernel extraction ------------------------------------------------------------------

    def extract_kernels(self, max_rounds: int = 50,
                        max_kernels_per_node: int = 50,
                        _cache: Optional[dict] = None) -> int:
        """Greedy shared-kernel extraction; returns total literal saving.

        Repeatedly finds the kernel with the best network-wide value
        (:func:`repro.sop.kernels.best_kernel`), materializes it as a new
        node, and rewrites every node where dividing by it pays off.

        *_cache* optionally shares the hot path's kernel/saving memo with
        other extractions over overlapping covers (the heterogeneous
        threshold sweep re-kernels near-identical networks).
        """
        total_saving = 0
        # Hot path: memoize kernel enumeration and per-(node, kernel) saving
        # across rounds — each round rewrites a handful of nodes, so the
        # content-keyed cache turns the re-evaluation of the unchanged rest
        # into lookups (same pure results, bit-identical choice sequence).
        cache: Optional[dict] = None
        if hotpath.enabled():
            cache = _cache if _cache is not None else {}
        for _round in range(max_rounds):
            internal = [self.nodes[n] for n in self.topological_order()]
            found = best_kernel(internal, max_kernels_per_node, _cache=cache)
            if found is None:
                return total_saving
            kernel, value = found
            total_saving += value
            new_node = self.add_node(kernel)
            new_bit = 1 << new_node
            for node in list(self.nodes):
                if node == new_node:
                    continue
                sop = self.nodes[node]
                quotient, remainder = divide(sop, kernel)
                if quotient.is_const0():
                    continue
                rewritten = quotient.and_cube((new_bit, 0)) | remainder
                if (rewritten.num_literals() + 0 < sop.num_literals()):
                    self.nodes[node] = rewritten
        return total_saving

    # -- cube-level common-divisor extraction -----------------------------------------------

    def extract_common_cubes(self, max_rounds: int = 50) -> int:
        """Extract shared multi-literal cubes ("cube extraction" of MIS).

        Complements kernel extraction: kernels share multi-cube divisors,
        this shares single-cube divisors.  Returns the literal saving.
        """
        from collections import Counter
        from repro.sop.bitutil import iter_bits
        saving = 0
        for _round in range(max_rounds):
            pair_count: Counter = Counter()
            for sop in self.nodes.values():
                for pos, neg in sop.cubes:
                    literals = ([(v, True) for v in iter_bits(pos)]
                                + [(v, False) for v in iter_bits(neg)])
                    for i in range(len(literals)):
                        for j in range(i + 1, len(literals)):
                            pair_count[(literals[i], literals[j])] += 1
            if not pair_count:
                return saving
            (lit_a, lit_b), count = pair_count.most_common(1)[0]
            if count < 2:
                return saving
            cube = (
                (1 << lit_a[0] if lit_a[1] else 0) | (1 << lit_b[0] if lit_b[1] else 0),
                (0 if lit_a[1] else 1 << lit_a[0]) | (0 if lit_b[1] else 1 << lit_b[0]),
            )
            gain = count - 2  # each use saves one literal; new node costs 2
            if gain <= 0:
                return saving
            new_node = self.add_node(Sop([cube]))
            new_bit = 1 << new_node
            from repro.sop.cube import cube_contains
            for node in list(self.nodes):
                if node == new_node:
                    continue
                sop = self.nodes[node]
                rewritten = Sop()
                touched = False
                for c in sop.cubes:
                    if cube_contains(cube, c):
                        rewritten.add_cube(((c[0] & ~cube[0]) | new_bit,
                                            c[1] & ~cube[1]))
                        touched = True
                    else:
                        rewritten.add_cube(c)
                if touched:
                    self.nodes[node] = rewritten
            saving += gain
        return saving

    # -- AIG conversion -------------------------------------------------------------------------

    @classmethod
    def from_aig(cls, aig: Aig) -> "SopNetwork":
        """Each AND gate becomes a one-cube SOP node (phases folded in)."""
        net = cls(aig.name)
        mapping: Dict[int, int] = {}
        for i, p in enumerate(aig.pis()):
            mapping[p] = net.add_pi(aig.pi_name(i))
        const_node: Optional[int] = None
        for n in aig.topological_order():
            f0, f1 = aig.fanins(n)
            pos = neg = 0
            for f in (f0, f1):
                var = mapping[lit_node(f)]
                if lit_is_compl(f):
                    neg |= 1 << var
                else:
                    pos |= 1 << var
            mapping[n] = net.add_node(Sop([(pos, neg)]))
        for i, po in enumerate(aig.pos()):
            node = lit_node(po)
            if node == 0:
                if const_node is None:
                    const_node = net.add_node(Sop.constant(False))
                target = const_node
            else:
                target = mapping[node]
            net.add_po(target, lit_is_compl(po), aig.po_name(i))
        return net

    def to_aig(self) -> Aig:
        """Factor every node and strash the network into a fresh AIG."""
        aig = Aig(self.name)
        literal_of: Dict[int, int] = {}
        for i, p in enumerate(self.pis):
            literal_of[p] = aig.add_pi(self.pi_names[i])
        for node in self.topological_order():
            literal_of[node] = sop_to_aig(self.nodes[node], aig, literal_of)
        for i, (node, complemented) in enumerate(self.pos):
            literal = literal_of[node]
            aig.add_po(lit_notcond(literal, complemented), self.po_names[i])
        return aig
