"""Algebraic (weak) division of SOP covers.

Division is the workhorse behind kernel extraction and the Boolean-division
generalization the paper alludes to in Section IV-B ("it applies, more
generally, to Boolean division as well").  Given covers ``F`` and ``D``,
weak division finds ``Q`` and ``R`` with ``F = Q·D + R`` where ``Q·D`` uses
no distributive tricks (purely algebraic product).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import hotpath
from repro.sop.cube import Cube, cube_divide
from repro.sop.sop import Sop


def divide(f: Sop, d: Sop) -> Tuple[Sop, Sop]:
    """Weak-divide cover *f* by cover *d*; returns ``(quotient, remainder)``.

    The quotient is the largest cover ``Q`` such that ``Q·D ⊆ F`` cube-wise;
    remainder collects the cubes of ``F`` not produced by ``Q·D``.  When the
    divisor is empty, returns ``(0, F)``.
    """
    if d.is_const0():
        return Sop(), f.copy()
    if hotpath._ENABLED:
        return _divide_fast(f, d)
    quotient: Optional[set] = None
    for d_cube in d.cubes:
        partial = set()
        for f_cube in f.cubes:
            q = cube_divide(f_cube, d_cube)
            if q is not None:
                partial.add(q)
        if quotient is None:
            quotient = partial
        else:
            quotient &= partial
        if not quotient:
            return Sop(), f.copy()
    q_sop = Sop(sorted(quotient))
    product = q_sop & d
    remainder = Sop(c for c in f.cubes if c not in set(product.cubes))
    return q_sop, remainder


def _divide_fast(f: Sop, d: Sop) -> Tuple[Sop, Sop]:
    """Inlined-bit-op weak division; same pure result as the reference.

    The quotient is a set intersection, so it is independent of cube
    iteration order; the remainder is a subset of the (already minimal)
    cover of *f* in original order, so it can be assigned directly without
    re-running containment minimization.
    """
    f_cubes = f.cubes
    quotient: Optional[set] = None
    for dp, dn in d.cubes:
        partial = set()
        add = partial.add
        for fp, fn in f_cubes:
            if not (dp & ~fp) and not (dn & ~fn):
                add((fp & ~dp, fn & ~dn))
        if quotient is None:
            quotient = partial
        else:
            quotient &= partial
        if not quotient:
            return Sop(), f.copy()
    q_sop = Sop(sorted(quotient))
    product = q_sop & d
    product_cubes = set(product.cubes)
    remainder = Sop()
    remainder.cubes = [c for c in f_cubes if c not in product_cubes]
    return q_sop, remainder


def divide_by_cube(f: Sop, cube: Cube) -> Tuple[Sop, Sop]:
    """Divide by a single cube (cheap special case)."""
    if hotpath._ENABLED:
        # Both outputs inherit minimality from *f*: quotients of distinct
        # cubes of a minimal cover by the same cube stay distinct and
        # containment-free (the divisor's literals are re-added uniformly),
        # and the remainder is a subset of *f*'s cover — so neither side
        # needs add_cube's containment scans.
        dp, dn = cube
        q_cubes = []
        r_cubes = []
        for c in f.cubes:
            fp, fn = c
            if not (dp & ~fp) and not (dn & ~fn):
                q_cubes.append((fp & ~dp, fn & ~dn))
            else:
                r_cubes.append(c)
        quotient = Sop()
        quotient.cubes = q_cubes
        remainder = Sop()
        remainder.cubes = r_cubes
        return quotient, remainder
    quotient = Sop()
    remainder = Sop()
    for c in f.cubes:
        q = cube_divide(c, cube)
        if q is not None:
            quotient.add_cube(q)
        else:
            remainder.add_cube(c)
    return quotient, remainder


def is_algebraic_divisor(f: Sop, d: Sop) -> bool:
    """True when the quotient of ``f / d`` is non-empty."""
    quotient, _remainder = divide(f, d)
    return not quotient.is_const0()
