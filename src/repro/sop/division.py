"""Algebraic (weak) division of SOP covers.

Division is the workhorse behind kernel extraction and the Boolean-division
generalization the paper alludes to in Section IV-B ("it applies, more
generally, to Boolean division as well").  Given covers ``F`` and ``D``,
weak division finds ``Q`` and ``R`` with ``F = Q·D + R`` where ``Q·D`` uses
no distributive tricks (purely algebraic product).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sop.cube import Cube, cube_and, cube_divide
from repro.sop.sop import Sop


def divide(f: Sop, d: Sop) -> Tuple[Sop, Sop]:
    """Weak-divide cover *f* by cover *d*; returns ``(quotient, remainder)``.

    The quotient is the largest cover ``Q`` such that ``Q·D ⊆ F`` cube-wise;
    remainder collects the cubes of ``F`` not produced by ``Q·D``.  When the
    divisor is empty, returns ``(0, F)``.
    """
    if d.is_const0():
        return Sop(), f.copy()
    quotient: Optional[set] = None
    for d_cube in d.cubes:
        partial = set()
        for f_cube in f.cubes:
            q = cube_divide(f_cube, d_cube)
            if q is not None:
                partial.add(q)
        if quotient is None:
            quotient = partial
        else:
            quotient &= partial
        if not quotient:
            return Sop(), f.copy()
    q_sop = Sop(sorted(quotient))
    product = q_sop & d
    remainder = Sop(c for c in f.cubes if c not in set(product.cubes))
    return q_sop, remainder


def divide_by_cube(f: Sop, cube: Cube) -> Tuple[Sop, Sop]:
    """Divide by a single cube (cheap special case)."""
    quotient = Sop()
    remainder = Sop()
    for c in f.cubes:
        q = cube_divide(c, cube)
        if q is not None:
            quotient.add_cube(q)
        else:
            remainder.add_cube(c)
    return quotient, remainder


def is_algebraic_divisor(f: Sop, d: Sop) -> bool:
    """True when the quotient of ``f / d`` is non-empty."""
    quotient, _remainder = divide(f, d)
    return not quotient.is_const0()
