"""Cubes: conjunctions of literals over a node's fanin variables.

A cube is a pair of bitmasks ``(pos, neg)``: bit *v* of ``pos`` set means
variable *v* appears positively, of ``neg`` negatively.  A cube with both
bits set for some variable is the empty (contradictory) cube.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

Cube = Tuple[int, int]

TAUTOLOGY_CUBE: Cube = (0, 0)


def cube_num_literals(cube: Cube) -> int:
    """Number of literals in the cube."""
    pos, neg = cube
    return bin(pos).count("1") + bin(neg).count("1")


def cube_is_tautology(cube: Cube) -> bool:
    """True for the empty-literal (constant-1) cube."""
    return cube == (0, 0)


def cube_is_contradiction(cube: Cube) -> bool:
    """True when some variable appears in both phases."""
    return bool(cube[0] & cube[1])


def cube_and(a: Cube, b: Cube) -> Optional[Cube]:
    """Conjunction of two cubes; None when contradictory."""
    pos = a[0] | b[0]
    neg = a[1] | b[1]
    if pos & neg:
        return None
    return (pos, neg)


def cube_contains(a: Cube, b: Cube) -> bool:
    """True when cube *a* contains cube *b* (a's literals ⊆ b's literals)."""
    return (a[0] & ~b[0]) == 0 and (a[1] & ~b[1]) == 0


def cube_divide(cube: Cube, divisor: Cube) -> Optional[Cube]:
    """Cofactor *cube* by *divisor* (algebraic cube division).

    Returns ``cube / divisor`` (the remaining literals) when the divisor's
    literals all appear in *cube*; None otherwise.
    """
    if not cube_contains(divisor, cube):
        return None
    return (cube[0] & ~divisor[0], cube[1] & ~divisor[1])


def cube_support(cube: Cube) -> int:
    """Bitmask of variables used by the cube."""
    return cube[0] | cube[1]


def cube_common(cubes: Iterable[Cube]) -> Cube:
    """Largest common cube (intersection of literal sets)."""
    pos = neg = ~0
    for p, n in cubes:
        pos &= p
        neg &= n
    if pos == ~0:
        return TAUTOLOGY_CUBE
    return (pos, neg)


def cube_rename(cube: Cube, mapping: dict) -> Cube:
    """Re-index cube variables through ``mapping[old_var] = new_var``."""
    from repro.sop.bitutil import iter_bits
    pos = neg = 0
    for v in iter_bits(cube[0]):
        pos |= 1 << mapping[v]
    for v in iter_bits(cube[1]):
        neg |= 1 << mapping[v]
    return (pos, neg)
