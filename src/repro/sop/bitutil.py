"""Bit iteration helpers shared by the SOP algebra."""

from __future__ import annotations

from typing import Iterator, List


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_list(mask: int) -> List[int]:
    """List of set-bit indices of *mask*, ascending."""
    return list(iter_bits(mask))
