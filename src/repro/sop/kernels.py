"""Kernel and co-kernel computation, and multi-node kernel extraction.

"Kernel extraction [10] is one of the most effective techniques in logic
optimization ... it allows us to share large portions of logic circuits"
(Section IV-B).  A *kernel* of a cover F is a cube-free quotient of F by a
cube (its *co-kernel*); common kernels across nodes expose shared divisors.

The classic recursive enumeration (Brayton/Rudell) is implemented, plus a
greedy extraction loop that repeatedly factors out the kernel with the best
literal saving — the primitive that the heterogeneous-threshold engine of
:mod:`repro.sbm.hetero_kernel` drives per partition.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro import hotpath
from repro.sop.cube import Cube, TAUTOLOGY_CUBE, cube_common
from repro.sop.division import divide, divide_by_cube
from repro.sop.sop import Sop


def make_cube_free(sop: Sop) -> Tuple[Sop, Cube]:
    """Divide out the largest common cube; returns (cube-free cover, cube)."""
    if sop.num_cubes() == 0:
        return sop.copy(), TAUTOLOGY_CUBE
    common = cube_common(sop.cubes)
    if common == TAUTOLOGY_CUBE:
        return sop.copy(), TAUTOLOGY_CUBE
    quotient, _r = divide_by_cube(sop, common)
    return quotient, common


def is_cube_free(sop: Sop) -> bool:
    """True when no single literal divides every cube."""
    return cube_common(sop.cubes) == TAUTOLOGY_CUBE if sop.cubes else True


def kernels(sop: Sop, max_kernels: int = 200) -> List[Tuple[Sop, Cube]]:
    """All (kernel, co-kernel) pairs of a cover, capped at *max_kernels*.

    The cover itself is included (with tautology co-kernel) when cube-free —
    the *level-0* kernels used by factoring are the leaves of this recursion.
    """
    out: List[Tuple[Sop, Cube]] = []
    seen: set = set()

    def record(kernel: Sop, cokernel: Cube) -> None:
        key = tuple(sorted(kernel.cubes))
        if key not in seen:
            seen.add(key)
            out.append((kernel, cokernel))

    def rec(cover: Sop, cokernel: Cube, min_var: int) -> None:
        if len(out) >= max_kernels:
            return
        occ = cover.literal_occurrences()
        record(cover, cokernel)
        for (var, positive), count in sorted(occ.items()):
            if count < 2 or var < min_var:
                continue
            literal_cube: Cube = ((1 << var, 0) if positive else (0, 1 << var))
            quotient, _r = divide_by_cube(cover, literal_cube)
            if quotient.num_cubes() < 2:
                continue
            free, common = make_cube_free(quotient)
            merged = _merge_cubes(cokernel, literal_cube, common)
            rec(free, merged, var)

    free, common = make_cube_free(sop)
    if free.num_cubes() >= 2:
        rec(free, common, 0)
    return out


def _merge_cubes(*cubes: Cube) -> Cube:
    pos = neg = 0
    for p, n in cubes:
        pos |= p
        neg |= n
    return (pos, neg)


def _support_masks(sop: Sop) -> Tuple[int, int]:
    """Union of positive / negative literal masks over the cover."""
    pos = neg = 0
    for p, n in sop.cubes:
        pos |= p
        neg |= n
    return pos, neg


def _node_saving(node: Sop, kernel: Sop) -> int:
    """Literal saving of rewriting *node* as ``Q·k + R`` (0 when it loses).

    Pure function of the two covers; positive exactly when the reference
    :func:`kernel_value` loop would count the node as a profitable use.
    """
    quotient, remainder = divide(node, kernel)
    if quotient.is_const0():
        return 0
    new_cost = (quotient.num_literals() + quotient.num_cubes()
                + remainder.num_literals())
    old_cost = node.num_literals()
    return old_cost - new_cost if new_cost < old_cost else 0


def kernel_value(nodes: Iterable[Sop], kernel: Sop) -> int:
    """Literal saving from extracting *kernel* as a new shared node.

    For each node whose quotient by the kernel is non-trivial, the node is
    rewritten as ``Q·k + R``; the saving is the difference in total literals
    (kernel literals are paid once).
    """
    kernel_literals = kernel.num_literals()
    if hotpath._ENABLED:
        # A node whose cover lacks one of the kernel's literals entirely has
        # an empty quotient (that kernel cube divides none of its cubes), so
        # a union-mask screen skips most divisions outright.
        kp, kn = _support_masks(kernel)
        total_saving = 0
        uses = 0
        for node in nodes:
            mp, mn = _support_masks(node)
            if (kp & ~mp) or (kn & ~mn):
                continue
            saving = _node_saving(node, kernel)
            if saving > 0:
                total_saving += saving
                uses += 1
        if uses == 0:
            return -kernel_literals
        return total_saving - kernel_literals
    total_saving = 0
    uses = 0
    for node in nodes:
        quotient, remainder = divide(node, kernel)
        if quotient.is_const0():
            continue
        new_cost = quotient.num_literals() + quotient.num_cubes() + remainder.num_literals()
        old_cost = node.num_literals()
        if new_cost < old_cost:
            total_saving += old_cost - new_cost
            uses += 1
    if uses == 0:
        return -kernel_literals
    return total_saving - kernel_literals


def best_kernel(nodes: List[Sop], max_kernels_per_node: int = 50,
                _cache: Optional[dict] = None) -> Optional[Tuple[Sop, int]]:
    """The kernel (from any node) with the best extraction value, or None.

    Single-literal "kernels" are excluded (they carry no sharing).  Returns
    ``(kernel, value)`` with value > 0, or None when nothing profitable
    exists.

    *_cache* (hot path only) memoizes across repeated calls on overlapping
    node sets — the greedy extraction loop re-evaluates a nearly unchanged
    network every round.  It holds two content-keyed tables: kernel lists
    per cover (keyed by exact cube order, which kernel enumeration depends
    on) and per-(node, kernel) saving contributions (keyed by node cube
    order plus the kernel's canonical sorted-cube form — division results
    are cover-level and iteration-order independent).  Both are pure
    functions of cover content, so cached calls are bit-identical replays.
    """
    if not hotpath._ENABLED:
        _cache = None
    best: Optional[Sop] = None
    best_value = 0
    seen: set = set()
    if _cache is None:
        for node in nodes:
            for kernel, _cokernel in kernels(node, max_kernels_per_node):
                if kernel.num_cubes() < 2:
                    continue
                key = tuple(sorted(kernel.cubes))
                if key in seen:
                    continue
                seen.add(key)
                value = kernel_value(nodes, kernel)
                if value > best_value:
                    best_value = value
                    best = kernel
        if best is None:
            return None
        return best, best_value
    kernel_cache = _cache.setdefault("kernels", {})
    saving_cache = _cache.setdefault("saving", {})
    node_keys = [tuple(node.cubes) for node in nodes]
    node_masks = [_support_masks(node) for node in nodes]
    for node, node_key in zip(nodes, node_keys):
        kernel_list = kernel_cache.get((node_key, max_kernels_per_node))
        if kernel_list is None:
            kernel_list = kernels(node, max_kernels_per_node)
            kernel_cache[(node_key, max_kernels_per_node)] = kernel_list
        for kernel, _cokernel in kernel_list:
            if kernel.num_cubes() < 2:
                continue
            key = tuple(sorted(kernel.cubes))
            if key in seen:
                continue
            seen.add(key)
            kernel_literals = kernel.num_literals()
            kp, kn = _support_masks(kernel)
            total_saving = 0
            uses = 0
            for other, other_key, (mp, mn) in zip(nodes, node_keys,
                                                  node_masks):
                if (kp & ~mp) or (kn & ~mn):
                    continue
                pair = (other_key, key)
                saving = saving_cache.get(pair)
                if saving is None:
                    saving = _node_saving(other, kernel)
                    saving_cache[pair] = saving
                if saving > 0:
                    total_saving += saving
                    uses += 1
            value = (total_saving - kernel_literals if uses
                     else -kernel_literals)
            if value > best_value:
                best_value = value
                best = kernel
    if best is None:
        return None
    return best, best_value
