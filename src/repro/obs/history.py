"""Cross-run telemetry history: a SQLite store with regression detection.

Run reports (:mod:`repro.obs.report`, schema v3) describe *one* run; this
module keeps many of them, so quality and runtime can be tracked across
commits and a slow regression is caught by the nightly job instead of a
human staring at two JSON files.  Three tables:

``runs``
    one row per ingested report — suite, command, ``CODE_VERSION``
    (the flow's cache-key code revision), git revision, wall total,
    cache counters, and the fleet shard tag (``"i/N"``, comma-joined
    for merged multi-shard documents; NULL for unsharded runs);
``jobs``
    one row per campaign job — benchmark, outcome, content-addressed
    cache key, node counts before/after, wall and flow runtimes;
``stages``
    one row per flow stage of every job — per-stage node count and
    elapsed seconds (the per-benchmark × per-stage trend grain).

Ingestion is **idempotent**: the ingest key is the SHA-256 of the
canonicalized report document, enforced UNIQUE — re-ingesting the same
file is a counted no-op, so a retried CI job can never double-book a run.

Regression detection compares the *latest* run against the **median of a
trailing window** of prior runs, per benchmark and per (benchmark, stage):

* wall-time checks are **ratio-gated** (default 1.5×) with an absolute
  floor (default 0.05 s) so micro-stage jitter never fires, and only
  consider cold outcomes (``miss``/``uncached``) — a cache hit replays
  the cold run's stats, its timings are not this machine's;
* node-count checks are machine-independent and use a tight ratio
  (default 1.05×) with no floor — results are deterministic, any growth
  is a real quality regression.

CLI
---
::

    python -m repro.obs.history ingest  DB report.json [more.json|-]...
    python -m repro.obs.history trend   DB [--benchmark B] [--stage S] [--limit N]
    python -m repro.obs.history regress DB [--window N] [--time-ratio R]
                                           [--node-ratio R] [--min-secs S]

``ingest`` exits 0 (duplicates are reported, not errors), 1 on a schema
-invalid report, 3 on an unreadable file; ``regress`` exits 1 when a
regression is confirmed (the nightly gate), 0 when quiet or when there is
not enough history yet; usage errors exit 2.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import statistics
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.report import ReportSchemaError, validate_report

#: Outcomes whose timings were actually measured in that run (a ``hit``
#: or ``dedup`` row replays the cold run's stats — valid for node counts,
#: meaningless for this run's wall time).
_COLD_OUTCOMES = ("miss", "uncached")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    ingest_key  TEXT NOT NULL UNIQUE,
    ingested_at REAL NOT NULL,
    suite       TEXT NOT NULL,
    command     TEXT,
    code_version TEXT,
    git_rev     TEXT,
    schema_version INTEGER NOT NULL,
    elapsed_s   REAL NOT NULL DEFAULT 0.0,
    jobs        INTEGER NOT NULL DEFAULT 0,
    hits        INTEGER NOT NULL DEFAULT 0,
    misses      INTEGER NOT NULL DEFAULT 0,
    errors      INTEGER NOT NULL DEFAULT 0,
    shard       TEXT
);
CREATE TABLE IF NOT EXISTS jobs (
    run_id      INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    name        TEXT NOT NULL,
    benchmark   TEXT NOT NULL,
    outcome     TEXT NOT NULL,
    cache_key   TEXT,
    nodes_before INTEGER NOT NULL DEFAULT 0,
    nodes_after INTEGER NOT NULL DEFAULT 0,
    wall_s      REAL NOT NULL DEFAULT 0.0,
    flow_runtime_s REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS stages (
    run_id      INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    job_name    TEXT NOT NULL,
    benchmark   TEXT NOT NULL,
    outcome     TEXT NOT NULL,
    stage_index INTEGER NOT NULL,
    stage       TEXT NOT NULL,
    size        INTEGER NOT NULL DEFAULT 0,
    elapsed_s   REAL NOT NULL DEFAULT 0.0
);
CREATE INDEX IF NOT EXISTS idx_jobs_bench ON jobs(benchmark, run_id);
CREATE INDEX IF NOT EXISTS idx_stages_bench
    ON stages(benchmark, stage, run_id);
"""


def ingest_key_of(doc: Dict[str, Any]) -> str:
    """The idempotence key: SHA-256 over the canonicalized document.

    Delegates to :func:`repro.campaign.cache.canonical_digest` — the
    repo-wide canonical-JSON hash — producing byte-identical keys to the
    historical local implementation, so already-ingested reports still
    deduplicate.
    """
    from repro.campaign.cache import canonical_digest
    return canonical_digest(doc)


def detect_git_rev(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort short git revision of *cwd* (None when unavailable)."""
    import subprocess
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=cwd, capture_output=True, text=True,
                             timeout=10)
    except Exception:
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclasses.dataclass
class Regression:
    """One confirmed latest-vs-trailing-median regression."""

    kind: str          #: ``job_time`` | ``job_nodes`` | ``stage_time`` | ``stage_nodes``
    benchmark: str
    stage: Optional[str]
    latest: float
    baseline: float    #: median of the trailing window
    ratio: float
    run_id: int
    samples: int       #: prior runs that contributed to the baseline

    def describe(self) -> str:
        unit = "s" if self.kind.endswith("_time") else " nodes"
        where = self.benchmark if self.stage is None \
            else f"{self.benchmark}/{self.stage}"
        if unit == "s":
            latest, baseline = f"{self.latest:.3f}s", f"{self.baseline:.3f}s"
        else:
            latest, baseline = f"{self.latest:.0f}", f"{self.baseline:.0f}"
        return (f"{self.kind:11s} {where:32s} {latest} vs median {baseline} "
                f"({self.ratio:.2f}x over {self.samples} run(s))")


class HistoryStore:
    """SQLite-backed store of ingested run reports (context manager)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.conn = sqlite3.connect(path)
        self.conn.executescript(_SCHEMA)
        # Shard tagging (repro.campaign.shard) arrived after the first
        # stores shipped: widen pre-existing DBs in place.
        columns = {row[1] for row in
                   self.conn.execute("PRAGMA table_info(runs)")}
        if "shard" not in columns:
            self.conn.execute("ALTER TABLE runs ADD COLUMN shard TEXT")
        self.conn.commit()

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- ingestion -----------------------------------------------------------

    def ingest(self, doc: Dict[str, Any],
               git_rev: Optional[str] = None) -> Optional[int]:
        """Validate and store one run-report document.

        Returns the new ``run_id``, or ``None`` when this exact document
        (by content hash) was ingested before.  Raises
        :class:`~repro.obs.report.ReportSchemaError` on an invalid report.
        """
        validate_report(doc)
        key = ingest_key_of(doc)
        campaigns = doc.get("campaign") or []
        suite = campaigns[0].get("suite", "adhoc") if campaigns else "adhoc"
        # Shard-plan tag: "i/N" per campaign section, comma-joined when a
        # merged document carries several shards' sections (the nightly
        # merge job's unified row).
        shard_labels = [
            f"{tag.get('index')}/{tag.get('count')}"
            for tag in (c.get("shard") for c in campaigns)
            if isinstance(tag, dict)]
        shard = ",".join(shard_labels) or None
        cur = self.conn.cursor()
        try:
            cur.execute(
                "INSERT INTO runs (ingest_key, ingested_at, suite, command,"
                " code_version, git_rev, schema_version, elapsed_s, jobs,"
                " hits, misses, errors, shard)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (key, time.time(), suite, doc.get("command"),
                 doc.get("code"), git_rev, int(doc.get("version", 0)),
                 float(sum(c.get("elapsed_s", 0.0) for c in campaigns)),
                 int(sum(c.get("jobs", 0) for c in campaigns)),
                 int(sum(c.get("hits", 0) for c in campaigns)),
                 int(sum(c.get("misses", 0) for c in campaigns)),
                 int(sum(c.get("errors", 0) for c in campaigns)), shard))
        except sqlite3.IntegrityError:
            return None
        run_id = int(cur.lastrowid)
        for campaign in campaigns:
            for job in campaign.get("jobs_detail", []):
                cur.execute(
                    "INSERT INTO jobs (run_id, name, benchmark, outcome,"
                    " cache_key, nodes_before, nodes_after, wall_s,"
                    " flow_runtime_s) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (run_id, job.get("name", "?"),
                     job.get("benchmark", "?"), job.get("outcome", "?"),
                     job.get("key"), int(job.get("nodes_before", 0)),
                     int(job.get("nodes_after", 0)),
                     float(job.get("wall_s", 0.0)),
                     float(job.get("flow_runtime_s", 0.0))))
                for index, stage in enumerate(job.get("stages") or []):
                    cur.execute(
                        "INSERT INTO stages (run_id, job_name, benchmark,"
                        " outcome, stage_index, stage, size, elapsed_s)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (run_id, job.get("name", "?"),
                         job.get("benchmark", "?"), job.get("outcome", "?"),
                         index, stage.get("name", "?"),
                         int(stage.get("size", 0)),
                         float(stage.get("elapsed_s", 0.0))))
        self.conn.commit()
        return run_id

    # -- queries -------------------------------------------------------------

    def run_count(self) -> int:
        return int(self.conn.execute("SELECT COUNT(*) FROM runs")
                   .fetchone()[0])

    def runs(self, limit: int = 20) -> List[Dict[str, Any]]:
        """Newest-first run rows (dicts)."""
        cur = self.conn.execute(
            "SELECT run_id, suite, command, code_version, git_rev,"
            " elapsed_s, jobs, hits, misses, errors, ingested_at, shard"
            " FROM runs ORDER BY run_id DESC LIMIT ?", (limit,))
        cols = [d[0] for d in cur.description]
        return [dict(zip(cols, row)) for row in cur.fetchall()]

    def trend(self, benchmark: Optional[str] = None,
              stage: Optional[str] = None,
              limit: int = 10) -> List[Dict[str, Any]]:
        """Per-run samples for a benchmark (optionally one stage of it).

        Newest-first rows: ``run_id``, ``benchmark``, ``stage`` (None at
        job grain), ``nodes`` and the node delta vs the previous run,
        ``elapsed_s`` (0 for warm outcomes), ``outcome``.
        """
        if stage is not None:
            cur = self.conn.execute(
                "SELECT s.run_id, s.benchmark, s.stage, s.size,"
                " s.elapsed_s, s.outcome FROM stages s"
                " WHERE (? IS NULL OR s.benchmark = ?) AND s.stage = ?"
                " ORDER BY s.run_id DESC, s.benchmark, s.stage_index"
                " LIMIT ?",
                (benchmark, benchmark, stage, limit))
            rows = [{"run_id": r[0], "benchmark": r[1], "stage": r[2],
                     "nodes": r[3], "elapsed_s": r[4], "outcome": r[5]}
                    for r in cur.fetchall()]
        else:
            cur = self.conn.execute(
                "SELECT j.run_id, j.benchmark, j.nodes_after,"
                " j.flow_runtime_s, j.outcome FROM jobs j"
                " WHERE (? IS NULL OR j.benchmark = ?)"
                " ORDER BY j.run_id DESC, j.benchmark LIMIT ?",
                (benchmark, benchmark, limit))
            rows = [{"run_id": r[0], "benchmark": r[1], "stage": None,
                     "nodes": r[2], "elapsed_s": r[3], "outcome": r[4]}
                    for r in cur.fetchall()]
        # node delta vs the chronologically previous sample of the same series
        by_series: Dict[Any, List[Dict[str, Any]]] = {}
        for row in reversed(rows):                    # oldest first
            series = by_series.setdefault((row["benchmark"], row["stage"]),
                                          [])
            row["nodes_delta"] = (row["nodes"] - series[-1]["nodes"]
                                  if series else 0)
            series.append(row)
        return rows

    # -- regression detection ------------------------------------------------

    def regress(self, window: int = 5, time_ratio: float = 1.5,
                node_ratio: float = 1.05,
                min_secs: float = 0.05) -> List[Regression]:
        """Latest run vs the median of up to *window* prior runs.

        Returns one :class:`Regression` per confirmed finding; empty when
        quiet **or** when there is no prior history to compare against.
        """
        latest = self.conn.execute(
            "SELECT MAX(run_id) FROM runs").fetchone()[0]
        if latest is None:
            return []
        prior_ids = [r[0] for r in self.conn.execute(
            "SELECT run_id FROM runs WHERE run_id < ?"
            " ORDER BY run_id DESC LIMIT ?", (latest, window))]
        if not prior_ids:
            return []
        marks = ",".join("?" * len(prior_ids))
        findings: List[Regression] = []

        def check(kind: str, benchmark: str, stage: Optional[str],
                  value: float, baseline_values: List[float],
                  ratio_gate: float, floor: float) -> None:
            if not baseline_values:
                return
            baseline = float(statistics.median(baseline_values))
            if baseline <= 0:
                return
            if value > baseline * ratio_gate and value - baseline > floor:
                findings.append(Regression(
                    kind=kind, benchmark=benchmark, stage=stage,
                    latest=value, baseline=baseline,
                    ratio=value / baseline, run_id=int(latest),
                    samples=len(baseline_values)))

        # job grain -----------------------------------------------------------
        for bench, nodes, runtime, outcome in self.conn.execute(
                "SELECT benchmark, nodes_after, flow_runtime_s, outcome"
                " FROM jobs WHERE run_id = ?", (latest,)):
            prior_nodes = [r[0] for r in self.conn.execute(
                f"SELECT nodes_after FROM jobs WHERE benchmark = ?"
                f" AND run_id IN ({marks})", (bench, *prior_ids))]
            check("job_nodes", bench, None, float(nodes),
                  [float(v) for v in prior_nodes], node_ratio, 0.0)
            if outcome in _COLD_OUTCOMES:
                prior_times = [r[0] for r in self.conn.execute(
                    f"SELECT flow_runtime_s FROM jobs WHERE benchmark = ?"
                    f" AND outcome IN (?, ?) AND run_id IN ({marks})",
                    (bench, *_COLD_OUTCOMES, *prior_ids))]
                check("job_time", bench, None, float(runtime),
                      [float(v) for v in prior_times], time_ratio, min_secs)
        # stage grain ----------------------------------------------------------
        for bench, stage, size, elapsed, outcome in self.conn.execute(
                "SELECT benchmark, stage, size, elapsed_s, outcome"
                " FROM stages WHERE run_id = ?", (latest,)):
            prior_sizes = [r[0] for r in self.conn.execute(
                f"SELECT size FROM stages WHERE benchmark = ? AND stage = ?"
                f" AND run_id IN ({marks})", (bench, stage, *prior_ids))]
            check("stage_nodes", bench, stage, float(size),
                  [float(v) for v in prior_sizes], node_ratio, 0.0)
            if outcome in _COLD_OUTCOMES:
                prior_times = [r[0] for r in self.conn.execute(
                    f"SELECT elapsed_s FROM stages WHERE benchmark = ?"
                    f" AND stage = ? AND outcome IN (?, ?)"
                    f" AND run_id IN ({marks})",
                    (bench, stage, *_COLD_OUTCOMES, *prior_ids))]
                check("stage_time", bench, stage, float(elapsed),
                      [float(v) for v in prior_times], time_ratio, min_secs)
        findings.sort(key=lambda f: (-f.ratio, f.kind, f.benchmark,
                                     f.stage or ""))
        return findings


def wrap_campaign_report(campaign_doc: Dict[str, Any],
                         command: Optional[str] = None) -> Dict[str, Any]:
    """A minimal, schema-valid v3 run-report document around one campaign."""
    from repro import hotpath
    return {
        "schema": "repro.obs/run-report",
        "version": 3,
        "command": command,
        "code": hotpath.CODE_VERSION,
        "trace": [],
        "dropped_spans": 0,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "flows": [],
        "parallel_passes": [],
        "guard": [],
        "campaign": [campaign_doc],
    }


def ingest_campaign_report(db_path: str, report: Any) -> Optional[int]:
    """Ingest a finished :class:`~repro.campaign.runner.CampaignReport`.

    The campaign section is wrapped into a minimal run-report document;
    note the wrapper's content hash differs from a full ``--report-json``
    file of the same run, so use **one** ingest path per run (either this
    hook or an explicit ``history ingest`` of the report file, not both).
    """
    doc = wrap_campaign_report(report.to_dict())
    with HistoryStore(db_path) as store:
        return store.ingest(doc, git_rev=detect_git_rev())


# -- CLI -----------------------------------------------------------------------

_USAGE = """usage: python -m repro.obs.history <command> DB ...

  ingest  DB report.json [more.json|-]...   store run reports (idempotent)
  trend   DB [--benchmark B] [--stage S] [--limit N]
  regress DB [--window N] [--time-ratio R] [--node-ratio R] [--min-secs S]

regress exits 1 when a regression is confirmed, 0 when quiet."""


def _pop_value(args: List[str], flag: str,
               default: Optional[str] = None) -> Optional[str]:
    for i, arg in enumerate(args):
        if arg == flag:
            if i + 1 >= len(args):
                raise SystemExit(f"{flag} requires a value")
            value = args[i + 1]
            del args[i:i + 2]
            return value
        if arg.startswith(flag + "="):
            del args[i]
            return arg.split("=", 1)[1]
    return default


def _load_docs(paths: Iterable[str]):
    import sys
    for path in paths:
        if path == "-":
            yield path, json.load(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                yield path, json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    import sys
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) < 2:
        print(_USAGE, file=sys.stderr)
        return 2
    command, db = args[0], args[1]
    rest = args[2:]
    if command == "ingest":
        if not rest:
            print(_USAGE, file=sys.stderr)
            return 2
        git_rev = _pop_value(rest, "--git-rev") or detect_git_rev()
        ingested = duplicates = 0
        with HistoryStore(db) as store:
            try:
                for path, doc in _load_docs(rest):
                    try:
                        run_id = store.ingest(doc, git_rev=git_rev)
                    except ReportSchemaError as exc:
                        print(f"{path}: SCHEMA ERROR: {exc}",
                              file=sys.stderr)
                        return 1
                    if run_id is None:
                        duplicates += 1
                        print(f"{path}: duplicate (already ingested)")
                    else:
                        ingested += 1
                        print(f"{path}: ingested as run #{run_id}")
            except (OSError, ValueError) as exc:
                print(f"cannot read report: {exc}", file=sys.stderr)
                return 3
            print(f"history: {ingested} ingested, {duplicates} duplicate(s),"
                  f" {store.run_count()} run(s) total in {db}")
        return 0
    if command == "trend":
        benchmark = _pop_value(rest, "--benchmark")
        stage = _pop_value(rest, "--stage")
        limit = int(_pop_value(rest, "--limit", "10") or 10)
        if rest:
            print(_USAGE, file=sys.stderr)
            return 2
        with HistoryStore(db) as store:
            rows = store.trend(benchmark=benchmark, stage=stage, limit=limit)
        if not rows:
            print("(no samples)")
            return 0
        print(f"{'run':>5s} {'benchmark':16s} {'stage':12s} {'nodes':>8s} "
              f"{'Δnodes':>7s} {'elapsed':>9s} outcome")
        for row in rows:
            print(f"{row['run_id']:5d} {row['benchmark']:16s} "
                  f"{(row['stage'] or '-'):12s} {row['nodes']:8d} "
                  f"{row['nodes_delta']:+7d} {row['elapsed_s']:8.3f}s "
                  f"{row['outcome']}")
        return 0
    if command == "regress":
        window = int(_pop_value(rest, "--window", "5") or 5)
        time_ratio = float(_pop_value(rest, "--time-ratio", "1.5") or 1.5)
        node_ratio = float(_pop_value(rest, "--node-ratio", "1.05") or 1.05)
        min_secs = float(_pop_value(rest, "--min-secs", "0.05") or 0.05)
        if rest:
            print(_USAGE, file=sys.stderr)
            return 2
        with HistoryStore(db) as store:
            total = store.run_count()
            findings = store.regress(window=window, time_ratio=time_ratio,
                                     node_ratio=node_ratio,
                                     min_secs=min_secs)
        if total < 2:
            print(f"regress: insufficient history ({total} run(s)) — "
                  f"nothing to compare")
            return 0
        if not findings:
            print(f"regress: quiet (latest run vs up to {window} prior, "
                  f"{total} run(s) in store)")
            return 0
        print(f"regress: {len(findings)} regression(s) confirmed:")
        for finding in findings:
            print(f"  {finding.describe()}")
        return 1
    print(_USAGE, file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
