"""Span-trace profile export: JSONL → Chrome trace-event / speedscope.

The tracer's JSONL sink (``--trace-jsonl``) records the raw span stream;
this module converts it into the two de-facto standard interactive profile
formats so a flow can be inspected in ``chrome://tracing`` / Perfetto or
`speedscope.app <https://www.speedscope.app>`_ without any extra tooling:

* **Chrome trace-event** — one ``"X"`` (complete) event per span, with
  microsecond ``ts``/``dur`` and the span attributes under ``args``;
* **speedscope** — an ``evented`` profile of balanced ``O``/``C`` frame
  events.  Real traces contain worker-side :meth:`Tracer.record` spans
  whose measured wall time can overhang the enclosing parent span, so the
  exporter re-nests defensively: child intervals are emitted strictly
  inside their parent's open/close, the event clock is forced monotonic,
  and a parent's close is pushed late rather than ever closing out of
  LIFO order.

CLI
---
::

    python -m repro.obs.trace trace.jsonl --chrome out.json
    python -m repro.obs.trace trace.jsonl --speedscope out.json --check

``--check`` re-validates the written profiles (non-negative durations,
balanced and monotonic speedscope events) and fails the command when an
invariant is broken — the tiered CI's ``obs-smoke`` step runs it on a real
flow trace.  Exit codes: ``0`` converted (and valid), ``1`` validation
failed, ``2`` usage error, ``3`` unreadable/empty input.

Reads through :func:`repro.obs.tracer.iter_jsonl`, so a trace truncated by
a crash converts cleanly up to the tear.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import iter_jsonl


class TraceSpan:
    """One reconstructed span interval from the JSONL stream."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "t0", "wall_s",
                 "attrs", "children")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 kind: str, t0: float) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.t0 = t0
        self.wall_s = 0.0
        self.attrs: Dict[str, Any] = {}
        self.children: List["TraceSpan"] = []


def load_spans(path: str) -> Tuple[List[TraceSpan], int]:
    """Rebuild the span forest from a JSONL trace.

    Returns ``(roots, skipped)`` where *skipped* counts undecodable lines
    tolerated by the streaming reader.  Spans whose ``end`` record is
    missing (crash mid-span) keep ``wall_s = 0``.
    """
    reader = iter_jsonl(path)
    spans: Dict[int, TraceSpan] = {}
    order: List[int] = []
    for record in reader:
        ev = record.get("ev")
        if ev == "start":
            span = TraceSpan(record["id"], record.get("parent"),
                             str(record.get("name", "?")),
                             str(record.get("kind", "span")),
                             float(record.get("t", 0.0)))
            spans[span.span_id] = span
            order.append(span.span_id)
        elif ev == "end":
            span = spans.get(record.get("id"))
            if span is None:
                continue
            span.wall_s = float(record.get("wall_s", 0.0))
            span.attrs = record.get("attrs", {}) or {}
    roots: List[TraceSpan] = []
    for span_id in order:
        span = spans[span_id]
        parent = spans.get(span.parent_id) if span.parent_id is not None \
            else None
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots, reader.skipped


def _walk(roots: List[TraceSpan]):
    stack = list(reversed(roots))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))


def to_chrome(roots: List[TraceSpan]) -> Dict[str, Any]:
    """The Chrome trace-event document (``"X"`` complete events, µs)."""
    events: List[Dict[str, Any]] = []
    for span in _walk(roots):
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": round(span.t0 * 1e6, 3),
            "dur": round(max(span.wall_s, 0.0) * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": dict(span.attrs),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_speedscope(roots: List[TraceSpan],
                  name: str = "repro flow") -> Dict[str, Any]:
    """The speedscope ``evented`` profile document.

    Frames are deduplicated by span name; open/close events are re-nested
    so the stream is balanced and the clock monotonic even when worker
    ``record`` spans overhang their parent.
    """
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []

    def frame_of(span_name: str) -> int:
        idx = frame_index.get(span_name)
        if idx is None:
            idx = len(frames)
            frame_index[span_name] = idx
            frames.append({"name": span_name})
        return idx

    def emit(span: TraceSpan, cursor: float) -> float:
        frame = frame_of(span.name)
        open_at = max(cursor, span.t0)
        events.append({"type": "O", "frame": frame, "at": open_at})
        cur = open_at
        for child in span.children:
            cur = emit(child, cur)
        close_at = max(cur, span.t0 + max(span.wall_s, 0.0), open_at)
        events.append({"type": "C", "frame": frame, "at": close_at})
        return close_at

    cursor = 0.0
    for root in roots:
        cursor = emit(root, cursor)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": "seconds",
            "startValue": 0.0,
            "endValue": cursor,
            "events": events,
        }],
        "exporter": "repro.obs.trace",
    }


# -- validation ----------------------------------------------------------------

def check_chrome(doc: Dict[str, Any]) -> List[str]:
    """Structural problems in a Chrome trace document ([] when valid)."""
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, event in enumerate(events):
        for field in ("name", "ph", "ts", "dur"):
            if field not in event:
                problems.append(f"event #{i}: missing {field!r}")
        if event.get("ph") != "X":
            problems.append(f"event #{i}: unexpected phase {event.get('ph')!r}")
        if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            problems.append(f"event #{i}: negative dur")
    return problems


def check_speedscope(doc: Dict[str, Any]) -> List[str]:
    """Structural problems in a speedscope document ([] when valid)."""
    problems: List[str] = []
    frames = doc.get("shared", {}).get("frames")
    profiles = doc.get("profiles")
    if not isinstance(frames, list):
        return ["shared.frames is not a list"]
    if not isinstance(profiles, list) or not profiles:
        return ["profiles is empty"]
    for p, profile in enumerate(profiles):
        stack: List[int] = []
        last_at = float(profile.get("startValue", 0.0))
        for i, event in enumerate(profile.get("events", [])):
            at = event.get("at")
            frame = event.get("frame")
            if not isinstance(at, (int, float)) or at < last_at:
                problems.append(f"profile #{p} event #{i}: clock not "
                                f"monotonic ({at!r} < {last_at!r})")
                continue
            last_at = float(at)
            if not isinstance(frame, int) or not 0 <= frame < len(frames):
                problems.append(f"profile #{p} event #{i}: bad frame index "
                                f"{frame!r}")
                continue
            if event.get("type") == "O":
                stack.append(frame)
            elif event.get("type") == "C":
                if not stack or stack[-1] != frame:
                    problems.append(f"profile #{p} event #{i}: close of "
                                    f"frame {frame} breaks LIFO order")
                else:
                    stack.pop()
            else:
                problems.append(f"profile #{p} event #{i}: unknown type "
                                f"{event.get('type')!r}")
        if stack:
            problems.append(f"profile #{p}: {len(stack)} frame(s) left open")
        if last_at > float(profile.get("endValue", last_at)):
            problems.append(f"profile #{p}: events run past endValue")
    return problems


# -- CLI -----------------------------------------------------------------------

_USAGE = """usage: python -m repro.obs.trace TRACE.jsonl
           [--chrome OUT.json] [--speedscope OUT.json] [--check]

Convert a span JSONL trace (--trace-jsonl) into interactive profiles.
At least one of --chrome/--speedscope is required; --check re-validates
the written documents and fails on broken invariants.
Exit codes: 0 ok, 1 validation failed, 2 usage, 3 unreadable/empty input."""


def _pop_value(args: List[str], flag: str) -> Optional[str]:
    for i, arg in enumerate(args):
        if arg == flag:
            if i + 1 >= len(args):
                raise SystemExit(f"{flag} requires a value")
            value = args[i + 1]
            del args[i:i + 2]
            return value
        if arg.startswith(flag + "="):
            del args[i]
            return arg.split("=", 1)[1]
    return None


def main(argv: Optional[List[str]] = None) -> int:
    import sys
    args = list(sys.argv[1:] if argv is None else argv)
    chrome_out = _pop_value(args, "--chrome")
    speedscope_out = _pop_value(args, "--speedscope")
    check = "--check" in args
    args = [a for a in args if a != "--check"]
    if len(args) != 1 or args[0].startswith("-"):
        print(_USAGE, file=sys.stderr)
        return 2
    if chrome_out is None and speedscope_out is None:
        print(_USAGE, file=sys.stderr)
        return 2
    path = args[0]
    try:
        roots, skipped = load_spans(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 3
    if not roots:
        print(f"{path}: no spans found", file=sys.stderr)
        return 3
    if skipped:
        print(f"{path}: tolerated {skipped} undecodable line(s)",
              file=sys.stderr)
    total = sum(1 for _ in _walk(roots))
    status = 0
    if chrome_out is not None:
        doc = to_chrome(roots)
        with open(chrome_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, sort_keys=True)
            handle.write("\n")
        print(f"chrome trace: {len(doc['traceEvents'])} events "
              f"-> {chrome_out}")
        if check:
            problems = check_chrome(doc)
            for problem in problems:
                print(f"chrome check: {problem}", file=sys.stderr)
            status = status or (1 if problems else 0)
    if speedscope_out is not None:
        doc = to_speedscope(roots, name=f"repro {path}")
        with open(speedscope_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, sort_keys=True)
            handle.write("\n")
        print(f"speedscope profile: {len(doc['profiles'][0]['events'])} "
              f"events, {len(doc['shared']['frames'])} frames "
              f"-> {speedscope_out}")
        if check:
            problems = check_speedscope(doc)
            for problem in problems:
                print(f"speedscope check: {problem}", file=sys.stderr)
            status = status or (1 if problems else 0)
    if check and status == 0:
        print(f"check ok: {total} spans")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
