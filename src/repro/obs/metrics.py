"""Engine-level metrics registry: counters, gauges, histograms.

The SBM engines emit *events* that spans are too coarse to capture —
gradient move waterfall selections and budget spend, BDD-size-limit and
MSPF memory bailouts, kernel-threshold winners per partition, SAT-sweep
merges, parallel fallback reasons.  The registry aggregates them:

* **counters** — monotonically added values (``inc``),
* **gauges** — last-written values (``set_gauge``),
* **histograms** — running ``count/sum/min/max`` aggregates (``observe``).

Keys carry optional labels, rendered into the key as
``name{label=value,...}`` with labels sorted — so the same event emitted
anywhere aggregates under one key.

Worker processes cannot write to the parent registry; they fill a fresh
local registry, :meth:`MetricsRegistry.snapshot` it into the window
payload, and the parallel scheduler :meth:`MetricsRegistry.merge`\\ s the
snapshots back **in partition order**.  Every merge operation is
commutative and value-deterministic (only counts, never wall times, go
through the registry), so the merged metrics are identical for ``jobs=1``
and ``jobs=N``.

The disabled registry is the :data:`NULL_METRICS` singleton whose methods
are no-ops, mirroring the null tracer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Render ``name`` + labels into the canonical registry key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Aggregates counters, gauges, and histogram summaries."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: key -> [count, sum, min, max]
        self._hists: Dict[str, List[float]] = {}

    # -- write API -----------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add *value* to a counter."""
        key = metric_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to its latest value."""
        self.gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Fold *value* into a histogram summary."""
        key = metric_key(name, labels)
        hist = self._hists.get(key)
        if hist is None:
            self._hists[key] = [1, value, value, value]
        else:
            hist[0] += 1
            hist[1] += value
            hist[2] = min(hist[2], value)
            hist[3] = max(hist[3], value)

    # -- read / transport ----------------------------------------------------

    def counter(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.counters.get(metric_key(name, labels), 0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """All counters whose key starts with *prefix* (sorted)."""
        return {k: self.counters[k] for k in sorted(self.counters)
                if k.startswith(prefix)}

    @property
    def histograms(self) -> Dict[str, Dict[str, float]]:
        """Histogram summaries as ``{key: {count, sum, min, max, mean}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for key, (count, total, lo, hi) in self._hists.items():
            out[key] = {"count": count, "sum": total, "min": lo, "max": hi,
                        "mean": total / count if count else 0.0}
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data copy for pickling across the process boundary."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: list(v) for k, v in self._hists.items()},
        }

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` in: counters add, histograms combine,
        gauges last-write (in merge-call order)."""
        if not snapshot:
            return
        for key, value in snapshot.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            self.gauges[key] = value
        for key, (count, total, lo, hi) in snapshot.get(
                "histograms", {}).items():
            hist = self._hists.get(key)
            if hist is None:
                self._hists[key] = [count, total, lo, hi]
            else:
                hist[0] += count
                hist[1] += total
                hist[2] = min(hist[2], lo)
                hist[3] = max(hist[3], hi)

    def is_empty(self) -> bool:
        """True when nothing was recorded."""
        return not (self.counters or self.gauges or self._hists)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, sorted representation for the run report."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: v for k, v in sorted(self.histograms.items())},
        }


class NullMetrics:
    """Disabled registry: same write API, costs nothing."""

    enabled = False
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def counter(self, name: str, **labels: Any) -> float:
        return 0

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        return {}

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge(self, snapshot: Optional[Dict[str, Any]]) -> None:
        pass

    def is_empty(self) -> bool:
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The singleton disabled registry (the default active registry).
NULL_METRICS = NullMetrics()
