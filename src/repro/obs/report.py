"""Machine-readable run reports over the observability store.

One enabled run produces one report: the span tree, the metrics registry,
every :class:`~repro.sbm.flow.FlowStats` and
:class:`~repro.parallel.stats.ParallelReport` the run registered — the
pre-existing telemetry becomes views over this single store.  The JSON
layout is a **stable schema** (``schema``/``version`` keys, validated by
:func:`validate_report`); consumers can rely on it across releases, and CI
runs the validator on a real flow report so schema drift fails the build.

``python -m repro.obs.report <path.json>`` validates a report file and
prints its trace table — the check CI runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

SCHEMA_NAME = "repro.obs/run-report"
#: v1 — trace/metrics/flows/parallel_passes.
#: v2 — adds the ``guard`` section (repro.guard: degradations, rollbacks,
#:      checkpoints, injected faults).  v1 reports still validate.
#: v3 — adds the ``campaign`` section (repro.campaign: per-job cache
#:      hit/miss/dedup outcomes, stolen windows, summed parallel
#:      telemetry, wall/CPU totals).  v1/v2 reports still validate.
SCHEMA_VERSION = 3


class ReportSchemaError(ValueError):
    """A run report does not conform to the published schema."""


# -- building -----------------------------------------------------------------

def build_report(session, command: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the JSON-safe run report from an enabled ObsSession."""
    from repro.hotpath import CODE_VERSION
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "command": command,
        # optional since v3: the flow's cache-key code revision, so the
        # telemetry history store can attribute runs to code versions
        "code": CODE_VERSION,
        "trace": [span.to_dict() for span in session.tracer.roots],
        "dropped_spans": session.tracer.dropped_spans,
        "metrics": session.metrics.to_dict(),
        "flows": [stats.to_dict() for stats in session.flow_stats],
        "parallel_passes": [report.to_dict()
                            for report in session.parallel_reports],
        "guard": [report.to_dict()
                  for report in getattr(session, "guard_reports", [])],
        "campaign": [report.to_dict()
                     for report in getattr(session, "campaign_reports", [])],
    }


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Write a report as pretty-printed, key-sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- validation ---------------------------------------------------------------

def _expect(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ReportSchemaError(f"{where}: {message}")


def _check_number(value: Any, where: str) -> None:
    _expect(isinstance(value, (int, float)) and not isinstance(value, bool),
            where, f"expected a number, got {value!r}")


def _check_span(span: Any, where: str) -> None:
    _expect(isinstance(span, dict), where, "span must be an object")
    for key, kind in (("name", str), ("kind", str), ("attrs", dict),
                      ("events", list), ("children", list)):
        _expect(key in span, where, f"span missing {key!r}")
        _expect(isinstance(span[key], kind), where,
                f"span {key!r} must be {kind.__name__}")
    _check_number(span.get("wall_s"), f"{where}.wall_s")
    _check_number(span.get("cpu_s"), f"{where}.cpu_s")
    for event in span["events"]:
        _expect(isinstance(event, dict) and isinstance(event.get("name"), str),
                where, "span events must be objects with a 'name'")
    for i, child in enumerate(span["children"]):
        _check_span(child, f"{where}.children[{i}]")


def _check_metrics(metrics: Any, where: str) -> None:
    _expect(isinstance(metrics, dict), where, "metrics must be an object")
    for section in ("counters", "gauges", "histograms"):
        _expect(isinstance(metrics.get(section), dict), where,
                f"metrics.{section} must be an object")
    for key, value in metrics["counters"].items():
        _check_number(value, f"{where}.counters[{key!r}]")
    for key, value in metrics["gauges"].items():
        _check_number(value, f"{where}.gauges[{key!r}]")
    for key, hist in metrics["histograms"].items():
        _expect(isinstance(hist, dict), where,
                f"histograms[{key!r}] must be an object")
        for stat in ("count", "sum", "min", "max", "mean"):
            _check_number(hist.get(stat),
                          f"{where}.histograms[{key!r}].{stat}")


def _check_flow(flow: Any, where: str) -> None:
    _expect(isinstance(flow, dict), where, "flow must be an object")
    _check_number(flow.get("runtime_s"), f"{where}.runtime_s")
    _expect(isinstance(flow.get("stages"), list), where,
            "flow.stages must be a list")
    for i, stage in enumerate(flow["stages"]):
        at = f"{where}.stages[{i}]"
        _expect(isinstance(stage, dict), at, "stage must be an object")
        _expect(isinstance(stage.get("name"), str), at,
                "stage.name must be a string")
        _check_number(stage.get("size"), f"{at}.size")
        _check_number(stage.get("elapsed_s"), f"{at}.elapsed_s")


def _check_parallel(entry: Any, where: str) -> None:
    _expect(isinstance(entry, dict), where,
            "parallel pass must be an object")
    _expect(isinstance(entry.get("engine"), str), where,
            "engine must be a string")
    for key in ("jobs", "num_windows", "num_applied", "num_fallbacks",
                "pool_restarts", "total_gain"):
        _check_number(entry.get(key), f"{where}.{key}")
    for key in ("elapsed_s", "worker_wall_s", "useful_worker_wall_s",
                "speedup"):
        _check_number(entry.get(key), f"{where}.{key}")
    _expect(isinstance(entry.get("fallback_reasons"), dict), where,
            "fallback_reasons must be an object")
    _expect(isinstance(entry.get("windows"), list), where,
            "windows must be a list")
    for i, window in enumerate(entry["windows"]):
        at = f"{where}.windows[{i}]"
        _expect(isinstance(window, dict), at, "window must be an object")
        for key in ("index", "size", "leaves", "wall_s", "gain"):
            _check_number(window.get(key), f"{at}.{key}")
        _expect(isinstance(window.get("applied"), bool), at,
                "applied must be a bool")


def _check_guard(entry: Any, where: str) -> None:
    _expect(isinstance(entry, dict), where, "guard entry must be an object")
    for key in ("rollbacks", "degradations", "skips", "checkpoints"):
        _check_number(entry.get(key), f"{where}.{key}")
    _expect(isinstance(entry.get("faults"), list), where,
            "faults must be a list")
    for i, fault in enumerate(entry["faults"]):
        at = f"{where}.faults[{i}]"
        _expect(isinstance(fault, dict), at, "fault must be an object")
        _expect(isinstance(fault.get("site"), str), at,
                "fault.site must be a string")
        _expect(isinstance(fault.get("kind"), str), at,
                "fault.kind must be a string")
    _expect(isinstance(entry.get("events"), list), where,
            "events must be a list")
    for i, event in enumerate(entry["events"]):
        at = f"{where}.events[{i}]"
        _expect(isinstance(event, dict), at, "event must be an object")
        _expect(isinstance(event.get("kind"), str), at,
                "event.kind must be a string")
        _expect(isinstance(event.get("stage"), str), at,
                "event.stage must be a string")
        _expect(isinstance(event.get("detail"), dict), at,
                "event.detail must be an object")


def _check_campaign(entry: Any, where: str) -> None:
    _expect(isinstance(entry, dict), where,
            "campaign entry must be an object")
    _expect(isinstance(entry.get("suite"), str), where,
            "suite must be a string")
    _expect(entry.get("cache_dir") is None
            or isinstance(entry["cache_dir"], str),
            f"{where}.cache_dir", "must be a string or null")
    _expect(entry.get("shard") is None or isinstance(entry["shard"], dict),
            f"{where}.shard", "must be an object or null")
    for key in ("jobs", "hits", "misses", "deduped", "uncached",
                "corrupt_entries", "stolen_windows", "pool_rebuilds",
                "pool_restarts"):
        _check_number(entry.get(key), f"{where}.{key}")
    for key in ("elapsed_s", "cpu_s", "worker_wall_s"):
        _check_number(entry.get(key), f"{where}.{key}")
    _expect(entry.get("parallel") is None
            or isinstance(entry["parallel"], dict),
            f"{where}.parallel", "must be an object or null")
    _expect(isinstance(entry.get("jobs_detail"), list), where,
            "jobs_detail must be a list")
    for i, job in enumerate(entry["jobs_detail"]):
        at = f"{where}.jobs_detail[{i}]"
        _expect(isinstance(job, dict), at, "job must be an object")
        for key in ("name", "benchmark", "outcome"):
            _expect(isinstance(job.get(key), str), at,
                    f"job.{key} must be a string")
        _expect(job.get("key") is None or isinstance(job["key"], str),
                f"{at}.key", "must be a string or null")
        for key in ("wall_s", "flow_runtime_s", "nodes_before",
                    "nodes_after", "stolen_windows", "pool_restarts",
                    "faults"):
            _check_number(job.get(key), f"{at}.{key}")
        if "stages" in job:          # optional: per-stage history samples
            _expect(isinstance(job["stages"], list), at,
                    "job.stages must be a list")
            for j, stage in enumerate(job["stages"]):
                st = f"{at}.stages[{j}]"
                _expect(isinstance(stage, dict), st,
                        "stage must be an object")
                _expect(isinstance(stage.get("name"), str), st,
                        "stage.name must be a string")
                _check_number(stage.get("size"), f"{st}.size")
                _check_number(stage.get("elapsed_s"), f"{st}.elapsed_s")


def validate_report(report: Any) -> None:
    """Raise :class:`ReportSchemaError` unless *report* matches the schema.

    Accepts every published version up to :data:`SCHEMA_VERSION`; the
    ``guard`` section is required from v2 on, ``campaign`` from v3 on.
    """
    _expect(isinstance(report, dict), "report", "must be an object")
    _expect(report.get("schema") == SCHEMA_NAME, "report.schema",
            f"expected {SCHEMA_NAME!r}, got {report.get('schema')!r}")
    version = report.get("version")
    _expect(isinstance(version, int) and 1 <= version <= SCHEMA_VERSION,
            "report.version",
            f"expected an integer in [1, {SCHEMA_VERSION}], "
            f"got {report.get('version')!r}")
    _expect(report.get("command") is None
            or isinstance(report["command"], str),
            "report.command", "must be a string or null")
    if "code" in report:             # optional: flow code revision
        _expect(report["code"] is None or isinstance(report["code"], str),
                "report.code", "must be a string or null")
    _check_number(report.get("dropped_spans"), "report.dropped_spans")
    _expect(isinstance(report.get("trace"), list), "report.trace",
            "must be a list")
    for i, span in enumerate(report["trace"]):
        _check_span(span, f"report.trace[{i}]")
    _check_metrics(report.get("metrics"), "report.metrics")
    _expect(isinstance(report.get("flows"), list), "report.flows",
            "must be a list")
    for i, flow in enumerate(report["flows"]):
        _check_flow(flow, f"report.flows[{i}]")
    _expect(isinstance(report.get("parallel_passes"), list),
            "report.parallel_passes", "must be a list")
    for i, entry in enumerate(report["parallel_passes"]):
        _check_parallel(entry, f"report.parallel_passes[{i}]")
    if version >= 2:
        _expect(isinstance(report.get("guard"), list), "report.guard",
                "must be a list (schema v2)")
        for i, entry in enumerate(report["guard"]):
            _check_guard(entry, f"report.guard[{i}]")
    if version >= 3:
        _expect(isinstance(report.get("campaign"), list), "report.campaign",
                "must be a list (schema v3)")
        for i, entry in enumerate(report["campaign"]):
            _check_campaign(entry, f"report.campaign[{i}]")


# -- rendering ----------------------------------------------------------------

def _delta(attrs: Dict[str, Any]) -> str:
    before, after = attrs.get("nodes_before"), attrs.get("nodes_after")
    if isinstance(before, (int, float)) and isinstance(after, (int, float)):
        return f"{int(after - before):+d}"
    return ""


def format_trace_table(spans: List[Dict[str, Any]],
                       max_depth: int = 4) -> str:
    """Render the span tree as an indented human table.

    Window/move spans below ``max_depth`` are summarized into a single
    ``(N more spans)`` line per parent to keep the table readable.
    """
    lines = [f"{'span':44s} {'wall_s':>9s} {'cpu_s':>9s} {'Δnodes':>8s}"]

    def visit(span: Dict[str, Any], depth: int) -> None:
        label = ("  " * depth + span["name"])[:44]
        lines.append(f"{label:44s} {span['wall_s']:9.3f} "
                     f"{span['cpu_s']:9.3f} {_delta(span['attrs']):>8s}")
        children = span.get("children", [])
        if depth + 1 >= max_depth and children:
            wall = sum(c.get("wall_s", 0.0) for c in children)
            lines.append(f"{'  ' * (depth + 1)}({len(children)} spans, "
                         f"{wall:.3f}s worker wall)")
            return
        for child in children:
            visit(child, depth + 1)

    for span in spans:
        visit(span, 0)
    return "\n".join(lines)


def format_metrics_table(metrics: Dict[str, Any]) -> str:
    """Render the metrics sections as sorted ``key value`` lines."""
    lines = []
    for key in sorted(metrics.get("counters", {})):
        lines.append(f"counter    {key:48s} {metrics['counters'][key]:g}")
    for key in sorted(metrics.get("gauges", {})):
        lines.append(f"gauge      {key:48s} {metrics['gauges'][key]:g}")
    for key in sorted(metrics.get("histograms", {})):
        hist = metrics["histograms"][key]
        lines.append(f"histogram  {key:48s} count={hist['count']:g} "
                     f"mean={hist['mean']:.3g} min={hist['min']:g} "
                     f"max={hist['max']:g}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def main(argv: Optional[List[str]] = None) -> int:
    """Validate a report file (or stdin); print its trace table on success.

    ``python -m repro.obs.report <report.json | ->`` — pass ``-`` to read
    the document from stdin, e.g. piped straight out of a run.  Exit
    codes: ``0`` valid, ``1`` schema violation, ``2`` usage error,
    ``3`` unreadable or undecodable input.
    """
    import sys
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.obs.report <report.json | ->")
        return 2
    try:
        if args[0] == "-":
            report = json.load(sys.stdin)
        else:
            with open(args[0], "r", encoding="utf-8") as handle:
                report = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read report: {exc}", file=sys.stderr)
        return 3
    try:
        validate_report(report)
    except ReportSchemaError as exc:
        print(f"SCHEMA ERROR: {exc}")
        return 1
    print(f"valid {report['schema']} v{report['version']}  "
          f"(spans={len(report['trace'])} roots, "
          f"flows={len(report['flows'])}, "
          f"parallel_passes={len(report['parallel_passes'])}, "
          f"guard={len(report.get('guard', []))}, "
          f"campaign={len(report.get('campaign', []))})")
    print(format_trace_table(report["trace"]))
    print(format_metrics_table(report["metrics"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
