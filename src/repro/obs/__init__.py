"""Observability for the SBM flow: tracing, metrics, run reports.

The package answers "where did the time go, which moves fired, why did
MSPF bail out" without print-debugging:

* :mod:`repro.obs.tracer` — hierarchical span tracer
  (``flow → iteration → stage → partition-window → move``) with wall/CPU
  time, node-count deltas, and an optional JSONL event sink,
* :mod:`repro.obs.metrics` — counters/gauges/histograms for engine-level
  events (move selections, budget spend, BDD/MSPF bailouts,
  kernel-threshold winners, SAT-sweep merges, parallel fallbacks),
* :mod:`repro.obs.report` — the stable JSON run-report schema and its
  human renderings; ``FlowStats`` and ``ParallelReport`` objects register
  themselves here, so the pre-existing telemetry becomes views over one
  store.

Instrumented code always talks to the *active* tracer/registry through the
module-level accessors (:func:`span`, :func:`metrics`, :func:`tracer`).
By default both are disabled no-op singletons, so the instrumentation adds
near-zero overhead; :func:`enable` (the ``--trace``/``--report-json`` CLI
flags) swaps in live objects for the duration of a run:

    session = obs.enable(jsonl_path="trace.jsonl")
    try:
        optimized, stats = sbm_flow(aig, config)
    finally:
        obs.disable()
    report = build_report(session, command="optimize adder")

Worker processes never write to the parent's tracer or registry: the
parallel scheduler gives each window task a fresh local registry, ships
its snapshot back inside the window payload, and merges the snapshots in
deterministic partition order (see :mod:`repro.parallel.scheduler`).

Worker *threads* (the campaign orchestrator runs one flow per thread over a
shared process pool, see :mod:`repro.campaign`) use the **thread-local
override**: :func:`install_local` redirects this thread's accessors to a
private tracer/registry pair without touching other threads — the global
:class:`Tracer` keeps a single span stack and must never be written from
two threads.  :func:`push_collector` additionally redirects this thread's
``record_flow_stats`` / ``record_parallel_report`` / ``record_guard_report``
calls into a per-job :class:`TelemetryCollector`, which the campaign merges
back into the session in deterministic job order afterwards.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Tuple

from repro.obs.live import NULL_BUS, EventBus
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    Tracer,
    iter_jsonl,
    load_jsonl,
)

_tracer = NULL_TRACER
_metrics = NULL_METRICS
_session: Optional["ObsSession"] = None
_local = threading.local()
_live = NULL_BUS


class TelemetryCollector:
    """Per-job sink for the ``record_*`` hooks (campaign thread isolation)."""

    def __init__(self) -> None:
        self.flow_stats: List[Any] = []
        self.parallel_reports: List[Any] = []
        self.guard_reports: List[Any] = []


class ObsSession:
    """One enabled observability run: tracer + metrics + telemetry store."""

    def __init__(self, jsonl_path: Optional[str] = None,
                 max_spans: int = 100_000) -> None:
        self._sink_file = None
        self._sink = sink = None
        if jsonl_path is not None:
            self._sink_file = open(jsonl_path, "w", encoding="utf-8")
            self._sink = sink = JsonlSink(self._sink_file)
        self.tracer = Tracer(sink=sink, max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.flow_stats: List[Any] = []
        self.parallel_reports: List[Any] = []
        self.guard_reports: List[Any] = []
        self.campaign_reports: List[Any] = []

    def close(self) -> None:
        """Flush and release the JSONL sink, if any (safe to call twice)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        if self._sink_file is not None:
            self._sink_file.close()
            self._sink_file = None


# -- global context -----------------------------------------------------------

def enable(jsonl_path: Optional[str] = None,
           max_spans: int = 100_000) -> ObsSession:
    """Activate tracing and metrics; returns the new session."""
    global _tracer, _metrics, _session
    if _session is not None:
        disable()
    _session = ObsSession(jsonl_path=jsonl_path, max_spans=max_spans)
    _tracer = _session.tracer
    _metrics = _session.metrics
    return _session


def disable() -> None:
    """Deactivate observability; the session object stays readable."""
    global _tracer, _metrics, _session
    if _session is not None:
        _session.close()
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS
    _session = None


def enabled() -> bool:
    """True while a session is active or this thread carries an override."""
    return _session is not None or _override() is not None


def session() -> Optional[ObsSession]:
    """The active session, or None."""
    return _session


def _override() -> Optional[Tuple[Any, Any]]:
    """This thread's ``(tracer, metrics)`` override pair, or ``None``."""
    return getattr(_local, "override", None)


def install_local(tracer_obj: Any, metrics_obj: Any) -> None:
    """Redirect *this thread's* accessors to a private tracer/registry.

    The global :class:`Tracer` has a single span stack; a flow running in
    a worker thread (campaign jobs) must not write to it.  The override is
    invisible to every other thread; clear it with :func:`clear_local`.
    """
    _local.override = (tracer_obj, metrics_obj)


def clear_local() -> None:
    """Remove this thread's tracer/metrics override, if any."""
    _local.override = None


# -- live progress bus ---------------------------------------------------------
#
# The live bus is orthogonal to the session: it can run with or without
# tracing, is shared by every thread (it is internally locked, unlike the
# tracer's single span stack), and is deliberately *not* forwarded into
# worker processes — the partition scheduler publishes worker outcomes from
# the parent, in partition order, so streams stay deterministic.

def live_bus():
    """The active progress bus (:data:`repro.obs.live.NULL_BUS` when off).

    Call sites must guard emission with ``if bus.enabled:`` so a disabled
    bus costs one attribute check — no payload allocation, no syscall.
    """
    return _live


def enable_live(bus: Optional[EventBus] = None) -> EventBus:
    """Activate live progress streaming; returns the installed bus."""
    global _live
    _live = bus if bus is not None else EventBus()
    return _live


def disable_live():
    """Deactivate streaming; returns the bus that was active (drainable)."""
    global _live
    bus = _live
    _live = NULL_BUS
    return bus


def tracer() -> Tracer:
    """The active tracer (thread override first, null singleton when off)."""
    override = _override()
    return override[0] if override is not None else _tracer


def metrics() -> MetricsRegistry:
    """The active registry (thread override first, null singleton when off)."""
    override = _override()
    return override[1] if override is not None else _metrics


def span(name: str, kind: str = "span", **attrs: Any):
    """Open a span on the active tracer (no-op singleton when disabled)."""
    return tracer().span(name, kind=kind, **attrs)


def install(tracer_obj, metrics_obj):
    """Low-level: swap the active tracer/registry; returns the previous pair.

    Used by the parallel scheduler's worker entry point to redirect engine
    metrics into a per-window local registry (and silence the tracer, whose
    JSONL sink must not be written from a forked worker).  The swap is
    implemented as a *thread-local* override so an inline window executed
    inside a campaign worker thread never touches what other threads see;
    restoring the returned pair puts this thread back exactly where it was.
    """
    previous = _override()
    if previous is None:
        previous = (_tracer, _metrics)
    if tracer_obj is _tracer and metrics_obj is _metrics:
        # Re-installing exactly the global pair = dropping the override, so
        # a restore leaves the thread clean instead of pinning stale objects.
        _local.override = None
    else:
        _local.override = (tracer_obj, metrics_obj)
    return previous


def push_collector(collector: TelemetryCollector) -> None:
    """Redirect this thread's ``record_*`` calls into *collector*.

    The campaign runner installs one collector per job so telemetry from
    concurrently running flows can be merged back into the session in
    deterministic job order instead of interleaved completion order.
    """
    _local.collector = collector


def pop_collector() -> None:
    """Stop collecting on this thread; ``record_*`` reach the session again."""
    _local.collector = None


def _collector() -> Optional[TelemetryCollector]:
    return getattr(_local, "collector", None)


def record_flow_stats(stats: Any) -> None:
    """Register a finished FlowStats with the collector or active session."""
    collector = _collector()
    if collector is not None:
        collector.flow_stats.append(stats)
    elif _session is not None:
        _session.flow_stats.append(stats)


def record_parallel_report(report: Any) -> None:
    """Register a finished ParallelReport (collector first, then session)."""
    collector = _collector()
    if collector is not None:
        collector.parallel_reports.append(report)
    elif _session is not None:
        _session.parallel_reports.append(report)


def record_guard_report(report: Any) -> None:
    """Register a flow's GuardReport (collector first, then session)."""
    collector = _collector()
    if collector is not None:
        collector.guard_reports.append(report)
    elif _session is not None:
        _session.guard_reports.append(report)


def record_campaign_report(report: Any) -> None:
    """Register a finished campaign report with the active session."""
    if _session is not None:
        _session.campaign_reports.append(report)


__all__ = [
    "EventBus",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_BUS",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "ObsSession",
    "Span",
    "TelemetryCollector",
    "Tracer",
    "clear_local",
    "disable",
    "disable_live",
    "enable",
    "enable_live",
    "enabled",
    "install",
    "install_local",
    "iter_jsonl",
    "live_bus",
    "load_jsonl",
    "metrics",
    "pop_collector",
    "push_collector",
    "record_campaign_report",
    "record_flow_stats",
    "record_guard_report",
    "record_parallel_report",
    "session",
    "span",
    "tracer",
]
