"""Observability for the SBM flow: tracing, metrics, run reports.

The package answers "where did the time go, which moves fired, why did
MSPF bail out" without print-debugging:

* :mod:`repro.obs.tracer` — hierarchical span tracer
  (``flow → iteration → stage → partition-window → move``) with wall/CPU
  time, node-count deltas, and an optional JSONL event sink,
* :mod:`repro.obs.metrics` — counters/gauges/histograms for engine-level
  events (move selections, budget spend, BDD/MSPF bailouts,
  kernel-threshold winners, SAT-sweep merges, parallel fallbacks),
* :mod:`repro.obs.report` — the stable JSON run-report schema and its
  human renderings; ``FlowStats`` and ``ParallelReport`` objects register
  themselves here, so the pre-existing telemetry becomes views over one
  store.

Instrumented code always talks to the *active* tracer/registry through the
module-level accessors (:func:`span`, :func:`metrics`, :func:`tracer`).
By default both are disabled no-op singletons, so the instrumentation adds
near-zero overhead; :func:`enable` (the ``--trace``/``--report-json`` CLI
flags) swaps in live objects for the duration of a run:

    session = obs.enable(jsonl_path="trace.jsonl")
    try:
        optimized, stats = sbm_flow(aig, config)
    finally:
        obs.disable()
    report = build_report(session, command="optimize adder")

Worker processes never write to the parent's tracer or registry: the
parallel scheduler gives each window task a fresh local registry, ships
its snapshot back inside the window payload, and merges the snapshots in
deterministic partition order (see :mod:`repro.parallel.scheduler`).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    Tracer,
    load_jsonl,
)

_tracer = NULL_TRACER
_metrics = NULL_METRICS
_session: Optional["ObsSession"] = None


class ObsSession:
    """One enabled observability run: tracer + metrics + telemetry store."""

    def __init__(self, jsonl_path: Optional[str] = None,
                 max_spans: int = 100_000) -> None:
        self._sink_file = None
        sink = None
        if jsonl_path is not None:
            self._sink_file = open(jsonl_path, "w", encoding="utf-8")
            sink = JsonlSink(self._sink_file)
        self.tracer = Tracer(sink=sink, max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.flow_stats: List[Any] = []
        self.parallel_reports: List[Any] = []
        self.guard_reports: List[Any] = []

    def close(self) -> None:
        """Flush and release the JSONL sink, if any."""
        if self._sink_file is not None:
            self._sink_file.close()
            self._sink_file = None


# -- global context -----------------------------------------------------------

def enable(jsonl_path: Optional[str] = None,
           max_spans: int = 100_000) -> ObsSession:
    """Activate tracing and metrics; returns the new session."""
    global _tracer, _metrics, _session
    if _session is not None:
        disable()
    _session = ObsSession(jsonl_path=jsonl_path, max_spans=max_spans)
    _tracer = _session.tracer
    _metrics = _session.metrics
    return _session


def disable() -> None:
    """Deactivate observability; the session object stays readable."""
    global _tracer, _metrics, _session
    if _session is not None:
        _session.close()
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS
    _session = None


def enabled() -> bool:
    """True while a session is active."""
    return _session is not None


def session() -> Optional[ObsSession]:
    """The active session, or None."""
    return _session


def tracer() -> Tracer:
    """The active tracer (the null singleton when disabled)."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The active metrics registry (the null singleton when disabled)."""
    return _metrics


def span(name: str, kind: str = "span", **attrs: Any):
    """Open a span on the active tracer (no-op singleton when disabled)."""
    return _tracer.span(name, kind=kind, **attrs)


def install(tracer_obj, metrics_obj):
    """Low-level: swap the active tracer/registry; returns the previous pair.

    Used by the parallel scheduler's worker entry point to redirect engine
    metrics into a per-window local registry (and silence the tracer, whose
    JSONL sink must not be written from a forked worker).
    """
    global _tracer, _metrics
    previous = (_tracer, _metrics)
    _tracer = tracer_obj
    _metrics = metrics_obj
    return previous


def record_flow_stats(stats: Any) -> None:
    """Register a finished FlowStats with the active session."""
    if _session is not None:
        _session.flow_stats.append(stats)


def record_parallel_report(report: Any) -> None:
    """Register a finished ParallelReport with the active session."""
    if _session is not None:
        _session.parallel_reports.append(report)


def record_guard_report(report: Any) -> None:
    """Register a flow's GuardReport (repro.guard) with the active session."""
    if _session is not None:
        _session.guard_reports.append(report)


__all__ = [
    "JsonlSink",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "ObsSession",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "install",
    "load_jsonl",
    "metrics",
    "record_flow_stats",
    "record_guard_report",
    "record_parallel_report",
    "session",
    "span",
    "tracer",
]
