"""Live telemetry streaming: the non-blocking progress event bus.

:mod:`repro.obs.tracer` materializes telemetry *after* a run finishes; this
module is the second observability layer — the one a human (or the future
synthesis-as-a-service daemon) watches *while* the flow runs.  Instrumented
call sites in the flow, the partition scheduler, and the campaign runner
publish small **progress events** to the process-wide
:class:`EventBus`; consumers (a TTY renderer, a JSONL stream, a test)
drain them asynchronously.

Design constraints, in order:

* **Zero cost when disabled.**  The default bus is the :data:`NULL_BUS`
  singleton with ``enabled = False``; every call site guards with
  ``if bus.enabled: bus.emit(...)`` so the hot path performs no payload
  allocation and no syscall when streaming is off — the same discipline as
  the null tracer (see ``benchmarks/bench_obs.py``).
* **Non-blocking.**  :meth:`EventBus.emit` never waits on a consumer: the
  queue is bounded and an emit against a full queue increments
  :attr:`EventBus.dropped` and returns.  A slow terminal can therefore
  never stall the flow.
* **Deterministic payloads.**  Event *payloads* carry only values that are
  bit-identical for every ``jobs`` count — node counts, stage names,
  partition-ordered window outcomes — never wall times or worker ids.
  Timing lives exclusively in the envelope (:attr:`ProgressEvent.t`,
  :attr:`ProgressEvent.seq`), so ``jobs=4`` and ``jobs=1`` streams differ
  only in timestamps.  Worker processes never emit: the partition
  scheduler publishes window events from the parent while merging worker
  snapshots **in partition order**.  (``heartbeat`` events are the one
  wall-clock-driven kind; consumers comparing streams must filter them.)

Event kinds
-----------
``flow_start / stage_start / stage_end / flow_end`` — from
:mod:`repro.sbm.flow`; ``pass_start / window / pass_end`` — from
:mod:`repro.parallel.scheduler`; ``campaign_start / job_start / job_end /
campaign_end`` — from :mod:`repro.campaign.runner`; ``heartbeat`` —
emitted by the :class:`LivePump` when the bus has been quiet for a while,
so stream consumers can distinguish "working on a huge window" from
"dead".

The CLI surfaces all of this as ``--progress`` (a TTY-aware status line on
stderr) and ``--progress-jsonl PATH`` (one JSON object per event, flushed
per line — tail-able, and the machine-readable channel a daemon client
would subscribe to).
"""

from __future__ import annotations

import contextlib
import json
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, TextIO


class ProgressEvent:
    """One bus event: a deterministic payload in a timing envelope."""

    __slots__ = ("seq", "t", "kind", "payload")

    def __init__(self, seq: int, t: float, kind: str,
                 payload: Dict[str, Any]) -> None:
        self.seq = seq          #: emission index on this bus (envelope)
        self.t = t              #: seconds since the bus epoch (envelope)
        self.kind = kind
        self.payload = payload  #: deterministic content — no timing inside

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (the ``--progress-jsonl`` line)."""
        return {"seq": self.seq, "t": round(self.t, 6), "kind": self.kind,
                "payload": self.payload}

    def __repr__(self) -> str:  # debugging aid only
        return f"ProgressEvent({self.seq}, {self.kind}, {self.payload!r})"


class EventBus:
    """Bounded, thread-safe, non-blocking progress event queue.

    Emitters (flow stages, the scheduler's merge loop, campaign job
    threads) append; one consumer drains.  A full queue drops the new
    event and counts it — emitters never block, and the drop counter makes
    the loss visible instead of silent.
    """

    enabled = True

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self.dropped = 0
        self._events: deque = deque()
        self._lock = threading.Lock()
        self._seq = 0
        self._epoch = time.perf_counter()

    def emit(self, kind: str, **payload: Any) -> None:
        """Publish one event; drops (counted) when the queue is full."""
        with self._lock:
            if len(self._events) >= self.capacity:
                self.dropped += 1
                return
            self._events.append(ProgressEvent(
                self._seq, time.perf_counter() - self._epoch, kind, payload))
            self._seq += 1

    def drain(self) -> List[ProgressEvent]:
        """Remove and return every queued event (oldest first)."""
        with self._lock:
            if not self._events:
                return []
            out = list(self._events)
            self._events.clear()
        return out

    def __len__(self) -> int:
        return len(self._events)


class _NullBus:
    """Disabled bus: emitting costs a single attribute check at call sites.

    Call sites must guard (``if bus.enabled: bus.emit(...)``) so that the
    disabled path allocates nothing — not even the payload dict.
    """

    enabled = False
    dropped = 0
    capacity = 0

    def emit(self, kind: str, **payload: Any) -> None:
        pass

    def drain(self) -> List[ProgressEvent]:
        return []

    def __len__(self) -> int:
        return 0


#: The singleton disabled bus (the default — see :func:`repro.obs.live_bus`).
NULL_BUS = _NullBus()


# -- consumers -----------------------------------------------------------------

class JsonlEventSink:
    """Writes every event as one JSON line, flushed immediately.

    The stream stays tail-able during a run and is the machine-readable
    progress channel future daemon clients consume.
    """

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self.written = 0

    def handle(self, event: ProgressEvent) -> None:
        self.stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.stream.flush()
        self.written += 1

    def close(self) -> None:
        self.stream.flush()


class TtyProgressSink:
    """Human progress renderer: a live status line on a TTY, plain lines
    otherwise.

    Keeps a tiny state machine over the event stream (current campaign /
    flow / stage / window counts) and renders it as one overwritten line
    when the stream is a terminal, or as one line per stage/job/flow
    completion when it is not (CI logs).
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 force_tty: Optional[bool] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if force_tty is None:
            force_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self.tty = force_tty
        self._t0 = time.perf_counter()
        self._line_open = False
        # state machine
        self.design = ""
        self.stage = ""
        self.stage_index = 0
        self.stage_total = 0
        self.nodes: Optional[int] = None
        self.windows_done = 0
        self.windows_total = 0
        self.suite = ""
        self.jobs_total = 0
        self.jobs_done = 0
        self.outcomes: Dict[str, int] = {}

    # -- event dispatch ------------------------------------------------------

    def handle(self, event: ProgressEvent) -> None:
        payload = event.payload
        kind = event.kind
        if kind == "flow_start":
            self.design = str(payload.get("design") or "flow")
            self.stage_total = int(payload.get("stages", 0))
            self.stage_index = 0
            self.nodes = payload.get("nodes")
            self.windows_done = self.windows_total = 0
        elif kind == "stage_start":
            self.stage = str(payload.get("stage", ""))
            self.stage_index = int(payload.get("index", 0)) + 1
            self.stage_total = int(payload.get("total", self.stage_total))
            self.windows_done = self.windows_total = 0
        elif kind == "stage_end":
            self.nodes = payload.get("nodes")
            if not self.tty:
                self._println(
                    f"stage {self.stage_index}/{self.stage_total} "
                    f"{payload.get('stage')}: {payload.get('nodes')} nodes "
                    f"({payload.get('level')})")
        elif kind == "pass_start":
            self.windows_done = 0
            self.windows_total = int(payload.get("windows", 0))
        elif kind == "window":
            self.windows_done = int(payload.get("done", self.windows_done))
            self.windows_total = int(payload.get("total", self.windows_total))
        elif kind == "flow_end":
            self.nodes = payload.get("nodes")
            self._println(f"flow {payload.get('design') or self.design}: "
                          f"{payload.get('nodes')} nodes")
        elif kind == "campaign_start":
            self.suite = str(payload.get("suite", ""))
            self.jobs_total = int(payload.get("jobs", 0))
            self.jobs_done = 0
            self.outcomes = {}
        elif kind == "job_end":
            self.jobs_done += 1
            outcome = str(payload.get("outcome", "?"))
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            if not self.tty:
                self._println(
                    f"job {self.jobs_done}/{self.jobs_total} "
                    f"{payload.get('name')}: {outcome} "
                    f"-> {payload.get('nodes_after')} nodes")
        elif kind == "campaign_end":
            pretty = " ".join(f"{k}={v}"
                              for k, v in sorted(self.outcomes.items()))
            self._println(f"campaign {self.suite or payload.get('suite')}: "
                          f"{self.jobs_done}/{self.jobs_total} jobs  {pretty}")
        elif kind == "heartbeat" and not self.tty:
            self._println(f"... still running ({self._elapsed():.0f}s)")
        if self.tty:
            self._render_line()

    # -- rendering -----------------------------------------------------------

    def _elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def _status_line(self) -> str:
        parts = [f"{self._elapsed():6.1f}s"]
        if self.jobs_total:
            parts.append(f"jobs {self.jobs_done}/{self.jobs_total}")
        if self.design:
            parts.append(self.design)
        if self.stage:
            parts.append(f"stage {self.stage_index}/{self.stage_total} "
                         f"{self.stage}")
        if self.windows_total:
            parts.append(f"win {self.windows_done}/{self.windows_total}")
        if self.nodes is not None:
            parts.append(f"{self.nodes} nodes")
        return "  ".join(parts)

    def _render_line(self) -> None:
        self.stream.write("\r\x1b[2K" + self._status_line())
        self.stream.flush()
        self._line_open = True

    def _println(self, text: str) -> None:
        if self.tty and self._line_open:
            self.stream.write("\r\x1b[2K")
            self._line_open = False
        self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        if self.tty and self._line_open:
            self.stream.write("\n")
            self._line_open = False
        self.stream.flush()


class LivePump:
    """Background drainer: moves bus events into the attached sinks.

    One daemon thread polls :meth:`EventBus.drain` and fans each event out
    to every sink, strictly in bus order.  When the bus has been quiet for
    ``heartbeat_s`` the pump emits a ``heartbeat`` event (through the bus,
    so JSONL consumers see it too).  :meth:`stop` performs a final drain,
    so no event published before the stop call is ever lost.
    """

    def __init__(self, bus: EventBus, sinks: List[Any],
                 poll_s: float = 0.1,
                 heartbeat_s: Optional[float] = None) -> None:
        self.bus = bus
        self.sinks = list(sinks)
        self.poll_s = poll_s
        self.heartbeat_s = heartbeat_s
        self._beats = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "LivePump":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-obs-live-pump")
        self._thread.start()
        return self

    def _dispatch(self, events: List[ProgressEvent]) -> None:
        for event in events:
            for sink in self.sinks:
                try:
                    sink.handle(event)
                except Exception:
                    # A broken consumer (closed pipe, ...) must never take
                    # the flow down; the bus keeps the producer side safe.
                    pass

    def _run(self) -> None:
        quiet_since = time.perf_counter()
        while not self._stop.is_set():
            events = self.bus.drain()
            if events:
                self._dispatch(events)
                quiet_since = time.perf_counter()
            elif (self.heartbeat_s is not None
                  and time.perf_counter() - quiet_since >= self.heartbeat_s):
                self._beats += 1
                self.bus.emit("heartbeat", beats=self._beats)
                quiet_since = time.perf_counter()
            self._stop.wait(self.poll_s)

    def stop(self) -> None:
        """Stop the thread, perform the final drain, close every sink."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._dispatch(self.bus.drain())
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:
                    pass


@contextlib.contextmanager
def live_session(progress: bool = False,
                 jsonl_path: Optional[str] = None,
                 stream: Optional[TextIO] = None,
                 heartbeat_s: Optional[float] = 15.0,
                 capacity: int = 8192) -> Iterator[Optional[EventBus]]:
    """Install the live bus + consumers for the duration of a CLI command.

    With neither *progress* nor *jsonl_path* the context is a no-op
    yielding ``None`` — callers can wrap a command unconditionally.  On
    exit the pump performs its final drain, the JSONL file is closed, and
    any dropped-event count is reported on stderr.
    """
    if not progress and jsonl_path is None:
        yield None
        return
    from repro import obs
    sinks: List[Any] = []
    jsonl_file = None
    if progress:
        sinks.append(TtyProgressSink(stream))
    if jsonl_path is not None:
        jsonl_file = open(jsonl_path, "w", encoding="utf-8")
        sinks.append(JsonlEventSink(jsonl_file))
    bus = obs.enable_live(EventBus(capacity=capacity))
    pump = LivePump(bus, sinks, heartbeat_s=heartbeat_s).start()
    try:
        yield bus
    finally:
        obs.disable_live()
        pump.stop()
        if jsonl_file is not None:
            jsonl_file.close()
        if bus.dropped:
            print(f"[obs.live] {bus.dropped} progress event(s) dropped "
                  f"(bus capacity {bus.capacity})", file=sys.stderr)
