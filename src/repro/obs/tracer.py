"""Hierarchical span tracer for the SBM flow.

A *span* is one timed region of the flow — ``flow → iteration → stage →
partition-window → move`` — with wall/CPU time, free-form attributes
(node counts before/after, fallback reasons, ...), bounded point events,
and child spans.  Spans are created through a nestable context-manager
API:

    with tracer.span("mspf", kind="stage") as sp:
        sp.set("nodes_before", aig.num_ands)
        ...
        sp.set("nodes_after", aig.num_ands)

The tracer keeps the finished spans in an in-memory tree (``roots``) and
can mirror every span start/end to a JSONL event sink, which
:func:`load_jsonl` turns back into the same tree — the round-trip used by
offline analysis and the test suite.

Work executed in worker processes cannot open live spans in the parent;
:meth:`Tracer.record` creates an already-closed child span from a measured
wall time, which is how the parallel scheduler attributes per-window worker
times to the current stage.

Disabled tracing is the common case and must cost nothing: the module-level
:data:`NULL_TRACER`/:data:`NULL_SPAN` singletons implement the same API as
pure no-ops, so instrumented call sites never branch — they always run
``with <tracer>.span(...)`` and the null objects make it a few attribute
lookups (< 2% of any engine's runtime; see ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

import json
import time
import warnings
from typing import Any, Dict, Iterator, List, Optional, TextIO

#: Cap on events stored per span — point events (e.g. gradient move
#: applications) are interesting individually but unbounded in number.
MAX_EVENTS_PER_SPAN = 256


def _jsonable(value: Any) -> Any:
    """Clamp an attribute value to something the JSONL sink can encode."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class Span:
    """One timed, attributed region; closed via the context manager."""

    __slots__ = ("name", "kind", "attrs", "events", "children",
                 "wall_s", "cpu_s", "span_id", "parent_id",
                 "dropped_events", "_t0", "_c0", "_tracer")

    def __init__(self, name: str, kind: str, tracer: "Tracer",
                 span_id: int, parent_id: Optional[int],
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.span_id = span_id
        self.parent_id = parent_id
        self.dropped_events = 0
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        self._tracer = tracer

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event on the span (bounded; overflow is counted)."""
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.dropped_events += 1
            return
        record = {"name": name}
        record.update(attrs)
        self.events.append(record)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe tree rooted at this span (the report representation)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "events": [{k: _jsonable(v) for k, v in e.items()}
                       for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }
        if self.dropped_events:
            out["dropped_events"] = self.dropped_events
        return out


class _NullSpan:
    """Shared no-op span: every method is a pass, nesting is free."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span returned by the disabled tracer.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: same API as :class:`Tracer`, costs nothing."""

    enabled = False
    roots: List[Span] = []
    dropped_spans = 0

    def span(self, name: str, kind: str = "span", **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def record(self, name: str, kind: str = "span", wall_s: float = 0.0,
               **attrs: Any) -> None:
        pass

    def current(self) -> None:
        return None


#: The singleton disabled tracer (the default active tracer).
NULL_TRACER = NullTracer()


class JsonlSink:
    """Streams span start/end events as JSON lines to a text file.

    The stream is flushed on every span *end*, so the file is tail-able
    while a long flow runs (``tail -f trace.jsonl``, or the live trace
    converter in :mod:`repro.obs.trace`); buffering span starts is fine —
    the matching end always pushes them out.
    """

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self._epoch = time.perf_counter()

    def start(self, span: Span) -> None:
        self._write({"ev": "start", "id": span.span_id,
                     "parent": span.parent_id, "name": span.name,
                     "kind": span.kind,
                     "t": round(time.perf_counter() - self._epoch, 6)})

    def end(self, span: Span) -> None:
        record = {"ev": "end", "id": span.span_id,
                  "wall_s": span.wall_s, "cpu_s": span.cpu_s,
                  "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
                  "events": [{k: _jsonable(v) for k, v in e.items()}
                             for e in span.events]}
        if span.dropped_events:
            record["dropped_events"] = span.dropped_events
        self._write(record)
        self.stream.flush()

    def close(self) -> None:
        """Flush anything buffered (the stream itself belongs to the caller)."""
        self.stream.flush()

    def _write(self, record: Dict[str, Any]) -> None:
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")


class Tracer:
    """Collects a span tree; optionally mirrors it to a JSONL sink.

    ``max_spans`` bounds the in-memory tree on pathological traces: once
    reached, :meth:`span` hands out :data:`NULL_SPAN` and counts the drop
    (the JSONL sink stops receiving those spans too).
    """

    enabled = True

    def __init__(self, sink: Optional[JsonlSink] = None,
                 max_spans: int = 100_000) -> None:
        self.sink = sink
        self.max_spans = max_spans
        self.roots: List[Span] = []
        self.dropped_spans = 0
        self._stack: List[Span] = []
        self._next_id = 0

    def span(self, name: str, kind: str = "span", **attrs: Any):
        """Open a child span of the innermost live span (context manager)."""
        if self._next_id >= self.max_spans:
            self.dropped_spans += 1
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(name, kind, self, self._next_id,
                    parent.span_id if parent else None, attrs)
        self._next_id += 1
        self._stack.append(span)
        if self.sink is not None:
            self.sink.start(span)
        return span

    def record(self, name: str, kind: str = "span", wall_s: float = 0.0,
               **attrs: Any) -> None:
        """Attach an already-measured span (e.g. a worker-side window).

        The span is created closed, with ``wall_s`` taken verbatim and no
        CPU time (it was spent in another process).
        """
        if self._next_id >= self.max_spans:
            self.dropped_spans += 1
            return
        parent = self._stack[-1] if self._stack else None
        span = Span(name, kind, self, self._next_id,
                    parent.span_id if parent else None, attrs)
        self._next_id += 1
        span.wall_s = wall_s
        if self.sink is not None:
            self.sink.start(span)
            self.sink.end(span)
        self._attach(span, parent)

    def current(self) -> Optional[Span]:
        """The innermost live span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    # -- internal ------------------------------------------------------------

    def _close(self, span: Span) -> None:
        span.wall_s = time.perf_counter() - span._t0
        span.cpu_s = time.process_time() - span._c0
        # Tolerate out-of-order closes (a leaked span closed late): unwind
        # to the span being closed so the tree stays consistent.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        parent = self._stack[-1] if self._stack else None
        if self.sink is not None:
            self.sink.end(span)
        self._attach(span, parent)

    def _attach(self, span: Span, parent: Optional[Span]) -> None:
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)


class JsonlReader:
    """Streaming iterator over a span JSONL file, crash-write tolerant.

    A run killed mid-write (OOM, ``kill -9``, a chaos interrupt) leaves a
    truncated final line; offline consumers — the trace converter, history
    ingest — must read everything *before* the tear rather than raise.
    Undecodable lines are skipped and counted in :attr:`skipped` (one
    :class:`RuntimeWarning` is issued at the end of iteration), so silent
    corruption is still visible to the caller.

    The reader is re-iterable; counters accumulate across iterations.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.skipped = 0      #: undecodable lines tolerated so far

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        skipped_before = self.skipped
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.skipped += 1
                    continue
                yield record
        if self.skipped > skipped_before:
            warnings.warn(
                f"{self.path}: skipped {self.skipped - skipped_before} "
                f"undecodable JSONL line(s) — truncated write?",
                RuntimeWarning, stacklevel=2)


def iter_jsonl(path: str) -> JsonlReader:
    """Stream the records of a JSONL event file (truncation-tolerant).

    Returns a :class:`JsonlReader`; iterate it for the decoded records and
    read its ``skipped`` counter afterwards for the number of lines that
    failed to decode (a crash mid-write leaves at most one).
    """
    return JsonlReader(path)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Rebuild the span tree (as :meth:`Span.to_dict` dicts) from a JSONL sink.

    Spans whose ``end`` event is missing (crash mid-span) appear with
    ``wall_s = 0`` and whatever was known at start time.  Reads through
    :func:`iter_jsonl`, so a truncated final line is tolerated.
    """
    spans: Dict[int, Dict[str, Any]] = {}
    order: List[int] = []
    parents: Dict[int, Optional[int]] = {}
    for record in iter_jsonl(path):
        if record.get("ev") == "start":
            span_id = record["id"]
            spans[span_id] = {"name": record["name"],
                              "kind": record["kind"],
                              "wall_s": 0.0, "cpu_s": 0.0,
                              "attrs": {}, "events": [], "children": []}
            parents[span_id] = record.get("parent")
            order.append(span_id)
        elif record.get("ev") == "end":
            span = spans.get(record["id"])
            if span is None:
                continue
            span["wall_s"] = record.get("wall_s", 0.0)
            span["cpu_s"] = record.get("cpu_s", 0.0)
            span["attrs"] = record.get("attrs", {})
            span["events"] = record.get("events", [])
            if record.get("dropped_events"):
                span["dropped_events"] = record["dropped_events"]
    roots: List[Dict[str, Any]] = []
    for span_id in order:
        parent_id = parents[span_id]
        if parent_id is not None and parent_id in spans:
            spans[parent_id]["children"].append(spans[span_id])
        else:
            roots.append(spans[span_id])
    return roots
