"""Result-row structures and table formatting for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Row:
    """One benchmark row of a reproduced table."""

    benchmark: str
    values: Dict[str, Any] = field(default_factory=dict)


def format_table(title: str, columns: Sequence[str], rows: List[Row]) -> str:
    """Render rows in the paper's table style (fixed-width text)."""
    widths = {c: max(len(c), *(len(_fmt(r.values.get(c))) for r in rows))
              if rows else len(c) for c in columns}
    name_width = max([len("Benchmark")] + [len(r.benchmark) for r in rows])
    lines = [title]
    header = "Benchmark".ljust(name_width) + "  " + "  ".join(
        c.rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(row.benchmark.ljust(name_width) + "  " + "  ".join(
            _fmt(row.values.get(c)).rjust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def improvement(baseline: float, improved: float) -> Optional[float]:
    """Relative improvement in percent (positive = better/smaller)."""
    if not baseline:
        return None
    return 100.0 * (baseline - improved) / baseline
