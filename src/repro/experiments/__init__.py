"""Experiment harnesses regenerating every table and figure of the paper."""

from repro.experiments import ablation, fig1, runtime, table1, table2, table3
from repro.experiments.report import Row, format_table, improvement

__all__ = [
    "fig1", "runtime", "table1", "table2", "table3", "ablation",
    "Row", "format_table", "improvement",
]
