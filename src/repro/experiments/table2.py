"""Table II — "Smallest AIG Results For The EPFL Suite".

The paper reports the smallest AIGs its optimization methodology produced,
"smaller as compared to the state-of-the-art" — e.g. 1.5× smaller than the
previous smallest known arbiter AIG (obtained by strashing the best LUT-6
result and running ``resyn2rs`` to convergence).  The reproduced comparison
mirrors that: **resyn2rs-to-convergence** (the state-of-the-art proxy) vs
the **SBM flow**, with the paper's native-width sizes printed alongside.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.registry import BENCHMARKS, TABLE2_BENCHMARKS, get_benchmark
from repro.experiments.report import Row, format_table
from repro.opt.scripts import resyn2rs
from repro.campaign.cache import cached_sbm_flow
from repro.sat.equivalence import check_equivalence
from repro.sbm.config import FlowConfig


@dataclass
class Table2Result:
    """Per-benchmark Table II reproduction record."""

    benchmark: str
    io: str
    original_size: int
    baseline_size: int
    baseline_levels: int
    sbm_size: int
    sbm_levels: int
    paper_size: Optional[int]
    paper_levels: Optional[int]
    verified: bool
    runtime_s: float

    @property
    def improved(self) -> bool:
        """True when the SBM AIG is no larger than the baseline's."""
        return self.sbm_size <= self.baseline_size


def run_table2(benchmarks: Optional[Sequence[str]] = None,
               scaled: bool = True,
               flow_config: Optional[FlowConfig] = None,
               verify: bool = True) -> List[Table2Result]:
    """Reproduce Table II on the selected benchmarks."""
    names = list(benchmarks) if benchmarks else list(TABLE2_BENCHMARKS)
    flow_config = flow_config or FlowConfig(iterations=1)
    results: List[Table2Result] = []
    for name in names:
        start = time.time()
        original = get_benchmark(name, scaled=scaled)
        baseline = resyn2rs(original.cleanup(), max_iterations=3)
        optimized, _stats, _hit, _key = cached_sbm_flow(original, flow_config)
        # The SBM flow subsumes the baseline script, so also give it the
        # baseline's result as a starting point (the paper's flow likewise
        # starts from the best known implementations).
        if baseline.num_ands < optimized.num_ands:
            improved_from_baseline, _s, _h, _k = cached_sbm_flow(baseline,
                                                                 flow_config)
            if improved_from_baseline.num_ands < optimized.num_ands:
                optimized = improved_from_baseline
        verified = True
        if verify:
            ok, _ = check_equivalence(original, optimized)
            verified = ok
        ref = BENCHMARKS[name].reference
        results.append(Table2Result(
            benchmark=name,
            io=f"{original.num_pis}/{original.num_pos}",
            original_size=original.num_ands,
            baseline_size=baseline.num_ands,
            baseline_levels=baseline.depth,
            sbm_size=optimized.num_ands,
            sbm_levels=optimized.depth,
            paper_size=ref.table2_size,
            paper_levels=ref.table2_levels,
            verified=verified,
            runtime_s=time.time() - start,
        ))
    return results


def format_results(results: List[Table2Result]) -> str:
    """Paper-style rendering of the reproduced Table II."""
    rows = []
    for r in results:
        rows.append(Row(r.benchmark, {
            "I/O": r.io,
            "orig": r.original_size,
            "resyn2rs": r.baseline_size,
            "SBM size": r.sbm_size,
            "SBM lev": r.sbm_levels,
            "paper size": r.paper_size,
            "paper lev": r.paper_levels,
            "eq": "ok" if r.verified else "FAIL",
        }))
    improved = sum(1 for r in results if r.improved)
    table = format_table(
        "Table II — Smallest AIG Results, reproduced",
        ["I/O", "orig", "resyn2rs", "SBM size", "SBM lev",
         "paper size", "paper lev", "eq"], rows)
    return (f"{table}\n"
            f"SBM matched or beat resyn2rs on {improved}/{len(results)} "
            f"benchmarks (paper: smaller than state-of-the-art throughout).")


def main() -> None:  # pragma: no cover - CLI convenience
    results = run_table2()
    print(format_results(results))


if __name__ == "__main__":  # pragma: no cover
    main()
