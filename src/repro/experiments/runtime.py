"""Section III-B runtime claim — monolithic Boolean difference.

"After all speed ups, we can apply the method to EPFL i2c and cavlc
benchmarks monolithically, with a runtime of 2.3 and 1.2 seconds,
respectively."  *Monolithically* means one partition spanning the whole
network.  The reproduction measures the same configuration on the
(regenerated) i2c and cavlc benchmarks; absolute times differ (pure Python
vs the paper's C++), so the shape to match is *feasibility at seconds
scale* and the i2c > cavlc ordering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.registry import get_benchmark
from repro.partition.partitioner import PartitionConfig
from repro.sbm.boolean_difference import boolean_difference_pass
from repro.sbm.config import BooleanDifferenceConfig


#: Paper-reported monolithic runtimes (seconds).
PAPER_RUNTIME_S: Dict[str, float] = {"i2c": 2.3, "cavlc": 1.2}


@dataclass
class RuntimeResult:
    """Monolithic Boolean-difference run on one benchmark."""

    benchmark: str
    size_before: int
    size_after: int
    pairs_tried: int
    rewrites: int
    runtime_s: float
    paper_runtime_s: Optional[float]


def run_monolithic(benchmarks: Sequence[str] = ("i2c", "cavlc"),
                   scaled: bool = True,
                   max_pairs: int = 20_000) -> List[RuntimeResult]:
    """Whole-network (single partition) Boolean-difference runs."""
    results: List[RuntimeResult] = []
    for name in benchmarks:
        aig = get_benchmark(name, scaled=scaled)
        before = aig.num_ands
        config = BooleanDifferenceConfig(
            partition=PartitionConfig(max_levels=10 ** 6, max_size=10 ** 6,
                                      max_leaves=10 ** 6),
            max_pairs_per_partition=max_pairs,
        )
        start = time.time()
        stats = boolean_difference_pass(aig, config)
        elapsed = time.time() - start
        results.append(RuntimeResult(
            benchmark=name,
            size_before=before,
            size_after=aig.cleanup().num_ands,
            pairs_tried=stats.pairs_tried,
            rewrites=stats.rewrites,
            runtime_s=elapsed,
            paper_runtime_s=PAPER_RUNTIME_S.get(name),
        ))
    return results


def format_results(results: List[RuntimeResult]) -> str:
    """Render the runtime comparison."""
    lines = ["Section III-B — monolithic Boolean difference runtime"]
    for r in results:
        paper = f"{r.paper_runtime_s:.1f}s" if r.paper_runtime_s else "-"
        lines.append(
            f"  {r.benchmark:8s} size {r.size_before:5d} -> {r.size_after:5d}"
            f"  pairs {r.pairs_tried:6d}  rewrites {r.rewrites:3d}"
            f"  runtime {r.runtime_s:6.2f}s  (paper, native width: {paper})")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_results(run_monolithic()))


if __name__ == "__main__":  # pragma: no cover
    main()
