"""Ablation studies for the design choices the paper calls out.

Three parameter claims are probed:

* **Section III-C** — the Boolean-difference BDD size filter: "Empirically,
  we found 10 to be a suitable tradeoff to have good QoR and feasible
  runtime"; and the ``xor_cost`` saving filter.
* **Section IV-A** — the gradient engine's budget/window: "the best AIG
  optimizations ... by using a cost budget equal to 100 and k = 20, with
  minimum gain gradient equal to 3%".
* **Section IV-B** — heterogeneous eliminate thresholds
  (-1, 2, 5, 20, 50, 100, 200, 300) versus any single homogeneous threshold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.registry import get_benchmark
from repro.sbm.boolean_difference import boolean_difference_pass
from repro.sbm.config import BooleanDifferenceConfig, GradientConfig
from repro.sbm.gradient import gradient_optimize
from repro.sbm.hetero_kernel import hetero_kernel_pass, homogeneous_kernel_pass


@dataclass
class AblationPoint:
    """One configuration of an ablation sweep."""

    label: str
    size_after: int
    runtime_s: float
    extra: Optional[Dict] = None


def ablate_bdd_size_limit(benchmark: str = "cavlc",
                          limits: Sequence[int] = (2, 5, 10, 20, 50)
                          ) -> List[AblationPoint]:
    """Sweep the Boolean-difference BDD size filter (paper default: 10)."""
    points = []
    for limit in limits:
        aig = get_benchmark(benchmark)
        config = BooleanDifferenceConfig(bdd_size_limit=limit)
        start = time.time()
        stats = boolean_difference_pass(aig, config)
        points.append(AblationPoint(
            label=f"bdd_size≤{limit}",
            size_after=aig.cleanup().num_ands,
            runtime_s=time.time() - start,
            extra={"rewrites": stats.rewrites,
                   "filtered_size": stats.pairs_filtered_bdd_size}))
    return points


def ablate_xor_cost(benchmark: str = "cavlc",
                    costs: Sequence[int] = (0, 1, 3, 6, 12)
                    ) -> List[AblationPoint]:
    """Sweep xor_cost — the technology-dependent XOR area ratio."""
    points = []
    for cost in costs:
        aig = get_benchmark(benchmark)
        config = BooleanDifferenceConfig(xor_cost=cost)
        start = time.time()
        stats = boolean_difference_pass(aig, config)
        points.append(AblationPoint(
            label=f"xor_cost={cost}",
            size_after=aig.cleanup().num_ands,
            runtime_s=time.time() - start,
            extra={"rewrites": stats.rewrites}))
    return points


def ablate_gradient_budget(benchmark: str = "cavlc",
                           budgets: Sequence[int] = (25, 50, 100, 200)
                           ) -> List[AblationPoint]:
    """Sweep the gradient engine's cost budget (paper default: 100)."""
    points = []
    for budget in budgets:
        aig = get_benchmark(benchmark)
        start = time.time()
        stats = gradient_optimize(aig, GradientConfig(cost_budget=budget))
        points.append(AblationPoint(
            label=f"budget={budget}",
            size_after=aig.cleanup().num_ands,
            runtime_s=time.time() - start,
            extra={"moves": stats.moves_tried,
                   "early": stats.terminated_early}))
    return points


def ablate_hetero_vs_homogeneous(benchmark: str = "cavlc"
                                 ) -> List[AblationPoint]:
    """Heterogeneous per-partition thresholds vs each homogeneous setting."""
    points = []
    aig = get_benchmark(benchmark)
    start = time.time()
    hetero_kernel_pass(aig)
    points.append(AblationPoint("heterogeneous",
                                aig.cleanup().num_ands,
                                time.time() - start))
    for threshold in (-1, 5, 50, 200):
        aig = get_benchmark(benchmark)
        start = time.time()
        homogeneous_kernel_pass(aig, threshold)
        points.append(AblationPoint(f"homogeneous({threshold})",
                                    aig.cleanup().num_ands,
                                    time.time() - start))
    return points


def ablate_bdd_reordering(benchmark: str = "cavlc") -> List[AblationPoint]:
    """Section III-C's declined tradeoff: BDD reordering on vs off.

    The paper skips variable ordering to save runtime at the cost of
    memory; with sifting enabled the allocated-node count (memory proxy)
    drops and the runtime rises.
    """
    points = []
    for reorder in (False, True):
        aig = get_benchmark(benchmark)
        config = BooleanDifferenceConfig(reorder=reorder)
        start = time.time()
        stats = boolean_difference_pass(aig, config)
        points.append(AblationPoint(
            label="sifting on" if reorder else "no reorder (paper)",
            size_after=aig.cleanup().num_ands,
            runtime_s=time.time() - start,
            extra={"bdd_nodes": stats.bdd_nodes_allocated,
                   "rewrites": stats.rewrites}))
    return points


def ablate_mspf_engine(benchmark: str = "cavlc") -> List[AblationPoint]:
    """Truth-table MSPF of [1] vs the paper's BDD MSPF (Section IV-C).

    With identical partitioning the BDD engine processes windows the
    truth-table engine must skip, reaching a larger solution subset.
    """
    from repro.opt.mspf_tt import tt_mspf_pass
    from repro.partition.partitioner import PartitionConfig
    from repro.sbm.config import MspfConfig
    from repro.sbm.mspf import mspf_pass

    wide = PartitionConfig(max_levels=24, max_size=400, max_leaves=28)
    points = []
    aig = get_benchmark(benchmark)
    start = time.time()
    tt_stats = tt_mspf_pass(aig, max_leaves=12, partition=wide)
    points.append(AblationPoint(
        label="truth-table MSPF [1]",
        size_after=aig.cleanup().num_ands,
        runtime_s=time.time() - start,
        extra={"processed": tt_stats.nodes_processed,
               "skipped_windows": tt_stats.windows_skipped_width,
               "rewrites": tt_stats.rewrites}))
    aig = get_benchmark(benchmark)
    start = time.time()
    bdd_stats = mspf_pass(aig, MspfConfig(partition=wide))
    points.append(AblationPoint(
        label="BDD MSPF (SBM)",
        size_after=aig.cleanup().num_ands,
        runtime_s=time.time() - start,
        extra={"processed": bdd_stats.nodes_processed,
               "rewrites": bdd_stats.rewrites}))
    return points


def format_points(title: str, points: List[AblationPoint]) -> str:
    """Simple table rendering for ablation sweeps."""
    lines = [title]
    for p in points:
        extra = f"  {p.extra}" if p.extra else ""
        lines.append(f"  {p.label:20s} size={p.size_after:6d} "
                     f"t={p.runtime_s:6.2f}s{extra}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_points("BDD size filter (III-C)", ablate_bdd_size_limit()))
    print(format_points("xor_cost (III-C)", ablate_xor_cost()))
    print(format_points("Gradient budget (IV-A)", ablate_gradient_budget()))
    print(format_points("Hetero vs homogeneous (IV-B)",
                        ablate_hetero_vs_homogeneous()))
    print(format_points("BDD reordering (III-C extension)",
                        ablate_bdd_reordering()))
    print(format_points("TT vs BDD MSPF (IV-C)", ablate_mspf_engine()))


if __name__ == "__main__":  # pragma: no cover
    main()
