"""Simulation-guided resubstitution on the BDD-hostile arithmetic cases.

The four BDD-filtered SBM engines bail out (``BddLimitError`` →
``bdd_bailouts``) on the large EPFL arithmetic benchmarks; simulation-
guided resubstitution (:mod:`repro.sbm.simresub`, after Lee et al.,
arXiv:2007.02579) carries no BDDs and keeps optimizing there.  This
experiment demonstrates exactly that coverage claim, per benchmark:

* the strongest BDD engine alone (MSPF) — bailout count and gain;
* the simresub engine alone — candidate/refutation counters and gain;
* the full flow with simresub — final size, run at ``jobs=1`` **and**
  ``jobs=4`` with the results asserted bit-identical, and the optimized
  network CEC-verified against the input.

Widths are chosen so the end-to-end equivalence check completes with the
pure-Python SAT stack (the nightly ``nightly-large`` campaign tier runs
bigger widths under the warm==cold bit-identity gate instead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.aig.aig import Aig
from repro.bench import arith
from repro.sat.equivalence import find_counterexample
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow
from repro.sbm.mspf import mspf_pass
from repro.sbm.simresub import simresub_pass

#: The demonstration cases: (display name, generator).
DEMO_BENCHMARKS: Tuple[Tuple[str, Callable[[], Aig]], ...] = (
    ("log2(w10)", lambda: arith.log2_unit(10)),
    ("div(w8)", lambda: arith.div(8)),
)


@dataclass
class SimresubLargeResult:
    """One benchmark's BDD-bailout vs simulation-resub comparison."""

    benchmark: str
    size: int
    mspf_bailouts: int
    mspf_gain: int
    simresub_gain: int
    candidates_proposed: int
    candidates_refuted: int
    cex_patterns: int
    flow_size: int              #: final size of the flow with simresub
    jobs_identical: bool        #: flow(jobs=4) bit-identical to flow(jobs=1)
    cec_ok: bool                #: final network equivalent to the input
    runtime_s: float


def _bit_identical(a: Aig, b: Aig) -> bool:
    """Structural equality of two cleaned-up networks."""
    return (a.num_ands == b.num_ands and a.num_pis == b.num_pis
            and a.pos() == b.pos()
            and all(a.fanins(n) == b.fanins(n)
                    for n in a.nodes() if a.is_and(n)))


def run_simresub_large(benchmarks: Sequence[Tuple[str, Callable[[], Aig]]]
                       = DEMO_BENCHMARKS,
                       jobs: int = 1) -> List[SimresubLargeResult]:
    """The coverage demonstration on every benchmark in *benchmarks*."""
    results: List[SimresubLargeResult] = []
    for name, generate in benchmarks:
        start = time.time()
        original = generate().cleanup()

        mspf_net = generate()
        mspf_stats = mspf_pass(mspf_net)

        resub_net = generate()
        resub_stats = simresub_pass(resub_net)

        config = FlowConfig(iterations=1, jobs=max(1, jobs))
        flow_serial, _ = sbm_flow(generate(), config)
        flow_parallel, _ = sbm_flow(
            generate(), FlowConfig(iterations=1, jobs=4))
        jobs_identical = _bit_identical(flow_serial, flow_parallel)
        cec_ok = find_counterexample(original, flow_serial) is None

        results.append(SimresubLargeResult(
            benchmark=name,
            size=original.num_ands,
            mspf_bailouts=mspf_stats.bdd_bailouts,
            mspf_gain=mspf_stats.gain,
            simresub_gain=resub_stats.gain,
            candidates_proposed=resub_stats.candidates_proposed,
            candidates_refuted=resub_stats.candidates_refuted,
            cex_patterns=resub_stats.cex_patterns,
            flow_size=flow_serial.num_ands,
            jobs_identical=jobs_identical,
            cec_ok=cec_ok,
            runtime_s=time.time() - start))
    return results


def format_simresub_rows(results: Sequence[SimresubLargeResult]) -> str:
    """Human-readable table for ``results/simresub_large_arith.txt``."""
    lines = [
        "Simulation-guided resubstitution on BDD-hostile arithmetic",
        f"{'benchmark':12s} {'size':>6s} {'mspf_bail':>9s} {'mspf_gain':>9s} "
        f"{'sim_gain':>8s} {'refuted':>7s} {'flow':>6s} {'jobs4==1':>8s} "
        f"{'CEC':>4s} {'time':>7s}",
    ]
    for r in results:
        lines.append(
            f"{r.benchmark:12s} {r.size:6d} {r.mspf_bailouts:9d} "
            f"{r.mspf_gain:9d} {r.simresub_gain:8d} "
            f"{r.candidates_refuted:7d} {r.flow_size:6d} "
            f"{'yes' if r.jobs_identical else 'NO':>8s} "
            f"{'ok' if r.cec_ok else 'FAIL':>4s} {r.runtime_s:6.1f}s")
    return "\n".join(lines)
