"""Table I — "New Best Area Results For The EPFL Suite" (LUT-6 mapping).

The paper optimizes each EPFL benchmark with the SBM flow, maps onto LUT-6
with ABC's ``if -K 6 -a``, and improves 12 previous best area results.  The
previous bests came from years of competition entries we cannot rerun, so
the reproduced comparison is **baseline script (resyn2rs) + LUT-6 map** vs
**SBM flow + LUT-6 map** on the same (scaled) benchmark — the shape to
reproduce is that the Boolean methods win the area category on most rows.
Paper LUT counts at native widths are printed alongside for reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.registry import BENCHMARKS, TABLE1_BENCHMARKS, get_benchmark
from repro.campaign.cache import cached_sbm_flow
from repro.experiments.report import Row, format_table
from repro.mapping.lut import map_luts
from repro.opt.scripts import resyn2rs
from repro.sat.equivalence import check_equivalence
from repro.sbm.config import FlowConfig


@dataclass
class Table1Result:
    """Per-benchmark Table I reproduction record."""

    benchmark: str
    io: str
    baseline_luts: int
    baseline_levels: int
    sbm_luts: int
    sbm_levels: int
    paper_luts: Optional[int]
    paper_levels: Optional[int]
    verified: bool
    runtime_s: float

    @property
    def improved(self) -> bool:
        """True when SBM beat the baseline mapping (the paper's claim shape)."""
        return self.sbm_luts <= self.baseline_luts


def run_table1(benchmarks: Optional[Sequence[str]] = None,
               scaled: bool = True,
               flow_config: Optional[FlowConfig] = None,
               verify: bool = True) -> List[Table1Result]:
    """Reproduce Table I on the selected benchmarks."""
    names = list(benchmarks) if benchmarks else list(TABLE1_BENCHMARKS)
    flow_config = flow_config or FlowConfig(iterations=1)
    results: List[Table1Result] = []
    for name in names:
        start = time.time()
        original = get_benchmark(name, scaled=scaled)
        baseline = resyn2rs(original.cleanup(), max_iterations=2)
        base_map = map_luts(baseline, k=6)
        # The paper both re-optimizes the original unoptimized AIGs and runs
        # "over previous best results" (Section V-B); reproduce by starting
        # the SBM flow from each and keeping the better LUT mapping.  Flows
        # route through the campaign result cache when one is active
        # (``repro.campaign.cache.cache_context``), so warm reruns only pay
        # for mapping and verification.
        optimized, _stats, _hit, _key = cached_sbm_flow(original, flow_config)
        sbm_map = map_luts(optimized, k=6)
        from_best, _stats2, _hit2, _key2 = cached_sbm_flow(baseline,
                                                           flow_config)
        alt_map = map_luts(from_best, k=6)
        if (alt_map.area, alt_map.depth) < (sbm_map.area, sbm_map.depth):
            optimized, sbm_map = from_best, alt_map
        verified = True
        if verify:
            ok, _ = check_equivalence(original, optimized)
            verified = ok
        ref = BENCHMARKS[name].reference
        results.append(Table1Result(
            benchmark=name,
            io=f"{original.num_pis}/{original.num_pos}",
            baseline_luts=base_map.area,
            baseline_levels=base_map.depth,
            sbm_luts=sbm_map.area,
            sbm_levels=sbm_map.depth,
            paper_luts=ref.table1_luts,
            paper_levels=ref.table1_levels,
            verified=verified,
            runtime_s=time.time() - start,
        ))
    return results


def format_results(results: List[Table1Result]) -> str:
    """Paper-style rendering of the reproduced Table I."""
    rows = []
    for r in results:
        rows.append(Row(r.benchmark, {
            "I/O": r.io,
            "base LUT-6": r.baseline_luts,
            "base lev": r.baseline_levels,
            "SBM LUT-6": r.sbm_luts,
            "SBM lev": r.sbm_levels,
            "paper LUT-6": r.paper_luts,
            "paper lev": r.paper_levels,
            "eq": "ok" if r.verified else "FAIL",
        }))
    improved = sum(1 for r in results if r.improved)
    table = format_table(
        "Table I — New Best Area Results (LUT-6), reproduced",
        ["I/O", "base LUT-6", "base lev", "SBM LUT-6", "SBM lev",
         "paper LUT-6", "paper lev", "eq"], rows)
    return (f"{table}\n"
            f"SBM matched or beat the baseline mapping on "
            f"{improved}/{len(results)} benchmarks "
            f"(paper: improved 12 best known results).")


def main() -> None:  # pragma: no cover - CLI convenience
    results = run_table1()
    print(format_results(results))


if __name__ == "__main__":  # pragma: no cover
    main()
