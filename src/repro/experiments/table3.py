"""Table III — "Post Place&Route Results on 33 Industrial Designs".

The paper's flow comparison, reproduced on the 33 synthetic industrial
designs: the proposed flow (baseline + SBM) against the baseline flow, with
all metrics reported as average relative deltas exactly as the paper
formats them (baseline normalized to 1):

    Comb. Area −2.20%   No-clk Dyn. Pow. −1.15%   WNS −0.56%
    TNS −5.99%          Runtime +1.75%

The *shape* to match: area, power, and TNS improve by a few percent while
runtime pays a small premium.  (Our runtime premium is much larger than
+1.75% because the baseline script is also pure Python while the paper adds
SBM to a mature C++ flow; the sign is what carries over.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.asic.designs import industrial_designs
from repro.asic.flow import ImplementationResult, baseline_flow, proposed_flow
from repro.experiments.report import Row, format_table
from repro.sbm.config import FlowConfig


#: The paper's Table III row for the proposed flow (relative to baseline).
PAPER_DELTAS = {
    "comb_area": -2.20,
    "dyn_power": -1.15,
    "wns": -0.56,
    "tns": -5.99,
    "runtime": +1.75,
}


@dataclass
class Table3Result:
    """Per-design pair of flow results."""

    design: str
    baseline: ImplementationResult
    proposed: ImplementationResult

    def delta(self, metric: str) -> Optional[float]:
        """Relative delta in percent (negative = proposed smaller/better)."""
        base = getattr(self.baseline, metric)
        prop = getattr(self.proposed, metric)
        if metric in ("wns", "tns"):
            # Slack metrics are ≤ 0; report change in violation magnitude.
            base_mag, prop_mag = -base, -prop
            if base_mag <= 1e-12:
                return None
            return 100.0 * (prop_mag - base_mag) / base_mag
        if abs(base) < 1e-12:
            return None
        return 100.0 * (prop - base) / base


@dataclass
class Table3Summary:
    """Averages over all designs, in the paper's normalized format."""

    results: List[Table3Result] = field(default_factory=list)

    def average_delta(self, metric: str) -> Optional[float]:
        """Mean relative delta over designs where it is defined."""
        deltas = [r.delta(metric) for r in self.results]
        deltas = [d for d in deltas if d is not None]
        if not deltas:
            return None
        return sum(deltas) / len(deltas)

    def all_verified(self) -> bool:
        """True when every run passed equivalence checking."""
        return all(r.baseline.verified and r.proposed.verified
                   for r in self.results)


def run_table3(num_designs: int = 33, verify: bool = True,
               sbm_config: Optional[FlowConfig] = None,
               clock_margin: float = 0.96) -> Table3Summary:
    """Run both flows on the synthetic industrial suite.

    The clock target of each design is set to ``clock_margin ×`` the
    *baseline flow's achieved* critical path, so the baseline starts with a
    small timing violation — the regime in which Table III's WNS/TNS columns
    are meaningful.
    """
    from repro.asic.place import place
    from repro.asic.sta import analyze_timing
    summary = Table3Summary()
    for design in industrial_designs(num_designs):
        base = baseline_flow(design.aig, clock_period=1e9, verify=verify,
                             keep_netlist=True)
        placement = place(base.netlist)
        unconstrained = analyze_timing(base.netlist, 1e9, placement)
        period = unconstrained.critical_path_delay * clock_margin
        timing = analyze_timing(base.netlist, period, placement)
        base.wns = timing.wns
        base.tns = timing.tns
        prop = proposed_flow(design.aig, period, verify=verify,
                             sbm_config=sbm_config)
        summary.results.append(Table3Result(design.name, base, prop))
    return summary


def format_summary(summary: Table3Summary) -> str:
    """Paper-style Table III rendering plus the per-design breakdown."""
    rows = []
    for r in summary.results:
        rows.append(Row(r.design, {
            "area(b)": round(r.baseline.combinational_area, 1),
            "area(p)": round(r.proposed.combinational_area, 1),
            "pow(b)": round(r.baseline.dynamic_power, 1),
            "pow(p)": round(r.proposed.dynamic_power, 1),
            "tns(b)": round(r.baseline.tns, 3),
            "tns(p)": round(r.proposed.tns, 3),
            "eq": "ok" if (r.baseline.verified and r.proposed.verified) else "FAIL",
        }))
    per_design = format_table("Table III — per-design results",
                              ["area(b)", "area(p)", "pow(b)", "pow(p)",
                               "tns(b)", "tns(p)", "eq"], rows)
    lines = [per_design, "",
             "Table III — averages relative to baseline (paper in parens):"]
    labels = {
        "combinational_area": ("Comb. Area", "comb_area"),
        "dynamic_power": ("No-clk Dyn. Pow.", "dyn_power"),
        "wns": ("WNS", "wns"),
        "tns": ("TNS", "tns"),
        "runtime_s": ("Runtime", "runtime"),
    }
    for metric, (label, paper_key) in labels.items():
        avg = summary.average_delta(metric)
        paper = PAPER_DELTAS[paper_key]
        shown = f"{avg:+.2f}%" if avg is not None else "n/a"
        lines.append(f"  {label:18s} {shown:>9s}   (paper: {paper:+.2f}%)")
    lines.append(f"  equivalence checks: "
                 f"{'all passed' if summary.all_verified() else 'FAILURES'}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    summary = run_table3(num_designs=6)
    print(format_summary(summary))


if __name__ == "__main__":  # pragma: no cover
    main()
