"""Figure 1 — the Boolean difference example.

Fig. 1(a) shows a 5-input network computing two functions ``f`` and ``g``
that share most of their logic; Fig. 1(b) shows ``f`` rewritten as
``f = ∂f/∂g ⊕ g``, where the small Boolean-difference network replaces
``f``'s private cone and "the total number of nodes is reduced".

The exact gate netlist of the figure is not machine-readable from the text,
so the experiment constructs a network with the same property — ``f`` built
expansively, ``g`` compact, difference ``f ⊕ g`` tiny — runs the
Boolean-difference engine, and reports the size reduction together with the
rewrite's structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.aig import Aig, lit_not
from repro.sat.equivalence import check_equivalence
from repro.sbm.boolean_difference import (
    BooleanDifferenceStats,
    boolean_difference_pass,
)


@dataclass
class Fig1Result:
    """Outcome of the Figure 1 demonstration."""

    size_before: int
    size_after: int
    stats: BooleanDifferenceStats
    verified: bool

    @property
    def reduced(self) -> bool:
        """The figure's claim: the rewrite reduces the node count."""
        return self.size_after < self.size_before


def build_fig1_network() -> Aig:
    """A 5-input network in the spirit of Fig. 1(a).

    ``g = x1·x2 + x3·(x4 + x5)`` is the gray shared function; ``f`` equals
    ``g ⊕ (x1·x5)`` but is built as a flat two-level expansion with no XOR
    structure, so its private cone is large.
    """
    aig = Aig("fig1")
    x1, x2, x3, x4, x5 = aig.add_pis(5)
    g = aig.add_or(aig.add_and(x1, x2),
                   aig.add_and(x3, aig.add_or(x4, x5)))
    d = aig.add_and(x1, x5)
    # f = g·!d + !g·d, expanded over the primary inputs without sharing.
    t1 = aig.add_and(x1, aig.add_and(x2, lit_not(aig.add_and(x1, x5))))
    t2 = aig.add_and(x3, aig.add_and(aig.add_or(x4, x5),
                                     lit_not(aig.add_and(x1, x5))))
    t3 = aig.add_and(aig.add_and(x1, x5), lit_not(g))
    f = aig.add_or(aig.add_or(t1, t2), t3)
    aig.add_po(f, "f")
    aig.add_po(g, "g")
    return aig.cleanup()


def run_fig1() -> Fig1Result:
    """Run the Boolean-difference engine on the Fig. 1 network."""
    aig = build_fig1_network()
    reference = aig.cleanup()
    before = aig.num_ands
    stats = boolean_difference_pass(aig)
    after = aig.cleanup().num_ands
    ok, _ = check_equivalence(reference, aig.cleanup())
    return Fig1Result(size_before=before, size_after=after, stats=stats,
                      verified=ok)


def format_result(result: Fig1Result) -> str:
    """Human-readable summary of the Figure 1 demonstration."""
    return (
        "Figure 1 — Boolean difference example, reproduced\n"
        f"  network size before rewrite : {result.size_before}\n"
        f"  network size after  rewrite : {result.size_after}\n"
        f"  pairs tried / rewrites      : {result.stats.pairs_tried} / "
        f"{result.stats.rewrites}\n"
        f"  functionally verified       : {'yes' if result.verified else 'NO'}\n"
        f"  (paper: rewriting f as ∂f/∂g ⊕ g reduces the total node count)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run_fig1()))


if __name__ == "__main__":  # pragma: no cover
    main()
