"""Content-addressed per-stage memoization (the orchestrate memo layer).

A :class:`StageMemo` answers "has this exact stage already run on this
exact network with these exact knobs?" — if yes, the cached output
network and its telemetry come back instantly instead of re-running the
engine.  Keys are :func:`repro.campaign.cache.stage_cache_key` over
(input-network fingerprint, stage name, semantic stage config, effort,
depth limit); see DESIGN §4k for the key contract.

Two tiers back the memo:

* an **in-memory map** (always on) of :class:`~repro.parallel.window_io
  .CompactAig` entries — hits within one search, across rounds and
  candidate orderings that share a prefix;
* the **disk slot** — when a campaign :class:`~repro.campaign.cache
  .ResultCache` is active, entries are also committed to its ``stage``
  namespace with the same temp+fsync+rename discipline as flow entries,
  so a *later* search (same process or not) starts warm.

Lookups decode a **fresh** ``Aig`` every time: stage runners mutate their
input in place, so handing out a shared object would corrupt the memo.
The memo is thread-safe — candidate evaluations run concurrently.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.aig.aig import Aig
from repro.campaign.cache import ResultCache
from repro.parallel.window_io import CompactAig


class StageMemo:
    """Two-tier (memory + optional disk) store of finished stage results."""

    def __init__(self, cache: Optional[ResultCache] = None) -> None:
        self.cache = cache
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[CompactAig, Dict[str, Any]]] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    def lookup(self, key: str) -> Optional[Tuple[Aig, Dict[str, Any]]]:
        """``(fresh network, telemetry)`` for *key*, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.memory_hits += 1
                compact, stats = entry
                return compact.to_aig(), dict(stats)
        if self.cache is not None:
            disk = self.cache.lookup_stage(key)
            if disk is not None:
                compact = CompactAig.from_aig(disk.network)
                with self._lock:
                    self._entries.setdefault(key, (compact, dict(disk.stats)))
                    self.disk_hits += 1
                return disk.network, dict(disk.stats)
        with self._lock:
            self.misses += 1
        return None

    def store(self, key: str, network: Aig, stats: Dict[str, Any]) -> None:
        """Commit one finished stage result (memory always, disk if backed)."""
        compact = CompactAig.from_aig(network)
        with self._lock:
            self._entries[key] = (compact, dict(stats))
            self.stores += 1
        if self.cache is not None:
            self.cache.store_stage(key, network, stats)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot; ``misses`` is the number of stage recomputes."""
        with self._lock:
            return {"memory_hits": self.memory_hits,
                    "disk_hits": self.disk_hits,
                    "misses": self.misses,
                    "stores": self.stores,
                    "entries": len(self._entries)}
