"""The pass-ordering search: rounds of K candidate stage sequences.

``orchestrated_flow`` replaces the fixed stage waterfall of
:func:`repro.sbm.flow.sbm_flow` with a deterministic search:

1. each **round** asks the :class:`~repro.orchestrate.bandit
   .TransitionBandit` for K candidate sequences over the movable (non-
   vital) stages of the :func:`~repro.sbm.flow._stage_specs` table —
   vital stages stay pinned at the tail in table order;
2. every candidate is evaluated from the same starting network —
   candidates are **pure functions** of (input network, sequence,
   config), so they may run concurrently in threads (engine partition
   windows still go through the shared process pool) without changing
   any result;
3. each stage of a candidate first consults the :class:`~repro
   .orchestrate.memo.StageMemo`; a hit returns the cached output network
   instantly, a miss runs the stage and commits the result, so shared
   prefixes across candidates/rounds/campaigns are computed exactly once;
4. the **winner** (lowest objective; node count by default, pluggable
   for the future cost-generic work) seeds the next round, and every
   candidate's per-stage node gains train the bandit.

Determinism contract: with a fixed ``OrchestrateConfig.seed`` the chosen
orderings, the winner network, and the final ``FlowStats`` are identical
for every ``jobs``/``threads`` value and for cold vs memo-warm runs —
the same warm == cold property the flow-level campaign cache relies on.

Incompatibilities are rejected loudly rather than silently degraded:
``flow_timeout_s`` (a wall-clock budget would make the winner depend on
machine speed) and ``checkpoint_dir``/``resume_from`` (the checkpoint
cursor is defined over the fixed waterfall) raise ``ValueError``.  Chaos
injection and ``window_timeout_s`` are allowed but disable the memo —
faulty or timing-dependent stage results must never be committed.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.aig.aig import Aig, lit_not
from repro.campaign.cache import (
    active_cache,
    canonical_stage_config,
    network_fingerprint,
    stage_cache_key,
)
from repro.guard.budget import FULL
from repro.guard.stage_guard import GuardReport, StageGuard
from repro.obs import NULL_METRICS, NULL_SPAN, NULL_TRACER, TelemetryCollector
from repro.opt.balance import balance
from repro.orchestrate.bandit import TransitionBandit
from repro.orchestrate.memo import StageMemo
from repro.parallel.shared_pool import SharedProcessPool
from repro.parallel.window_io import CompactAig
from repro.sbm.config import FlowConfig, OrchestrateConfig

#: Pluggable candidate objective: lower is better.  The default is AIG
#: node count — the paper's metric; the cost-generic ROADMAP item plugs
#: depth/switching/mapped costs in here.
Objective = Callable[[Aig], float]


def _node_count(aig: Aig) -> float:
    return float(aig.num_ands)


@dataclasses.dataclass
class CandidateOutcome:
    """One evaluated candidate ordering (everything the round needs)."""

    index: int
    sequence: List[str]
    network: CompactAig
    score: float
    #: per-stage rows: name, nodes_before/after, elapsed_s, cached flag
    rows: List[Dict[str, Any]]

    @property
    def gains(self) -> List[int]:
        """Per-stage node gains, the bandit's training signal."""
        return [row["nodes_before"] - row["nodes_after"]
                for row in self.rows]

    @property
    def cached_stages(self) -> int:
        return sum(1 for row in self.rows if row["cached"])

    @property
    def rollbacks(self) -> int:
        return sum(1 for row in self.rows if row["rolled_back"])


def _evaluate_candidate(base: CompactAig, sequence: Sequence[str],
                        specs_by_name: Dict[str, Any],
                        config: FlowConfig,
                        memo: Optional[StageMemo],
                        depth_limit: Optional[int],
                        objective: Objective,
                        round_index: int, cand_index: int,
                        ) -> CandidateOutcome:
    """Run one candidate ordering on a private copy of *base*.

    Pure function of its arguments: obs is nulled for the duration (the
    global tracer's span stack is single-threaded, and per-stage record_*
    calls from losing candidates must not pollute the session), chaos
    draws key on deterministic ``orch:`` sites, and every mutation
    happens on networks this call owns.
    """
    previous_obs = obs.install(NULL_TRACER, NULL_METRICS)
    previous_collector = obs._collector()
    obs.push_collector(TelemetryCollector())
    try:
        net = base.to_aig()
        guard = StageGuard(net.cleanup()) if config.verify_each_step else None
        rows: List[Dict[str, Any]] = []
        for pos, name in enumerate(sequence):
            spec = specs_by_name[name]
            nodes_before = net.num_ands
            key = None
            if memo is not None:
                key = stage_cache_key(
                    network_fingerprint(net), name,
                    canonical_stage_config(config, name),
                    effort=1, depth_limit=depth_limit)
            t0 = time.perf_counter()
            cached = rolled_back = False
            if key is not None:
                hit = memo.lookup(key)
                if hit is not None:
                    # The entry was committed only after passing every
                    # guard on its cold run; re-verifying here would cost
                    # the SAT proof the memo exists to avoid.
                    net, _stage_stats = hit
                    cached = True
                    if guard is not None:
                        guard.commit(net)
            if not cached:
                from repro.sbm.flow import _StageCtx
                if spec.snapshot == "cleanup":
                    before = net.cleanup()
                elif spec.snapshot == "raw":
                    before = net
                else:
                    before = None
                ctx = _StageCtx(
                    config=config, effort=1, level=FULL, span=NULL_SPAN,
                    chaos_scope=f"orch:r{round_index}:c{cand_index}"
                                f":{pos}:{name}")
                result = spec.run(net, ctx)
                if spec.depth_guard and before is not None \
                        and depth_limit is not None:
                    if result.depth > depth_limit:
                        result = balance(result)
                    if result.depth > depth_limit \
                            and before.depth <= depth_limit:
                        result = before
                        rolled_back = True
                chaos = config.chaos
                if chaos is not None and chaos.draw_stage(
                        f"orch:r{round_index}:c{cand_index}"
                        f":{pos}:{name}") == "corrupt-result":
                    corrupted = result.cleanup()
                    corrupted.set_po(0, lit_not(corrupted.pos()[0]))
                    result = corrupted
                if guard is not None:
                    cex = guard.check(result)
                    if cex is None:
                        guard.commit(result)
                    else:
                        result = guard.rollback_copy()
                        rolled_back = True
                net = result
                if key is not None and not rolled_back:
                    memo.store(key, net, {
                        "nodes_before": nodes_before,
                        "nodes_after": net.num_ands,
                        "elapsed_s": time.perf_counter() - t0})
            rows.append({"name": name,
                         "nodes_before": nodes_before,
                         "nodes_after": net.num_ands,
                         "elapsed_s": time.perf_counter() - t0,
                         "cached": cached,
                         "rolled_back": rolled_back})
        return CandidateOutcome(index=cand_index, sequence=list(sequence),
                                network=CompactAig.from_aig(net),
                                score=objective(net), rows=rows)
    finally:
        if previous_collector is not None:
            obs.push_collector(previous_collector)
        else:
            obs.pop_collector()
        obs.install(*previous_obs)


def orchestrated_flow(aig: Aig, config: FlowConfig,
                      objective: Optional[Objective] = None,
                      ) -> Tuple[Aig, Any]:
    """Run the pass-ordering search; returns ``(best network, FlowStats)``.

    Drop-in for :func:`repro.sbm.flow.sbm_flow` when
    ``config.orchestrate`` is set (``sbm_flow`` dispatches here itself).
    ``config.iterations`` is superseded by ``OrchestrateConfig.rounds``:
    the search rounds *are* the flow's iteration structure.
    """
    from repro.sbm.flow import FlowStats, _stage_specs
    ocfg = config.orchestrate or OrchestrateConfig()
    if config.flow_timeout_s is not None:
        raise ValueError(
            "orchestrate is incompatible with flow_timeout_s: a wall-clock "
            "budget would make the chosen ordering machine-dependent")
    if config.checkpoint_dir is not None:
        raise ValueError(
            "orchestrate is incompatible with checkpoint_dir: the "
            "checkpoint cursor is defined over the fixed waterfall")
    if ocfg.k < 1 or ocfg.rounds < 1:
        raise ValueError("OrchestrateConfig.k and .rounds must be >= 1")
    objective = objective or _node_count

    specs = _stage_specs(config)
    specs_by_name = {spec.name: spec for spec in specs}
    movable = [spec.name for spec in specs if not spec.vital]
    pinned = [spec.name for spec in specs if spec.vital]

    # The memo must only ever hold pure (network, stage, config) -> network
    # facts: chaos faults and window timeouts break that.
    memoizable = config.chaos is None and config.window_timeout_s is None
    memo = StageMemo(cache=active_cache()) if memoizable else None

    own_pool: Optional[SharedProcessPool] = None
    eval_config = config
    if config.jobs not in (0, 1) and config.pool is None:
        own_pool = SharedProcessPool(workers=config.jobs)
        eval_config = dataclasses.replace(config, pool=own_pool)
    pool = eval_config.pool
    threads = ocfg.threads if ocfg.threads else (
        min(ocfg.k, pool.workers) if pool is not None else 1)
    threads = max(1, threads)

    chaos = config.chaos
    chaos_mark = len(chaos.injected) if chaos is not None else 0
    stats = FlowStats()
    stats.guard = report = GuardReport(
        chaos_seed=chaos.seed if chaos is not None else None)
    bandit = TransitionBandit(movable, seed=ocfg.seed,
                              explore=ocfg.explore,
                              min_stages=ocfg.min_stages)
    start = time.time()
    bus = obs.live_bus()
    try:
        with obs.span("flow", kind="flow", design=aig.name,
                      orchestrate=True, k=ocfg.k,
                      rounds=ocfg.rounds) as flow_span:
            current = aig.cleanup()
            stats.record("initial", current.num_ands)
            depth_limit = None
            if config.max_depth_growth is not None:
                depth_limit = max(
                    1, int(current.depth * config.max_depth_growth))
            flow_span.set("nodes_before", current.num_ands)
            if bus.enabled:
                bus.emit("flow_start", design=aig.name,
                         nodes=current.num_ands, stages=0,
                         iterations=ocfg.rounds, resumed_at=0)
            best = current
            best_score = objective(best)
            incumbent = list(movable)
            rounds_doc: List[Dict[str, Any]] = []
            for round_index in range(ocfg.rounds):
                sequences = [candidate + pinned for candidate in
                             bandit.propose(ocfg.k, round_index, incumbent)]
                if bus.enabled:
                    bus.emit("ordering_start", round=round_index,
                             k=len(sequences),
                             incumbent=">".join(incumbent + pinned))
                base = CompactAig.from_aig(current)
                with obs.span(f"ordering[{round_index + 1}]",
                              kind="ordering", round=round_index,
                              k=len(sequences),
                              nodes_before=current.num_ands) as round_span:
                    outcomes = _evaluate_round(
                        base, sequences, specs_by_name, eval_config, memo,
                        depth_limit, objective, round_index, threads)
                    winner = min(outcomes,
                                 key=lambda o: (o.score, o.index))
                    round_span.set("nodes_after", winner.network.num_ands)
                for outcome in outcomes:
                    bandit.update(outcome.sequence, outcome.gains)
                    for row in outcome.rows:
                        if row["rolled_back"]:
                            report.add("rolled_back", row["name"],
                                       round_index,
                                       candidate=outcome.index)
                current = winner.network.to_aig()
                for row in winner.rows:
                    stats.record(f"{row['name']}[r{round_index + 1}]",
                                 row["nodes_after"], row["elapsed_s"])
                if winner.score < best_score:
                    best = current.cleanup()
                    best_score = winner.score
                incumbent = [name for name in winner.sequence
                             if name not in pinned]
                rounds_doc.append({
                    "round": round_index,
                    "winner": winner.index,
                    "ordering": winner.sequence,
                    "nodes": winner.network.num_ands,
                    "candidates": [
                        {"sequence": o.sequence,
                         "nodes": o.network.num_ands,
                         "score": o.score,
                         "cached_stages": o.cached_stages,
                         "rollbacks": o.rollbacks}
                        for o in outcomes],
                })
                if bus.enabled:
                    bus.emit("ordering_end", round=round_index,
                             ordering=">".join(winner.sequence),
                             nodes=winner.network.num_ands,
                             cached=winner.cached_stages)
            stats.runtime_s = time.time() - start
            stats.record("final", best.num_ands)
            stats.orchestrate = {
                "k": ocfg.k,
                "rounds": rounds_doc,
                "chosen": rounds_doc[-1]["ordering"] if rounds_doc else [],
                "stage_memo": memo.stats() if memo is not None else None,
            }
            flow_span.set("nodes_after", best.num_ands)
            if bus.enabled:
                bus.emit("flow_end", design=aig.name, nodes=best.num_ands)
    finally:
        if own_pool is not None:
            own_pool.shutdown()
        if chaos is not None:
            report.faults.extend(chaos.injected_since(chaos_mark))
        obs.record_guard_report(report)
    obs.record_flow_stats(stats)
    return best, stats


def _evaluate_round(base: CompactAig, sequences: List[List[str]],
                    specs_by_name: Dict[str, Any], config: FlowConfig,
                    memo: Optional[StageMemo],
                    depth_limit: Optional[int], objective: Objective,
                    round_index: int, threads: int,
                    ) -> List[CandidateOutcome]:
    """Evaluate a round's candidates (serial or thread-parallel).

    Results come back in candidate order regardless of completion order,
    so everything downstream (winner pick, bandit updates, reports) is
    schedule-independent.
    """
    if threads <= 1 or len(sequences) <= 1:
        return [_evaluate_candidate(base, seq, specs_by_name, config, memo,
                                    depth_limit, objective, round_index, i)
                for i, seq in enumerate(sequences)]
    with ThreadPoolExecutor(max_workers=min(threads, len(sequences)),
                            thread_name_prefix="orchestrate") as executor:
        futures = [executor.submit(_evaluate_candidate, base, seq,
                                   specs_by_name, config, memo, depth_limit,
                                   objective, round_index, i)
                   for i, seq in enumerate(sequences)]
        return [future.result() for future in futures]
