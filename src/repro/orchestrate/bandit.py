"""Deterministic bandit prior over stage-transition gains.

Candidate orderings are not drawn uniformly: the search learns which
stage tends to pay off after which (``gradient`` after ``aig_script``,
``sat_sweep`` after ``boolean_diff``, …) from the node-count deltas of
every candidate it has already evaluated, and biases the next round's
proposals toward high-gain transitions — the cheap learned prior the
ROADMAP item asks for (BoolGebra, arXiv:2401.10753, learns the same
structure with far heavier machinery).

Everything here is **bit-for-bit reproducible**:

* the only randomness is ``random.Random(seed * 1_000_003 + round)`` —
  no wall clock, no ``os.urandom``, no iteration over unordered sets;
* rewards are node deltas, never seconds, so a slow machine learns the
  same prior as a fast one;
* ties in the greedy draw break by waterfall position, the fixed
  canonical order of the stage table.

The bandit proposes **subsets as well as permutations**: a draw may drop
movable stages (down to ``min_stages``), which is how the search
discovers that skipping a stage entirely beats reordering it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

#: Sentinel "previous stage" of the first stage in a sequence.
START = "^"


class TransitionBandit:
    """Average-gain prior over (previous stage → next stage) transitions.

    Parameters
    ----------
    stages:
        Movable stage names in waterfall order — the canonical order used
        for tie-breaks and for restoring dropped stages.
    seed:
        Drives every draw; two bandits with equal seed, stages, and
        update history propose identical candidates.
    explore:
        Probability that a greedy step picks uniformly instead of by
        expected gain (keeps cold transitions measurable).
    min_stages:
        Floor on movable stages kept when a candidate drops stages.
    """

    def __init__(self, stages: Sequence[str], seed: int,
                 explore: float = 0.25, min_stages: int = 3) -> None:
        self.stages: List[str] = list(stages)
        self.seed = seed
        self.explore = explore
        self.min_stages = max(1, min(min_stages, len(self.stages)))
        #: (prev, next) -> (total gain, sample count)
        self._gain: Dict[Tuple[str, str], Tuple[int, int]] = {}

    def expected_gain(self, prev: str, nxt: str) -> float:
        """Mean observed node gain of running *nxt* right after *prev*."""
        total, count = self._gain.get((prev, nxt), (0, 0))
        return total / count if count else 0.0

    def update(self, sequence: Sequence[str],
               gains: Sequence[int]) -> None:
        """Feed one evaluated candidate's per-stage node gains back in."""
        prev = START
        for name, gain in zip(sequence, gains):
            total, count = self._gain.get((prev, name), (0, 0))
            self._gain[(prev, name)] = (total + int(gain), count + 1)
            prev = name

    # -- candidate generation --------------------------------------------------

    def propose(self, k: int, round_index: int,
                incumbent: Sequence[str]) -> List[List[str]]:
        """K distinct candidate sequences for *round_index*.

        Candidate 0 is always the *incumbent* (the reigning ordering keeps
        competing, so a round can never regress the search).  The rest are
        bandit draws, deduplicated within the round; if draws collide too
        often the list is padded with rotations of the incumbent.
        """
        rng = random.Random((self.seed * 1_000_003 + round_index)
                            & 0xFFFFFFFF)
        candidates: List[List[str]] = [list(incumbent)]
        seen = {tuple(incumbent)}
        attempts = 0
        while len(candidates) < k and attempts < 20 * k:
            attempts += 1
            draw = self._draw(rng)
            if tuple(draw) not in seen:
                seen.add(tuple(draw))
                candidates.append(draw)
        rotation = 1
        while len(candidates) < k and rotation < max(2, len(incumbent)):
            rotated = list(incumbent[rotation:]) + list(incumbent[:rotation])
            if tuple(rotated) not in seen:
                seen.add(tuple(rotated))
                candidates.append(rotated)
            rotation += 1
        return candidates

    def _draw(self, rng: random.Random) -> List[str]:
        """One subset-then-order draw from the prior."""
        kept = [name for name in self.stages if rng.random() >= 0.25]
        if len(kept) < self.min_stages:
            # Restore dropped stages in waterfall order until the floor
            # holds — deterministic, no re-draw loop.
            present = set(kept)
            for name in self.stages:
                if name not in present:
                    kept.append(name)
                    present.add(name)
                if len(kept) >= self.min_stages:
                    break
            kept.sort(key=self.stages.index)
        sequence: List[str] = []
        remaining = [name for name in self.stages if name in set(kept)]
        prev = START
        while remaining:
            if rng.random() < self.explore:
                nxt = remaining[rng.randrange(len(remaining))]
            else:
                # Highest expected gain; ties break toward the earlier
                # waterfall position (max of (gain, -index)).
                nxt = max(remaining,
                          key=lambda name: (self.expected_gain(prev, name),
                                            -self.stages.index(name)))
            remaining.remove(nxt)
            sequence.append(nxt)
            prev = nxt
        return sequence
