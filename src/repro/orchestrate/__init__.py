"""DAG-aware pass-ordering search over the SBM stage table.

The classic flow (:mod:`repro.sbm.flow`) runs one fixed stage waterfall.
``repro.orchestrate`` turns that table into an explorable program, after
DAG-aware Synthesis Orchestration (arXiv:2310.07846) and BoolGebra
(arXiv:2401.10753):

* :mod:`repro.orchestrate.search` — each round proposes K candidate stage
  sequences (permutations/subsets of the non-vital stages; vital stages
  stay pinned at the tail), evaluates them concurrently, keeps the winner
  by node count (pluggable objective), and seeds the next round with it;
* :mod:`repro.orchestrate.bandit` — a seeded deterministic bandit prior
  over (previous stage → next stage) gain history drives candidate
  generation, so the search is bit-for-bit reproducible: no wall-clock
  feeds it, only node deltas;
* :mod:`repro.orchestrate.memo` — every stage result is memoized by
  (input-network fingerprint, stage name, semantic stage config) in the
  ``stage`` slot of the campaign :class:`~repro.campaign.cache
  .ResultCache`, so no explored branch is ever recomputed — across
  rounds, orderings, or campaigns.

Entry points: ``FlowConfig.orchestrate = OrchestrateConfig(...)`` (then
``sbm_flow`` dispatches here), the ``python -m repro orchestrate`` CLI,
and ``--orchestrate K`` on ``optimize``/``campaign``/run_experiments.
"""

from repro.orchestrate.bandit import START, TransitionBandit
from repro.orchestrate.memo import StageMemo
from repro.orchestrate.search import CandidateOutcome, orchestrated_flow

__all__ = [
    "CandidateOutcome",
    "START",
    "StageMemo",
    "TransitionBandit",
    "orchestrated_flow",
]
