"""Hot-path optimization switch (``repro.hotpath``).

The perf-critical engines — bit-parallel simulation, BDD apply operations,
NPN canonicalization, cut dominance — each carry two implementations:

* the **optimized** path (compiled :class:`~repro.aig.simprogram.SimProgram`
  simulation, operation-keyed BDD computed tables with an iterative apply,
  LRU-cached NPN canonicalization over precomputed transform tables, leaf
  bitmask signatures on cuts), and
* the **reference** path — the original interpreted implementation, kept
  callable so property tests can prove the optimized path bit-identical and
  so :mod:`scripts.bench_hotpath` can measure honest in-process speedups.

Both paths produce *identical results*: same simulation values, same BDD
functions, same canonical representatives and transforms, same cut sets.
The switch selects only *how* they are computed.

Use :func:`disabled` as a context manager in tests/benchmarks::

    with hotpath.disabled():
        slow = simulate_words(aig, words)   # reference path
    fast = simulate_words(aig, words)       # optimized path
    assert slow == fast
"""

from __future__ import annotations

from contextlib import contextmanager

#: Version tag of the optimization code itself, salted into campaign cache
#: keys (:mod:`repro.campaign.cache`).  Bump whenever an engine or hot-path
#: change may alter *results* (not just speed): every cached entry computed
#: under the old code then reads as a miss instead of replaying stale
#: networks.
CODE_VERSION = "sbm-flow/7"

_ENABLED = True


def enabled() -> bool:
    """True when the optimized hot paths are active (the default)."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Globally enable/disable the optimized hot paths."""
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def disabled():
    """Run a block on the reference (pre-optimization) implementations."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


@contextmanager
def forced():
    """Run a block on the optimized implementations regardless of state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous
