"""Binary Decision Diagram package (Section II-A, III-C, IV-C engines)."""

from repro.bdd import pool
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.to_aig import aig_window_to_bdds, bdd_of_literal, bdd_to_aig

__all__ = [
    "BddManager", "FALSE", "TRUE", "pool",
    "bdd_to_aig", "aig_window_to_bdds", "bdd_of_literal",
]
