"""BDD variable reordering (rebuild-based sifting).

The paper deliberately skips reordering: "we did not perform any BDD
variables ordering, as we are dealing with small BDDs.  This saves runtime,
but it requires a higher amount of memory to be used by the BDD package"
(Section III-C).  This module provides the alternative the paper declined,
so the tradeoff can be measured (see ``benchmarks/bench_ablation.py``):
reordering shrinks the node count at extra runtime.

Managers in this package are small and per-partition, so reordering is
implemented by *rebuilding* into a fresh manager under a candidate order —
simple, obviously correct, and adequate at partition scale.  ``sift`` does
a greedy pass relocating each variable to its locally best position.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE, BddManager


def shared_size(manager: BddManager, roots: Sequence[int]) -> int:
    """Number of distinct internal nodes used by *roots* together."""
    seen = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node <= 1 or node in seen:
            continue
        seen.add(node)
        stack.append(manager.low(node))
        stack.append(manager.high(node))
    return len(seen)


def rebuild_with_order(manager: BddManager, roots: Sequence[int],
                       order: Sequence[int],
                       node_limit: Optional[int] = None
                       ) -> Tuple[BddManager, List[int]]:
    """Rebuild *roots* in a fresh manager where position *i* holds old
    variable ``order[i]``.

    Returns ``(new_manager, new_roots)``.  Functions are preserved: the new
    roots compute the same functions of the *original* variables, which are
    simply tested in a different order.
    """
    num_vars = manager.num_vars
    if sorted(order) != list(range(num_vars)):
        raise ValueError("order must be a permutation of the variables")
    position = {old: new for new, old in enumerate(order)}
    new_manager = BddManager(num_vars, node_limit=node_limit)
    memo: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

    def rebuild(node: int) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        var = manager.var_of(node)
        lo = rebuild(manager.low(node))
        hi = rebuild(manager.high(node))
        result = new_manager.ite(new_manager.var(position[var]), hi, lo)
        memo[node] = result
        return result

    new_roots = [rebuild(r) for r in roots]
    return new_manager, new_roots


def sift(manager: BddManager, roots: Sequence[int],
         max_passes: int = 1) -> Tuple[BddManager, List[int], List[int]]:
    """Greedy sifting by rebuild: relocate each variable to its best slot.

    Returns ``(new_manager, new_roots, order)`` with ``order[i]`` the
    original variable now at position *i*.  Cost is O(vars² ) rebuilds —
    fine for the ≤ ~24-variable partition managers of the SBM engines.
    """
    num_vars = manager.num_vars
    order = list(range(num_vars))
    best_manager, best_roots = rebuild_with_order(manager, roots, order)
    best_size = shared_size(best_manager, best_roots)
    for _pass in range(max_passes):
        improved = False
        for var in range(num_vars):
            for target in range(num_vars):
                if target == order.index(var):
                    continue
                candidate = list(order)
                candidate.remove(var)
                candidate.insert(target, var)
                cand_manager, cand_roots = rebuild_with_order(
                    manager, roots, candidate)
                cand_size = shared_size(cand_manager, cand_roots)
                if cand_size < best_size:
                    best_size = cand_size
                    best_manager, best_roots = cand_manager, cand_roots
                    order = candidate
                    improved = True
        if not improved:
            break
    return best_manager, best_roots, order
