"""Conversion between BDDs and AIGs.

``bdd_to_aig`` implements line 15 of Alg. 1: "the implementation of the
Boolean difference node as an AIG, obtained using structural hashing
(strashing) on the corresponding BDD" — every BDD node becomes a strashed
multiplexer, so shared BDD subgraphs become shared AIG logic and existing
network gates are reused automatically.

``aig_window_to_bdds`` precomputes "the BDDs for all nodes in the partition"
(Alg. 2, line 3) by a single topological sweep over a window of the AIG.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.aig.aig import Aig, lit_is_compl, lit_node
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddLimitError


def bdd_to_aig(manager: BddManager, root: int, aig: Aig,
               var_literals: Sequence[int],
               known: Optional[Dict[int, int]] = None) -> int:
    """Build AIG logic implementing BDD *root*; returns the output literal.

    ``var_literals[i]`` is the AIG literal driving BDD variable *i*.  Shared
    BDD nodes are built once (memoized), and :meth:`Aig.add_mux` strashes each
    multiplexer against the existing network.

    ``known`` optionally seeds the memo with BDD-node → existing-AIG-literal
    entries; this implements both the hash-table reuse of Alg. 1 lines 5–7
    ("if bdd_diff already exists in all_bdds, return corresponding node") and
    the "nodes sharing" term of its saving estimate — any sub-BDD that equals
    an existing node's function costs nothing to implement.
    """
    memo: Dict[int, int] = {FALSE: 0, TRUE: 1}
    if known:
        memo.update(known)
        memo[FALSE] = 0
        memo[TRUE] = 1
    # Iterative post-order DFS: children are built before their parents.
    stack: List[int] = [root]
    state: Dict[int, int] = {}
    while stack:
        node = stack[-1]
        if node in memo:
            stack.pop()
            continue
        if state.get(node) is None:
            state[node] = 1
            for child in (manager.low(node), manager.high(node)):
                if child not in memo:
                    stack.append(child)
        else:
            sel = var_literals[manager.var_of(node)]
            memo[node] = aig.add_mux(sel,
                                     memo[manager.high(node)],
                                     memo[manager.low(node)])
            stack.pop()
    return memo[root]


def aig_window_to_bdds(aig: Aig, nodes_in_topo: Iterable[int],
                       leaf_bdds: Dict[int, int], manager: BddManager,
                       size_zero_on_limit: bool = True) -> Dict[int, int]:
    """Compute BDDs for AIG nodes given BDDs for their window leaves.

    Parameters
    ----------
    nodes_in_topo:
        AND nodes of the window in topological order; all fanins must be in
        *leaf_bdds* or appear earlier in the iteration.
    leaf_bdds:
        Mapping from leaf node id (PI or cut boundary) to its BDD node.
    size_zero_on_limit:
        When the manager's node limit trips, record the node as absent
        (the paper "sets the BDD size of the node to 0" and skips it).

    Returns a dict from AIG node id to BDD node; nodes whose construction
    bailed out are missing from the dict.
    """
    bdds: Dict[int, int] = dict(leaf_bdds)
    bdds[0] = FALSE
    for n in nodes_in_topo:
        f0, f1 = aig.fanins(n)
        b0 = bdds.get(lit_node(f0))
        b1 = bdds.get(lit_node(f1))
        if b0 is None or b1 is None:
            continue  # a fanin already bailed out
        if lit_is_compl(f0):
            b0 = manager.negate(b0)
        if lit_is_compl(f1):
            b1 = manager.negate(b1)
        try:
            bdds[n] = manager.apply_and(b0, b1)
        except BddLimitError:
            if not size_zero_on_limit:
                raise
            # Leave the node absent: treated as BDD size 0 downstream.
    return bdds


def bdd_of_literal(aig_literal: int, bdds: Dict[int, int],
                   manager: BddManager) -> Optional[int]:
    """BDD of an AIG literal given node BDDs (None if the node bailed out)."""
    node_bdd = bdds.get(lit_node(aig_literal))
    if node_bdd is None:
        return None
    return manager.negate(node_bdd) if lit_is_compl(aig_literal) else node_bdd
