"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

BDDs are the reasoning engine of the paper's two headline techniques: the
Boolean-difference resubstitution computes ``∂f/∂g`` as the XOR of two BDDs
(Alg. 1, line 4), and the MSPF engine ANDs per-output permissible-function
conditions (Section IV-C).  Both rely on *strong canonicity*: equal functions
are the same node, so functional filtering and the hash-table lookup of
Alg. 1 line 5 are pointer comparisons.

Design choices mirror the paper:

* **No variable reordering by default** — "we did not perform any BDD
  variables ordering, as we are dealing with small BDDs.  This saves runtime,
  but it requires a higher amount of memory" (Section III-C).
* **Node-limit bailout** — "we set a maximum memory limit for the employed
  BDD package.  The BDD computation is bailed out if the maximum memory limit
  is hit."  Exceeding :attr:`BddManager.node_limit` raises
  :class:`~repro.errors.BddLimitError`; callers treat the node as size 0.

Nodes are small integers; 0 and 1 are the terminals.  Every internal node
``n`` has ``var(n)``, ``low(n)`` (cofactor for var = 0) and ``high(n)``.
Complement edges are not used, keeping the package simple and obviously
correct; a NOT is a (memoized) traversal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import hotpath
from repro.errors import BddLimitError

FALSE = 0  #: terminal node for constant 0
TRUE = 1   #: terminal node for constant 1

#: Opcodes for the direct binary-operation cache (``_cache_op``).
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2

_NO_VAR = 10 ** 9  # pseudo variable level of terminals inside ite


class BddManager:
    """A unique-table based ROBDD manager with an optional node limit.

    Example
    -------
    >>> mgr = BddManager(num_vars=2)
    >>> x0, x1 = mgr.var(0), mgr.var(1)
    >>> f = mgr.apply_xor(x0, x1)
    >>> mgr.size(f)
    3
    """

    def __init__(self, num_vars: int = 0, node_limit: Optional[int] = None) -> None:
        self.node_limit = node_limit
        self._var: List[int] = [-1, -1]   # terminals carry pseudo-var -1
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._cache_ite: Dict[Tuple[int, int, int], int] = {}
        self._cache_not: Dict[int, int] = {}
        #: Direct binary-op computed table keyed ``(op, f, g)`` — the hot
        #: path answers repeated AND/OR/XOR requests without re-entering
        #: the ITE machinery at all.
        self._cache_op: Dict[Tuple[int, int, int], int] = {}
        self._vars: List[int] = []
        for _ in range(num_vars):
            self.new_var()

    # -- variables ------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._vars)

    def new_var(self) -> int:
        """Declare a new variable (appended last in the order); return its node."""
        index = len(self._vars)
        node = self._mk(index, FALSE, TRUE)
        self._vars.append(node)
        return node

    def var(self, index: int) -> int:
        """Node of variable *index*."""
        return self._vars[index]

    def nvar(self, index: int) -> int:
        """Node of the negated variable *index*."""
        return self._mk(index, TRUE, FALSE)

    # -- node accessors ---------------------------------------------------------

    def var_of(self, node: int) -> int:
        """Variable index tested at *node* (-1 for terminals)."""
        return self._var[node]

    def low(self, node: int) -> int:
        """Low (var = 0) child."""
        return self._low[node]

    def high(self, node: int) -> int:
        """High (var = 1) child."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes."""
        return node <= 1

    @property
    def num_nodes(self) -> int:
        """Total nodes ever created (the manager's memory footprint)."""
        return len(self._var)

    # -- core construction ---------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self.node_limit is not None and len(self._var) >= self.node_limit:
            raise BddLimitError(
                f"BDD node limit of {self.node_limit} exceeded")
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        node = len(self._var) - 1
        self._unique[key] = node
        return node

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the universal ternary BDD operator.

        The hot path inlines cofactoring and the top-variable selection
        (no ``min()`` generator, no ``_cofactors`` calls) while keeping
        the reference's exact control flow — low subproblem fully
        evaluated (including ``_mk`` allocations and cache writes) before
        the high one, parent combined last — so node ids, cache
        contents, and any :class:`~repro.errors.BddLimitError` fire at
        identical points.  Recursion depth is bounded by the variable
        count (``top`` strictly increases), so plain recursion is safe
        and measurably cheaper than an explicit frame stack.
        """
        if not hotpath.enabled():
            return self._ite_recursive(f, g, h)
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        cache = self._cache_ite
        key = (f, g, h)
        cached = cache.get(key)
        if cached is not None:
            return cached
        var = self._var
        low_of = self._low
        high_of = self._high
        vf = var[f]
        vg = var[g] if g > 1 else _NO_VAR
        vh = var[h] if h > 1 else _NO_VAR
        top = vf
        if vg < top:
            top = vg
        if vh < top:
            top = vh
        if vf == top:
            f0 = low_of[f]
            f1 = high_of[f]
        else:
            f0 = f1 = f
        if vg == top:
            g0 = low_of[g]
            g1 = high_of[g]
        else:
            g0 = g1 = g
        if vh == top:
            h0 = low_of[h]
            h1 = high_of[h]
        else:
            h0 = h1 = h
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        cache[key] = result
        return result

    def _ite_recursive(self, f: int, g: int, h: int) -> int:
        """Reference ITE: the original recursive formulation."""
        # Terminal cases.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._cache_ite.get(key)
        if cached is not None:
            return cached
        top = min(v for v in (self._var[f],
                              self._var[g] if g > 1 else 10 ** 9,
                              self._var[h] if h > 1 else 10 ** 9))
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self._ite_recursive(f0, g0, h0)
        high = self._ite_recursive(f1, g1, h1)
        result = self._mk(top, low, high)
        self._cache_ite[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if node <= 1 or self._var[node] != var:
            return node, node
        return self._low[node], self._high[node]

    # -- boolean operations -------------------------------------------------------

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two functions.

        Hot path: terminal short-circuits (all allocation-free in the
        reference formulation too) plus a direct ``(AND, f, g)`` computed
        table in front of the ITE machinery.
        """
        if not hotpath.enabled():
            return self.ite(f, g, FALSE)
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == g:
            return f
        key = (_OP_AND, f, g)
        result = self._cache_op.get(key)
        if result is None:
            result = self.ite(f, g, FALSE)
            self._cache_op[key] = result
        return result

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two functions."""
        if not hotpath.enabled():
            return self.ite(f, TRUE, g)
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == g:
            return f
        key = (_OP_OR, f, g)
        result = self._cache_op.get(key)
        if result is None:
            result = self.ite(f, TRUE, g)
            self._cache_op[key] = result
        return result

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or — the paper's Boolean difference ``∂f/∂g = f ⊕ g``.

        Short-circuits are restricted to cases whose reference evaluation
        allocates exactly the same nodes (``f ⊕ 1`` builds the complement
        either way; ``0 ⊕ g`` is *not* short-circuited because the
        reference eagerly builds ``¬g`` first), keeping bailout behaviour
        under a node limit bit-identical.
        """
        if not hotpath.enabled():
            return self.ite(f, self.negate(g), g)
        if g == FALSE:
            return f
        if g == TRUE:
            return self.negate(f)
        if f == TRUE:
            return self.negate(g)
        key = (_OP_XOR, f, g)
        result = self._cache_op.get(key)
        if result is None:
            result = self.ite(f, self.negate(g), g)
            self._cache_op[key] = result
        return result

    def apply_xnor(self, f: int, g: int) -> int:
        """Equivalence of two functions."""
        return self.negate(self.apply_xor(f, g))

    def negate(self, f: int) -> int:
        """Complement of a function (memoized in both directions)."""
        if f == TRUE:
            return FALSE
        if f == FALSE:
            return TRUE
        cache = self._cache_not
        cached = cache.get(f)
        if cached is not None:
            return cached
        result = self._mk(self._var[f],
                          self.negate(self._low[f]),
                          self.negate(self._high[f]))
        cache[f] = result
        cache[result] = f
        return result

    def and_multi(self, nodes: Iterable[int]) -> int:
        """Conjunction of many functions."""
        acc = TRUE
        for n in nodes:
            acc = self.apply_and(acc, n)
            if acc == FALSE:
                return FALSE
        return acc

    def or_multi(self, nodes: Iterable[int]) -> int:
        """Disjunction of many functions."""
        acc = FALSE
        for n in nodes:
            acc = self.apply_or(acc, n)
            if acc == TRUE:
                return TRUE
        return acc

    # -- cofactoring and quantification ----------------------------------------------

    def cofactor(self, f: int, var: int, value: bool) -> int:
        """Shannon cofactor of *f* with respect to ``var = value``.

        This is the primitive of the MSPF computation: "the positive
        (negative) cofactor of the node w.r.t. each primary output is
        computed using BDDs" (Section IV-C).
        """
        return self._restrict(f, var, value, {})

    def _restrict(self, f: int, var: int, value: bool,
                  memo: Dict[int, int]) -> int:
        if f <= 1 or self._var[f] > var:
            return f
        cached = memo.get(f)
        if cached is not None:
            return cached
        if self._var[f] == var:
            result = self._high[f] if value else self._low[f]
        else:
            result = self._mk(self._var[f],
                              self._restrict(self._low[f], var, value, memo),
                              self._restrict(self._high[f], var, value, memo))
        memo[f] = result
        return result

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification over a list of variable indices."""
        result = f
        for var in sorted(variables, reverse=True):
            result = self.apply_or(self.cofactor(result, var, False),
                                   self.cofactor(result, var, True))
        return result

    def forall(self, f: int, variables: Sequence[int]) -> int:
        """Universal quantification over a list of variable indices."""
        result = f
        for var in sorted(variables, reverse=True):
            result = self.apply_and(self.cofactor(result, var, False),
                                    self.cofactor(result, var, True))
        return result

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function *g* for variable *var* inside *f*."""
        return self.ite(g, self.cofactor(f, var, True),
                        self.cofactor(f, var, False))

    # -- queries -------------------------------------------------------------------

    def size(self, f: int) -> int:
        """Number of internal nodes of the BDD rooted at *f*.

        This is the quantity thresholded by Alg. 1 lines 8–10 ("we limit the
        size of the BDD ... Empirically, we found 10 to be a suitable
        tradeoff"); terminals count as zero.
        """
        if f <= 1:
            return 0
        seen: Set[int] = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)

    def support(self, f: int) -> List[int]:
        """Sorted variable indices *f* depends on."""
        seen: Set[int] = set()
        variables: Set[int] = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            variables.add(self._var[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return sorted(variables)

    def satcount(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over *num_vars* variables."""
        n = num_vars if num_vars is not None else self.num_vars
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        memo: Dict[int, int] = {}

        def var_of(node: int) -> int:
            return n if node <= 1 else self._var[node]

        def count(node: int) -> int:
            # Satisfying assignments over variables var_of(node) .. n-1.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            cached = memo.get(node)
            if cached is not None:
                return cached
            v = self._var[node]
            lo = count(self._low[node]) << (var_of(self._low[node]) - v - 1)
            hi = count(self._high[node]) << (var_of(self._high[node]) - v - 1)
            memo[node] = lo + hi
            return lo + hi

        return count(f) << self._var[f]

    def pick_cube(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment as ``{var: value}``; None when UNSAT."""
        if f == FALSE:
            return None
        cube: Dict[int, bool] = {}
        node = f
        while node > 1:
            if self._low[node] != FALSE:
                cube[self._var[node]] = False
                node = self._low[node]
            else:
                cube[self._var[node]] = True
                node = self._high[node]
        return cube

    def eval(self, f: int, assignment: Sequence[bool]) -> bool:
        """Evaluate *f* under a complete input assignment."""
        node = f
        while node > 1:
            node = (self._high[node] if assignment[self._var[node]]
                    else self._low[node])
        return node == TRUE

    def to_truth_bits(self, f: int, num_vars: int) -> int:
        """Expand *f* into a truth-table integer over *num_vars* variables.

        BDD variable *i* maps to truth-table variable *i* (bit *i* of the row
        index, matching :class:`repro.tt.TruthTable`).
        """
        from repro.tt.truthtable import table_mask, variable_table
        full = table_mask(num_vars)
        memo: Dict[int, int] = {FALSE: 0, TRUE: full}

        def walk(node: int) -> int:
            cached = memo.get(node)
            if cached is not None:
                return cached
            tv = variable_table(self._var[node], num_vars)
            result = (tv & walk(self._high[node])) | (~tv & full & walk(self._low[node]))
            memo[node] = result
            return result

        return walk(f)

    # -- maintenance ------------------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop the operation caches (the unique table is preserved).

        The paper frees difference BDD memory "at each iteration" to keep the
        cavlc run convergent; per-partition managers plus this cache clearing
        reproduce that discipline.
        """
        self._cache_ite.clear()
        self._cache_not.clear()
        self._cache_op.clear()

    def reset_for_reuse(self, num_vars: int,
                        node_limit: Optional[int] = None) -> None:
        """Recycle this manager as an exact fresh-manager replacement.

        Restores the precise state ``BddManager(num_vars, node_limit)``
        construction would produce — terminals, then one variable node
        per index, nothing else — while keeping the already-grown list
        and dict *capacity*.  The unique table is deliberately **not**
        kept warm: :attr:`node_limit` counts cumulative allocations, so
        retained nodes would absorb part of a new client's allocation
        demand and shift :class:`~repro.errors.BddLimitError` bailout
        points — and bailout points are part of the engines'
        bit-identity contract.  After this call every subsequent
        allocation (and therefore every node id, cache entry, and
        bailout) replays a fresh manager exactly.
        """
        del self._var[2:]
        del self._low[2:]
        del self._high[2:]
        self._unique.clear()
        self.clear_caches()
        self._vars.clear()
        self.node_limit = node_limit
        for _ in range(num_vars):
            self.new_var()

    def __repr__(self) -> str:
        return f"BddManager(vars={self.num_vars}, nodes={self.num_nodes})"
