"""Process-local :class:`~repro.bdd.manager.BddManager` recycling pool.

The SBM engines build one BDD manager per partition (and the MSPF engine
rebuilds its window BDDs after every accepted rewrite).  Recycling a
manager object keeps its already-grown list and dict *capacity* —
the node arrays and hash tables a window-sized workload forces the
allocator to resize repeatedly — without keeping any *nodes*:
:meth:`~repro.bdd.manager.BddManager.reset_for_reuse` restores the
exact state fresh construction would produce.

Keeping the unique table warm across clients is deliberately off the
table: :attr:`~repro.bdd.manager.BddManager.node_limit` counts
cumulative allocations, so retained nodes would absorb part of a new
client's allocation demand, shift the engines' bailout points, and
break the hot path's bit-identity contract (a bailing partition that
suddenly completes changes the final network).

The pool is per-process (worker processes each grow their own) and
capped both in depth and in retained-capacity footprint so it can never
hoard unbounded memory.  With :mod:`repro.hotpath` disabled, ``acquire``
degrades to plain construction and ``release`` drops the manager,
reproducing the reference one-manager-per-partition discipline exactly.
"""

from __future__ import annotations

from typing import List, Optional

from repro import hotpath
from repro.bdd.manager import BddManager

#: Maximum managers kept waiting for reuse.
MAX_POOLED = 4
#: Managers whose unique table grew beyond this many nodes are dropped
#: instead of pooled — recycling must bound memory, not leak it.
MAX_POOLED_NODES = 1_000_000

_POOL: List[BddManager] = []


def acquire(num_vars: int, node_limit: Optional[int] = None) -> BddManager:
    """A manager with *num_vars* variables and fresh-equivalent headroom."""
    if hotpath.enabled():
        while _POOL:
            manager = _POOL.pop()
            if manager.num_nodes <= MAX_POOLED_NODES:
                manager.reset_for_reuse(num_vars, node_limit=node_limit)
                return manager
    return BddManager(num_vars, node_limit=node_limit)


def release(manager: BddManager) -> None:
    """Offer *manager* back for recycling (dropped when over budget)."""
    if (hotpath.enabled() and len(_POOL) < MAX_POOLED
            and manager.num_nodes <= MAX_POOLED_NODES):
        _POOL.append(manager)


def clear() -> None:
    """Drop every pooled manager (test isolation / memory reclamation)."""
    _POOL.clear()
