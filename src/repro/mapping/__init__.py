"""Technology mapping: K-LUT mapping and standard-cell mapping."""

from repro.mapping.lut import LutMapping, map_luts

__all__ = ["LutMapping", "map_luts"]
