"""Area-oriented K-LUT technology mapping.

The Table I experiment maps optimized AIGs "onto LUT-6 [with] the ABC command
``if -K 6 -a``" — an area-oriented structural mapper.  This module implements
the standard recipe behind that command:

1. enumerate priority K-feasible cuts per node,
2. forward pass selecting each node's best cut by *area flow* (estimated
   shared area) with depth as tie-breaker,
3. backward cover extraction from the POs,
4. a few *exact-area* recovery passes re-selecting cuts against the real
   reference counts of the current cover.

The result reports LUT count (the paper's "LUT-6 count" column) and mapped
depth ("level count").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.aig.aig import Aig, lit_node
from repro.aig.cuts import Cut, enumerate_cuts


@dataclass
class LutMapping:
    """A LUT cover of an AIG.

    Attributes
    ----------
    luts:
        Mapping from LUT root node to its leaf tuple.
    area:
        Number of LUTs.
    depth:
        Maximum number of LUTs on any PI→PO path (the "level count").
    """

    luts: Dict[int, Tuple[int, ...]]
    area: int
    depth: int

    def lut_count(self) -> int:
        """LUT count (paper's area metric for the EPFL contest)."""
        return self.area


def map_luts(aig: Aig, k: int = 6, cut_limit: int = 8,
             area_passes: int = 2) -> LutMapping:
    """Area-oriented K-LUT mapping of *aig*."""
    cuts = enumerate_cuts(aig, k=k, cut_limit=cut_limit, compute_tables=False)
    order = aig.topological_order()
    refs = _structural_refs(aig)
    best_cut: Dict[int, Cut] = {}
    area_flow: Dict[int, float] = {0: 0.0}
    depth: Dict[int, int] = {0: 0}
    for p in aig.pis():
        area_flow[p] = 0.0
        depth[p] = 0

    def select(node: int, ref_of) -> None:
        best = None
        best_key = None
        for cut in cuts[node]:
            if len(cut.leaves) == 1 and cut.leaves[0] == node:
                continue  # trivial cut cannot implement the node
            flow = 1.0
            cut_depth = 0
            for leaf in cut.leaves:
                flow += area_flow[leaf] / max(1.0, ref_of(leaf))
                cut_depth = max(cut_depth, depth[leaf])
            key = (flow, cut_depth, len(cut.leaves))
            if best_key is None or key < best_key:
                best_key = key
                best = cut
        best_cut[node] = best
        area_flow[node] = best_key[0]
        depth[node] = best_key[1] + 1

    for node in order:
        select(node, lambda leaf: refs.get(leaf, 1))

    cover = _extract_cover(aig, best_cut)
    for _pass in range(area_passes):
        cover_refs = _cover_refs(aig, cover)
        area_flow = {0: 0.0}
        depth = {0: 0}
        for p in aig.pis():
            area_flow[p] = 0.0
            depth[p] = 0
        for node in order:
            select(node, lambda leaf: cover_refs.get(leaf, refs.get(leaf, 1)))
        cover = _extract_cover(aig, best_cut)

    mapped_depth = _cover_depth(aig, cover)
    return LutMapping(luts=cover, area=len(cover), depth=mapped_depth)


def _structural_refs(aig: Aig) -> Dict[int, int]:
    refs: Dict[int, int] = {}
    for n in aig.topological_order():
        for f in aig.fanins(n):
            refs[lit_node(f)] = refs.get(lit_node(f), 0) + 1
    for po in aig.pos():
        refs[lit_node(po)] = refs.get(lit_node(po), 0) + 1
    return refs


def _extract_cover(aig: Aig, best_cut: Dict[int, Cut]) -> Dict[int, Tuple[int, ...]]:
    cover: Dict[int, Tuple[int, ...]] = {}
    visited: Set[int] = set()
    stack = [lit_node(po) for po in aig.pos()]
    while stack:
        node = stack.pop()
        if node in visited or not aig.is_and(node):
            continue
        visited.add(node)
        cut = best_cut[node]
        cover[node] = cut.leaves
        stack.extend(cut.leaves)
    return cover


def _cover_refs(aig: Aig, cover: Dict[int, Tuple[int, ...]]) -> Dict[int, int]:
    refs: Dict[int, int] = {}
    for leaves in cover.values():
        for leaf in leaves:
            refs[leaf] = refs.get(leaf, 0) + 1
    for po in aig.pos():
        refs[lit_node(po)] = refs.get(lit_node(po), 0) + 1
    return refs


def _cover_depth(aig: Aig, cover: Dict[int, Tuple[int, ...]]) -> int:
    depth: Dict[int, int] = {0: 0}
    for p in aig.pis():
        depth[p] = 0
    order = aig.topological_order()
    for node in order:
        if node in cover:
            depth[node] = 1 + max((depth.get(leaf, 0)
                                   for leaf in cover[node]), default=0)
    return max((depth.get(lit_node(po), 0) for po in aig.pos()), default=0)
