"""Dynamic power estimation from switching activity.

Table III reports "No-clk Dyn. Pow." — dynamic power of the combinational
logic without the clock network.  Here: random-vector simulation of the
mapped netlist yields per-net toggle probabilities; dynamic power is the
activity-weighted sum of net capacitances (``P ∝ Σ α·C``, with voltage and
frequency normalized away since Table III is relative to baseline anyway).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.asic.place import Placement
from repro.asic.sta import net_loads
from repro.asic.techmap import Netlist


@dataclass
class PowerReport:
    """Power results for one netlist."""

    dynamic: float
    leakage: float
    activities: Dict[str, float]

    @property
    def total(self) -> float:
        """Dynamic plus leakage."""
        return self.dynamic + 0.01 * self.leakage


def simulate_netlist(netlist: Netlist, input_words: Dict[str, int]) -> Dict[str, int]:
    """64-way bit-parallel simulation of the gate netlist.

    ``input_words`` maps input net names to 64-bit pattern words; returns a
    word per net.  Used both for power activity and for the mapping
    verification tests.
    """
    mask = (1 << 64) - 1
    values: Dict[str, int] = {"tie0": 0, "tie1": mask}
    for net in netlist.inputs:
        values[net] = input_words.get(net, 0) & mask
    for gate in netlist.gates:  # topological emission order
        ins = [values[n] for n in gate.inputs]
        out = 0
        table = gate.cell.table
        for bit in range(64):
            row = 0
            for j, w in enumerate(ins):
                if (w >> bit) & 1:
                    row |= 1 << j
            if (table >> row) & 1:
                out |= 1 << bit
        values[gate.output] = out
    return values


def switching_activities(netlist: Netlist, num_rounds: int = 4,
                         rng: Optional[random.Random] = None) -> Dict[str, float]:
    """Per-net toggle probability from random simulation."""
    rng = rng or random.Random(0x90)
    toggles: Dict[str, int] = {}
    samples = 0
    previous: Optional[Dict[str, int]] = None
    for _ in range(num_rounds):
        words = {net: rng.getrandbits(64) for net in netlist.inputs}
        values = simulate_netlist(netlist, words)
        if previous is not None:
            for net, word in values.items():
                diff = word ^ previous.get(net, 0)
                toggles[net] = toggles.get(net, 0) + bin(diff).count("1")
        else:
            # Toggles within one word: adjacent pattern pairs.
            for net, word in values.items():
                diff = word ^ (word >> 1)
                toggles[net] = toggles.get(net, 0) + bin(diff & ((1 << 63) - 1)).count("1")
        previous = values
        samples += 63 if samples == 0 else 64
    return {net: count / max(1, samples) for net, count in toggles.items()}


def analyze_power(netlist: Netlist,
                  placement: Optional[Placement] = None,
                  num_rounds: int = 4) -> PowerReport:
    """Activity-weighted dynamic power plus cell leakage."""
    activities = switching_activities(netlist, num_rounds=num_rounds)
    loads = net_loads(netlist, placement)
    dynamic = 0.0
    for net, activity in activities.items():
        dynamic += activity * loads.get(net, 0.0)
    return PowerReport(dynamic=dynamic, leakage=netlist.leakage,
                       activities=activities)
