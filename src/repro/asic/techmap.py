"""Standard-cell technology mapping (AIG → gate netlist).

Cut-based structural mapping in the style of the LUT mapper, but with
library matching: each node's 3-feasible cuts are matched against the cell
library; cut selection minimizes area flow; inverters required by pin/output
phases are materialized (and shared per signal) when the netlist is emitted.
Every 2-feasible cut always matches (the library covers all 2-input
functions up to phases), so mapping never fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aig.aig import Aig, lit_node
from repro.aig.cuts import enumerate_cuts
from repro.asic.celllib import Cell, CellLibrary, Match


@dataclass
class Gate:
    """A cell instance: output net, cell, and input nets."""

    name: str
    cell: Cell
    inputs: List[str]
    output: str


@dataclass
class Netlist:
    """A mapped gate-level netlist."""

    name: str
    gates: List[Gate] = field(default_factory=list)
    inputs: List[str] = field(default_factory=list)
    outputs: List[Tuple[str, str]] = field(default_factory=list)  # (port, net)

    @property
    def area(self) -> float:
        """Total cell area."""
        return sum(g.cell.area for g in self.gates)

    @property
    def leakage(self) -> float:
        """Total leakage."""
        return sum(g.cell.leakage for g in self.gates)

    def fanout_map(self) -> Dict[str, List[Gate]]:
        """Net → gates reading it."""
        readers: Dict[str, List[Gate]] = {}
        for gate in self.gates:
            for net in gate.inputs:
                readers.setdefault(net, []).append(gate)
        return readers

    def driver_map(self) -> Dict[str, Gate]:
        """Net → driving gate (primary inputs have no driver)."""
        return {g.output: g for g in self.gates}


def tech_map(aig: Aig, library: Optional[CellLibrary] = None,
             k: int = 3) -> Netlist:
    """Map *aig* onto the library; returns a :class:`Netlist`.

    Net naming: ``n<node>`` for positive node signals, ``n<node>_b`` for
    complemented ones, ``pi<i>``/PI names for inputs.
    """
    library = library or CellLibrary()
    cuts = enumerate_cuts(aig, k=k, cut_limit=8, compute_tables=True)
    order = aig.topological_order()
    refs: Dict[int, int] = {}
    for n in order:
        for f in aig.fanins(n):
            refs[lit_node(f)] = refs.get(lit_node(f), 0) + 1
    for po in aig.pos():
        refs[lit_node(po)] = refs.get(lit_node(po), 0) + 1

    best: Dict[int, Tuple[Match, Tuple[int, ...]]] = {}
    area_flow: Dict[int, float] = {0: 0.0}
    for p in aig.pis():
        area_flow[p] = 0.0
    for node in order:
        best_key = None
        chosen = None
        for cut in cuts[node]:
            if len(cut.leaves) == 1 and cut.leaves[0] == node:
                continue
            if cut.table is None:
                continue
            match = library.match(cut.table, len(cut.leaves))
            if match is None:
                continue
            flow = match.cell.area + 0.45 * match.num_inverters
            for leaf in cut.leaves:
                flow += area_flow[leaf] / max(1, refs.get(leaf, 1))
            if best_key is None or flow < best_key:
                best_key = flow
                chosen = (match, cut.leaves)
        if chosen is None:  # pragma: no cover - library covers all 2-cuts
            raise RuntimeError(f"unmappable node {node}")
        best[node] = chosen
        area_flow[node] = best_key

    return _emit(aig, best, library)


def _emit(aig: Aig, best: Dict[int, Tuple[Match, Tuple[int, ...]]],
          library: CellLibrary) -> Netlist:
    from repro.aig.aig import lit_is_compl
    netlist = Netlist(aig.name)
    net_of: Dict[Tuple[int, bool], str] = {}
    counter = [0]

    for i, p in enumerate(aig.pis()):
        name = aig.pi_name(i)
        netlist.inputs.append(name)
        net_of[(p, False)] = name

    const_emitted: Dict[bool, str] = {}

    def const_net(value: bool) -> str:
        if value not in const_emitted:
            # Model constants as a tied cell: an XOR2/XNOR2 of a PI with
            # itself would be wasteful; use a named tie net instead.
            const_emitted[value] = "tie1" if value else "tie0"
        return const_emitted[value]

    import sys
    if sys.getrecursionlimit() < 100_000:
        sys.setrecursionlimit(100_000)

    def signal(node: int, compl: bool) -> str:
        if node == 0:
            return const_net(compl)  # const0 complemented = const1
        key = (node, compl)
        if key in net_of:
            return net_of[key]
        if (node, not compl) not in net_of and aig.is_and(node):
            # Emit the cell; it produces the phase its match yields natively.
            match, leaves = best[node]
            pins = []
            for j in range(match.cell.num_inputs):
                leaf = leaves[match.pin_leaf[j]]
                pins.append(signal(leaf, match.pin_compl[j]))
            raw_phase = match.output_compl
            raw = f"n{node}_b" if raw_phase else f"n{node}"
            counter[0] += 1
            netlist.gates.append(Gate(f"g{counter[0]}", match.cell, pins, raw))
            net_of[(node, raw_phase)] = raw
            if raw_phase == compl:
                return raw
        # The opposite phase exists: add one shared inverter.
        other = net_of[(node, not compl)]
        out = f"n{node}_b" if compl else f"n{node}"
        counter[0] += 1
        netlist.gates.append(Gate(f"inv{counter[0]}", library.inverter,
                                  [other], out))
        net_of[key] = out
        return out

    # Emit cones for mapped roots reachable from POs.
    for i, po in enumerate(aig.pos()):
        net = signal(lit_node(po), lit_is_compl(po))
        netlist.outputs.append((aig.po_name(i), net))
    return netlist
