"""Synthetic "industrial ASIC" designs for the Table III experiment.

The paper evaluates on "33 state-of-the-art ASICs, coming from major
electronics industries" under NDA.  As the substitution (DESIGN.md §3), we
generate 33 deterministic, seeded designs mixing the structures industrial
netlists are made of — datapath islands (adders, multipliers, comparators,
shifters), control blocks (arbiters, priority logic, FSM-like functions),
and glue/random logic — with cross-connections so optimization opportunities
span block boundaries.  Each design carries a clock-period target set
slightly below its easy critical path so that negative slack exists for the
flows to fight over (matching Table III's WNS/TNS columns).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.aig.aig import Aig, lit_not
from repro.aig.compose import (
    less_than,
    max_word,
    multiplier,
    mux_word,
    popcount,
    ripple_adder,
    subtractor,
)
from repro.bench.control import _priority_chain, control_function


@dataclass
class IndustrialDesign:
    """One synthetic ASIC benchmark."""

    name: str
    aig: Aig
    clock_period: float


def generate_design(index: int) -> Aig:
    """Deterministically generate design *index* (0-based)."""
    rng = random.Random(0xA51C + index)
    aig = Aig(f"asic{index:02d}")
    width = rng.choice([6, 8, 10])
    pool: List[int] = list(aig.add_pis(4 * width, "in"))

    def take(n: int) -> List[int]:
        return [pool[rng.randrange(len(pool))] for _ in range(n)]

    num_blocks = rng.randint(3, 5)
    outputs: List[int] = []
    for b in range(num_blocks):
        kind = rng.choice(["adder", "mult", "cmp", "arb", "ctl", "mux", "pop"])
        if kind == "adder":
            s, c = ripple_adder(aig, take(width), take(width))
            pool += s
            outputs += s[-2:] + [c]
        elif kind == "mult":
            w = max(3, width // 2)
            p = multiplier(aig, take(w), take(w))
            pool += p
            outputs += p[-3:]
        elif kind == "cmp":
            a, bb = take(width), take(width)
            lt = less_than(aig, a, bb)
            diff, borrow = subtractor(aig, a, bb)
            pool += diff + [lt]
            outputs += [lt, borrow]
        elif kind == "arb":
            req = take(width)
            grants = _priority_chain(aig, req)
            pool += grants
            outputs += grants[: max(2, width // 2)]
        elif kind == "ctl":
            n_in = rng.randint(6, 12)
            n_out = rng.randint(4, 10)
            block = control_function(f"ctl{b}", n_in, n_out,
                                     seed=rng.randrange(1 << 30))
            # Inline the control block with pool-driven inputs.
            mapping = {}
            ins = take(n_in)
            for pi_node, src in zip(block.pis(), ins):
                mapping[pi_node] = src
            from repro.aig.aig import lit_is_compl, lit_node, lit_notcond
            for n in block.topological_order():
                f0, f1 = block.fanins(n)
                x = lit_notcond(mapping[lit_node(f0)], lit_is_compl(f0))
                y = lit_notcond(mapping[lit_node(f1)], lit_is_compl(f1))
                mapping[n] = aig.add_and(x, y)
            for po in block.pos():
                from repro.aig.aig import lit_notcond as lnc
                literal = lnc(mapping[lit_node(po)], lit_is_compl(po))
                pool.append(literal)
                outputs.append(literal)
        elif kind == "mux":
            sel = pool[rng.randrange(len(pool))]
            word = mux_word(aig, sel, take(width), take(width))
            pool += word
            outputs += word[:2]
        else:  # pop
            count = popcount(aig, take(width + 3))
            pool += count
            outputs += count[-2:]
    # Final output selection: a deterministic subset plus parity guards.
    rng.shuffle(outputs)
    for i, literal in enumerate(outputs[: max(8, len(outputs) // 2)]):
        aig.add_po(literal, f"out{i}")
    aig.add_po(aig.add_xor_multi(outputs[:7]), "parity")
    return aig.cleanup()


def industrial_designs(count: int = 33,
                       clock_margin: float = 0.97) -> List[IndustrialDesign]:
    """The 33-design suite with per-design clock targets.

    The clock period is ``clock_margin ×`` the critical path of a quickly
    mapped baseline, so baseline runs start slightly violated — as tight
    industrial timing closures do.
    """
    from repro.asic.sta import analyze_timing
    from repro.asic.techmap import tech_map
    designs: List[IndustrialDesign] = []
    for index in range(count):
        aig = generate_design(index)
        netlist = tech_map(aig)
        timing = analyze_timing(netlist, clock_period=1e9)
        period = timing.critical_path_delay * clock_margin
        designs.append(IndustrialDesign(aig.name, aig, period))
    return designs
