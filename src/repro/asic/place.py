"""Synthetic placement and wire-load model.

The paper reports post-place&route metrics from a commercial flow; here a
deterministic placement stand-in provides the physical effects that matter
for the Table III comparison: wire capacitance growing with fanout and with
die span, plus a congestion estimate.  Cells are laid out level-by-level on
a square grid (a "topological placement"), which rewards the logic-depth and
net-count discipline the paper enforces during synthesis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.asic.techmap import Gate, Netlist

#: Wire capacitance per unit estimated length (normalized units).
WIRE_CAP_PER_UNIT = 0.35
#: Base fanout capacitance exponent of the wire-load model.
FANOUT_EXPONENT = 0.8


@dataclass
class Placement:
    """Grid positions per gate plus summary statistics."""

    positions: Dict[str, Tuple[float, float]]
    die_side: float
    total_wirelength: float
    congestion: float


def place(netlist: Netlist, utilization: float = 0.7) -> Placement:
    """Deterministic topological placement on a square die.

    Gates are ordered by logic level and snake-packed across rows; the die
    side derives from total area and target utilization.  Wirelength is
    half-perimeter over each net's pins.
    """
    area = max(netlist.area, 1.0)
    die_side = math.sqrt(area / max(0.1, utilization))
    gates = netlist.gates
    if not gates:
        return Placement({}, die_side, 0.0, 0.0)
    columns = max(1, int(math.sqrt(len(gates))))
    positions: Dict[str, Tuple[float, float]] = {}
    for i, gate in enumerate(gates):
        row, col = divmod(i, columns)
        if row % 2:
            col = columns - 1 - col  # snake rows keep neighbours close
        x = (col + 0.5) * die_side / columns
        y = (row + 0.5) * die_side / max(1, (len(gates) + columns - 1) // columns)
        positions[gate.name] = (x, y)
    total_wl = _total_wirelength(netlist, positions)
    routing_supply = 2.0 * die_side * die_side
    congestion = total_wl / max(routing_supply, 1e-9)
    return Placement(positions=positions, die_side=die_side,
                     total_wirelength=total_wl, congestion=congestion)


def _total_wirelength(netlist: Netlist,
                      positions: Dict[str, Tuple[float, float]]) -> float:
    drivers = netlist.driver_map()
    readers = netlist.fanout_map()
    total = 0.0
    for net, gates in readers.items():
        pins: List[Tuple[float, float]] = []
        driver = drivers.get(net)
        if driver is not None and driver.name in positions:
            pins.append(positions[driver.name])
        pins.extend(positions[g.name] for g in gates if g.name in positions)
        if len(pins) >= 2:
            xs = [p[0] for p in pins]
            ys = [p[1] for p in pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def wire_capacitance(net: str, fanout: int,
                     placement: Optional[Placement] = None) -> float:
    """Fanout-based wire capacitance, scaled by die span when placed."""
    span = placement.die_side / 10.0 if placement is not None else 1.0
    return WIRE_CAP_PER_UNIT * span * (max(1, fanout) ** FANOUT_EXPONENT)
