"""Synthetic ASIC implementation substrate (Table III)."""

from repro.asic.celllib import Cell, CellLibrary, Match
from repro.asic.designs import IndustrialDesign, generate_design, industrial_designs
from repro.asic.flow import ImplementationResult, baseline_flow, proposed_flow
from repro.asic.place import Placement, place, wire_capacitance
from repro.asic.power import PowerReport, analyze_power, simulate_netlist, switching_activities
from repro.asic.sta import TimingReport, analyze_timing, net_loads
from repro.asic.techmap import Gate, Netlist, tech_map

__all__ = [
    "Cell", "CellLibrary", "Match",
    "tech_map", "Gate", "Netlist",
    "place", "Placement", "wire_capacitance",
    "analyze_timing", "TimingReport", "net_loads",
    "analyze_power", "PowerReport", "simulate_netlist", "switching_activities",
    "industrial_designs", "IndustrialDesign", "generate_design",
    "baseline_flow", "proposed_flow", "ImplementationResult",
]
