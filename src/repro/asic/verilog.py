"""Structural Verilog export of mapped netlists.

The ASIC flow's deliverable in practice is a gate-level netlist; this writer
emits the mapped design as structural Verilog over the generic cell library
(one module per design, one instance per gate), plus the library itself as
behavioural primitives so the output is simulable by any Verilog tool.
"""

from __future__ import annotations

import io
from typing import Set, TextIO, Union

from repro.asic.celllib import Cell, CellLibrary
from repro.asic.techmap import Netlist
from repro.tt.truthtable import TruthTable
from repro.tt.isop import isop_table
from repro.sop.sop import Sop
from repro.sop.factor import factor


def _verilog_expression(cell: Cell) -> str:
    """Behavioural expression of a cell function over inputs a, b, c, ..."""
    names = [chr(ord("a") + i) for i in range(cell.num_inputs)]
    table = TruthTable(cell.table, cell.num_inputs)
    if table.is_const0():
        return "1'b0"
    if table.is_const1():
        return "1'b1"
    form = factor(Sop(isop_table(table)))
    return _form_to_verilog(form, names)


def _form_to_verilog(form, names) -> str:
    kind = form[0]
    if kind == "const":
        return "1'b1" if form[1] else "1'b0"
    if kind == "lit":
        name = names[form[1]]
        return name if form[2] else f"~{name}"
    operator = " & " if kind == "and" else " | "
    parts = []
    for child in form[1]:
        text = _form_to_verilog(child, names)
        if child[0] in ("and", "or") and child[0] != kind:
            text = f"({text})"
        parts.append(text)
    return operator.join(parts)


def write_library(library: CellLibrary, target: TextIO) -> None:
    """Emit behavioural modules for every cell of the library."""
    for cell in library.cells:
        ports = [chr(ord("a") + i) for i in range(cell.num_inputs)]
        target.write(f"module {cell.name} ({', '.join(ports)}, y);\n")
        for port in ports:
            target.write(f"  input {port};\n")
        target.write("  output y;\n")
        target.write(f"  assign y = {_verilog_expression(cell)};\n")
        target.write("endmodule\n\n")


def write_verilog(netlist: Netlist, target: Union[str, TextIO],
                  library: CellLibrary = None,
                  include_library: bool = True) -> None:
    """Write *netlist* as structural Verilog.

    With ``include_library`` the generic cells are emitted as behavioural
    modules first, making the file self-contained.
    """
    if isinstance(target, str):
        with open(target, "w", encoding="ascii") as handle:
            write_verilog(netlist, handle, library, include_library)
            return
    if include_library:
        write_library(library or CellLibrary(), target)
    module = _sanitize(netlist.name)
    inputs = [_sanitize(n) for n in netlist.inputs]
    outputs = [_sanitize(port) for port, _net in netlist.outputs]
    ports = inputs + outputs
    target.write(f"module {module} ({', '.join(ports)});\n")
    for name in inputs:
        target.write(f"  input {name};\n")
    for name in outputs:
        target.write(f"  output {name};\n")
    wires: Set[str] = set()
    for gate in netlist.gates:
        wires.add(gate.output)
        wires.update(gate.inputs)
    wires -= set(netlist.inputs)
    uses_ties = {"tie0", "tie1"} & wires
    for wire in sorted(wires):
        target.write(f"  wire {_sanitize(wire)};\n")
    if "tie0" in uses_ties:
        target.write("  assign tie0 = 1'b0;\n")
    if "tie1" in uses_ties:
        target.write("  assign tie1 = 1'b1;\n")
    for gate in netlist.gates:
        pins = [f".{chr(ord('a') + i)}({_sanitize(net)})"
                for i, net in enumerate(gate.inputs)]
        pins.append(f".y({_sanitize(gate.output)})")
        target.write(f"  {gate.cell.name} {gate.name} ({', '.join(pins)});\n")
    for port, net in netlist.outputs:
        target.write(f"  assign {_sanitize(port)} = {_sanitize(net)};\n")
    target.write("endmodule\n")


def write_verilog_string(netlist: Netlist,
                         library: CellLibrary = None,
                         include_library: bool = True) -> str:
    """Serialize to a Verilog string."""
    buffer = io.StringIO()
    write_verilog(netlist, buffer, library, include_library)
    return buffer.getvalue()


def _sanitize(name: str) -> str:
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if out and out[0].isdigit():
        out = "n" + out
    return out or "unnamed"
