"""Standard-cell library model for the ASIC flow (Table III substrate).

The paper embeds SBM in a commercial ASIC flow; its cell libraries are
proprietary, so we define a generic technology with the usual combinational
cells (INV/BUF, N/AND/OR 2-3, XOR/XNOR, AOI/OAI, MUX, MAJ).  Units are
normalized: area in equivalent NAND2s, delay in FO4-ish units with a linear
load model ``delay = intrinsic + resistance × load``, capacitance per input
pin, and leakage per cell.

Matching tables are precomputed: for every cell, every input permutation and
phase assignment of its function (and the complement) is indexed, so the
tech mapper can look up any cut function and learn which cell realizes it
and which inputs/output need inverters.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Tuple

from repro.tt.truthtable import TruthTable


@dataclass(frozen=True)
class Cell:
    """One combinational standard cell."""

    name: str
    num_inputs: int
    table: int           # truth table bits over num_inputs variables
    area: float
    intrinsic: float     # intrinsic delay
    resistance: float    # delay per unit load
    input_cap: float
    leakage: float


@dataclass(frozen=True)
class Match:
    """How a cut function maps onto a cell.

    ``pin_leaf[j]`` is the cut-leaf index feeding cell input pin *j* and
    ``pin_compl[j]`` whether that pin takes the complemented leaf signal;
    ``output_compl`` means the cell output must be inverted to produce the
    cut function.
    """

    cell: Cell
    pin_leaf: Tuple[int, ...]
    pin_compl: Tuple[bool, ...]
    output_compl: bool

    @property
    def num_inverters(self) -> int:
        """Inverters this match needs (input pins plus output)."""
        return sum(self.pin_compl) + (1 if self.output_compl else 0)


def _tt(num_vars: int, expr) -> int:
    """Truth table bits of a Python lambda over *num_vars* inputs."""
    bits = 0
    for row in range(1 << num_vars):
        args = [bool((row >> i) & 1) for i in range(num_vars)]
        if expr(*args):
            bits |= 1 << row
    return bits


def default_cells() -> List[Cell]:
    """A representative generic library (areas/delays in normalized units)."""
    return [
        Cell("INV", 1, _tt(1, lambda a: not a), 0.67, 0.020, 0.8, 1.0, 0.4),
        Cell("BUF", 1, _tt(1, lambda a: a), 1.00, 0.035, 0.5, 1.0, 0.6),
        Cell("NAND2", 2, _tt(2, lambda a, b: not (a and b)), 1.00, 0.030, 1.0, 1.0, 0.8),
        Cell("NOR2", 2, _tt(2, lambda a, b: not (a or b)), 1.00, 0.035, 1.2, 1.0, 0.8),
        Cell("AND2", 2, _tt(2, lambda a, b: a and b), 1.33, 0.050, 1.0, 1.0, 1.0),
        Cell("OR2", 2, _tt(2, lambda a, b: a or b), 1.33, 0.055, 1.1, 1.0, 1.0),
        Cell("XOR2", 2, _tt(2, lambda a, b: a != b), 2.00, 0.065, 1.3, 1.5, 1.6),
        Cell("XNOR2", 2, _tt(2, lambda a, b: a == b), 2.00, 0.065, 1.3, 1.5, 1.6),
        Cell("NAND3", 3, _tt(3, lambda a, b, c: not (a and b and c)), 1.33, 0.040, 1.3, 1.0, 1.1),
        Cell("NOR3", 3, _tt(3, lambda a, b, c: not (a or b or c)), 1.33, 0.050, 1.6, 1.0, 1.1),
        Cell("AND3", 3, _tt(3, lambda a, b, c: a and b and c), 1.67, 0.060, 1.2, 1.0, 1.3),
        Cell("OR3", 3, _tt(3, lambda a, b, c: a or b or c), 1.67, 0.065, 1.3, 1.0, 1.3),
        Cell("AOI21", 3, _tt(3, lambda a, b, c: not ((a and b) or c)), 1.33, 0.045, 1.4, 1.0, 1.0),
        Cell("OAI21", 3, _tt(3, lambda a, b, c: not ((a or b) and c)), 1.33, 0.045, 1.4, 1.0, 1.0),
        Cell("MUX2", 3, _tt(3, lambda s, d1, d0: d1 if s else d0), 2.33, 0.070, 1.4, 1.2, 1.8),
        Cell("MAJ3", 3, _tt(3, lambda a, b, c: (a + b + c) >= 2), 2.67, 0.080, 1.5, 1.2, 2.0),
    ]


class CellLibrary:
    """A matching-indexed cell library."""

    def __init__(self, cells: Optional[List[Cell]] = None) -> None:
        self.cells = cells if cells is not None else default_cells()
        self._matches: Dict[Tuple[int, int], Match] = {}
        self._index()

    def _index(self) -> None:
        for cell in self.cells:
            n = cell.num_inputs
            base = TruthTable(cell.table, n)
            for perm in permutations(range(n)):
                # After permute(perm), leaf variable i drives cell pin
                # perm[i]; invert to get the pin → leaf binding.
                pin_leaf = [0] * n
                for leaf, pin in enumerate(perm):
                    pin_leaf[pin] = leaf
                permuted = base.permute(perm)
                for phase in range(1 << n):
                    variant = permuted
                    for v in range(n):
                        if (phase >> v) & 1:
                            variant = variant.flip_variable(v)
                    pin_compl = tuple(bool((phase >> pin_leaf[j]) & 1)
                                      for j in range(n))
                    for out_compl in (False, True):
                        bits = (~variant).bits if out_compl else variant.bits
                        key = (bits, n)
                        candidate = Match(cell=cell, pin_leaf=tuple(pin_leaf),
                                          pin_compl=pin_compl,
                                          output_compl=out_compl)
                        incumbent = self._matches.get(key)
                        if (incumbent is None
                                or self._cost(candidate) < self._cost(incumbent)):
                            self._matches[key] = candidate
        # Wire-through "matches" for projection functions are handled by the
        # mapper directly (no cell needed).

    @staticmethod
    def _cost(match: Match) -> float:
        """Static preference: cell area plus amortized inverter cost."""
        return match.cell.area + 0.45 * match.num_inverters

    def match(self, table_bits: int, num_vars: int) -> Optional[Match]:
        """Best match for a cut function, or None."""
        return self._matches.get((table_bits, num_vars))

    def cell_by_name(self, name: str) -> Cell:
        """Lookup a cell by name (raises ``KeyError`` if absent)."""
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise KeyError(name)

    @property
    def inverter(self) -> Cell:
        """The library's inverter."""
        return self.cell_by_name("INV")
