"""Full ASIC implementation flows: baseline vs SBM-enhanced (Table III).

``baseline_flow`` runs conventional logic synthesis (the algebraic/structural
script) through tech mapping, placement, STA and power analysis;
``proposed_flow`` inserts the SBM Boolean resynthesis between synthesis and
mapping — exactly where the paper's "logic structuring" calls Boolean
methods.  Both flows verify their result against the input with the SAT
equivalence checker (the paper: "all benchmarks are verified with an
industrial formal equivalence checking flow").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.aig.aig import Aig
from repro.asic.place import place
from repro.asic.power import analyze_power
from repro.asic.sta import analyze_timing
from repro.asic.techmap import Netlist, tech_map
from repro.campaign.cache import cached_sbm_flow
from repro.opt.scripts import resyn2rs
from repro.sat.equivalence import check_equivalence
from repro.sbm.config import FlowConfig


@dataclass
class ImplementationResult:
    """Post-"place & route" metrics of one flow on one design."""

    design: str
    flow: str
    combinational_area: float
    dynamic_power: float
    wns: float
    tns: float
    runtime_s: float
    gates: int
    verified: bool
    netlist: Optional[Netlist] = None


def baseline_flow(aig: Aig, clock_period: float, verify: bool = True,
                  keep_netlist: bool = False) -> ImplementationResult:
    """Conventional synthesis → map → place → STA/power."""
    start = time.time()
    optimized = resyn2rs(aig.cleanup(), max_iterations=1)
    result = _implement(aig, optimized, clock_period, "baseline",
                        time.time() - start, verify, keep_netlist)
    return result


def proposed_flow(aig: Aig, clock_period: float, verify: bool = True,
                  keep_netlist: bool = False,
                  sbm_config: Optional[FlowConfig] = None) -> ImplementationResult:
    """Baseline synthesis plus the SBM Boolean resynthesis script."""
    start = time.time()
    optimized = resyn2rs(aig.cleanup(), max_iterations=1)
    config = sbm_config or FlowConfig(iterations=1)
    # Routes through the campaign result cache when one is active.
    optimized, _stats, _hit, _key = cached_sbm_flow(optimized, config)
    return _implement(aig, optimized, clock_period, "proposed",
                      time.time() - start, verify, keep_netlist)


def _implement(original: Aig, optimized: Aig, clock_period: float,
               flow_name: str, synth_time: float, verify: bool,
               keep_netlist: bool) -> ImplementationResult:
    start = time.time()
    netlist = tech_map(optimized)
    placement = place(netlist)
    timing = analyze_timing(netlist, clock_period, placement)
    power = analyze_power(netlist, placement)
    backend_time = time.time() - start
    verified = True
    if verify:
        ok, _cex = check_equivalence(original, optimized)
        verified = ok
    return ImplementationResult(
        design=original.name,
        flow=flow_name,
        combinational_area=netlist.area,
        dynamic_power=power.dynamic,
        wns=timing.wns,
        tns=timing.tns,
        runtime_s=synth_time + backend_time,
        gates=len(netlist.gates),
        verified=verified,
        netlist=netlist if keep_netlist else None,
    )
