"""Static timing analysis over mapped netlists.

A linear-delay cell model (``delay = intrinsic + resistance × load``) with a
fanout-based wire-load model provides arrival times, required times, slacks,
and the two summary metrics of Table III: WNS (worst negative slack) and TNS
(total negative slack over all endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.asic.place import Placement, wire_capacitance
from repro.asic.techmap import Netlist


@dataclass
class TimingReport:
    """STA results for one netlist at one clock period."""

    clock_period: float
    arrival: Dict[str, float]
    slack_by_output: Dict[str, float]
    wns: float
    tns: float
    critical_path_delay: float

    @property
    def met(self) -> bool:
        """True when every endpoint meets the clock."""
        return self.wns >= 0.0


def net_loads(netlist: Netlist,
              placement: Optional[Placement] = None) -> Dict[str, float]:
    """Capacitive load per net: fanin pin caps plus wire capacitance."""
    loads: Dict[str, float] = {}
    readers = netlist.fanout_map()
    output_nets = {net for _port, net in netlist.outputs}
    for net, gates in readers.items():
        pin_cap = sum(g.cell.input_cap for g in gates)
        fanout = len(gates) + (1 if net in output_nets else 0)
        loads[net] = pin_cap + wire_capacitance(net, fanout, placement)
    for net in output_nets:
        if net not in loads:
            loads[net] = wire_capacitance(net, 1, placement) + 1.0
    return loads


def analyze_timing(netlist: Netlist, clock_period: float,
                   placement: Optional[Placement] = None) -> TimingReport:
    """Forward arrival propagation + endpoint slack summary."""
    loads = net_loads(netlist, placement)
    arrival: Dict[str, float] = {net: 0.0 for net in netlist.inputs}
    arrival["tie0"] = 0.0
    arrival["tie1"] = 0.0
    for gate in netlist.gates:  # emission order is topological
        at = 0.0
        for net in gate.inputs:
            at = max(at, arrival.get(net, 0.0))
        load = loads.get(gate.output, 0.0)
        arrival[gate.output] = at + gate.cell.intrinsic + \
            gate.cell.resistance * 0.01 * load
    slack_by_output: Dict[str, float] = {}
    wns = 0.0
    tns = 0.0
    critical = 0.0
    for port, net in netlist.outputs:
        at = arrival.get(net, 0.0)
        critical = max(critical, at)
        slack = clock_period - at
        slack_by_output[port] = slack
        if slack < 0:
            tns += slack
            wns = min(wns, slack)
    return TimingReport(clock_period=clock_period, arrival=arrival,
                        slack_by_output=slack_by_output, wns=wns, tns=tns,
                        critical_path_delay=critical)
