#!/usr/bin/env python3
"""Regression-gated benchmark harness for the ``repro.hotpath`` layer.

Runs the EPFL-subset SBM flow plus per-engine microbenchmarks, measuring
every engine **twice in-process** — once on the optimized hot path and
once with :mod:`repro.hotpath` disabled (the bit-identical reference
path) — and writes ``BENCH_hotpath.json`` with wall times, speedups, and
structural network checksums.

Because both paths run in the same process on the same machine, the
*speedup ratio* is machine-independent in a way absolute seconds are
not; the regression gate (``--check``) therefore compares current ratios
against the ratios recorded in ``results/perf_baseline.txt`` and fails
when any engine lost more than ``--tolerance`` (default 25%) of its
baselined speedup, or when a flow checksum diverges from the baseline
(the hot path must stay bit-identical, not just fast).

Usage:
    python scripts/bench_hotpath.py --quick          # CI smoke (~2 min)
    python scripts/bench_hotpath.py                  # full EPFL subset
    python scripts/bench_hotpath.py --quick --check  # gate vs baseline
    python scripts/bench_hotpath.py --write-baseline # refresh baseline
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro import hotpath                                     # noqa: E402
from repro.aig.cuts import enumerate_cuts                     # noqa: E402
from repro.aig.simprogram import pack_rounds, sim_program, wide_mask  # noqa: E402
from repro.aig.simulate import simulate_words                 # noqa: E402
from repro.bdd import pool as bdd_pool                        # noqa: E402
from repro.bdd.manager import BddManager                      # noqa: E402
from repro.bench.registry import get_benchmark                # noqa: E402
from repro.sbm.config import FlowConfig                       # noqa: E402
from repro.sbm.flow import sbm_flow                           # noqa: E402
from repro.tt.npn import npn_canonical                        # noqa: E402
from repro.tt.truthtable import TruthTable                    # noqa: E402

BASELINE_PATH = os.path.join(ROOT, "results", "perf_baseline.txt")
REPORT_PATH = os.path.join(ROOT, "BENCH_hotpath.json")

QUICK_FLOWS = ["router"]
FULL_FLOWS = ["router", "i2c", "cavlc", "priority"]


def checksum(aig) -> str:
    """Structural sha256 over the remapped topological order (16 hex)."""
    h = hashlib.sha256()
    h.update(f"{aig.num_pis}/{aig.num_pos}/".encode())
    order = aig.topological_order()
    remap = {0: 0}
    for i, p in enumerate(aig.pis()):
        remap[p] = i + 1
    for n in order:
        remap[n] = len(remap)
    for n in order:
        f0, f1 = aig.fanins(n)
        h.update(f"{remap[f0 >> 1]}.{f0 & 1},"
                 f"{remap[f1 >> 1]}.{f1 & 1};".encode())
    for po in aig.pos():
        h.update(f"o{remap[po >> 1]}.{po & 1};".encode())
    return h.hexdigest()[:16]


# -- engine microbenchmarks ---------------------------------------------------
#
# Each returns (callable, payload-check) pairs run under both hot-path
# states; payloads must be equal across states (bit-identity spot check).

def bench_sim_multiround(bench: str, rounds: int):
    """Multi-round 64-bit simulation (the SAT-sweep / guard pattern)."""
    aig = get_benchmark(bench, scaled=True)

    def run():
        rng = random.Random(1)
        pattern_rounds = [[rng.getrandbits(64) for _ in range(aig.num_pis)]
                          for _ in range(rounds)]
        if hotpath.enabled():
            program = sim_program(aig)
            packed = pack_rounds(pattern_rounds)
            values = program.run(packed, wide_mask(rounds))
            out = 0
            mask64 = (1 << 64) - 1
            for r in range(rounds):
                shift = 64 * r
                for node, _c in program.pos:
                    out ^= (values[node] >> shift) & mask64
            return out
        out = 0
        for words in pattern_rounds:
            values = simulate_words(aig, words)
            for po in aig.pos():
                out ^= values[po >> 1]
        return out

    return run


def bench_npn(lookups: int):
    """Cut-function canonicalization with realistic repetition."""
    rng = random.Random(2)
    tables = [rng.getrandbits(16) for _ in range(300)]
    seq = [tables[rng.randrange(300)] for _ in range(lookups)]

    def run():
        acc = 0
        for bits in seq:
            canon, _t = npn_canonical(TruthTable(bits, 4))
            acc ^= canon.bits
        return acc

    return run


def bench_cuts(bench: str):
    """4-feasible cut enumeration with truth tables."""
    aig = get_benchmark(bench, scaled=True)

    def run():
        cuts = enumerate_cuts(aig, k=4, cut_limit=8, compute_tables=True)
        return sum(len(v) for v in cuts.values())

    return run


def bench_bdd(num_vars: int, ops: int):
    """Random AND/OR/XOR build-up, the SBM window workload shape."""

    def run():
        mgr = BddManager(num_vars)
        nodes = [mgr.var(i) for i in range(num_vars)]
        rng = random.Random(7)
        acc = 0
        for _ in range(ops):
            a, b = rng.choice(nodes), rng.choice(nodes)
            op = rng.randrange(3)
            if op == 0:
                n = mgr.apply_and(a, b)
            elif op == 1:
                n = mgr.apply_xor(a, b)
            else:
                n = mgr.apply_or(a, b)
            nodes.append(n)
            acc ^= n
            if len(nodes) > 600:
                del nodes[:200]
        return acc

    return run


def bench_simresub(bench: str):
    """Simulation-guided resubstitution: signature filter + budgeted SAT.

    The hot path compiles the pattern-store simulation into a
    ``SimProgram``; the reference path interprets it round by round.  The
    payload (engine counters + structural checksum of the optimized
    network) must be bit-identical across both.
    """
    from repro.sbm.config import SimresubConfig
    from repro.sbm.simresub import simresub_pass

    def run():
        aig = get_benchmark(bench, scaled=True)
        stats = simresub_pass(aig, SimresubConfig())
        return (stats.candidates_proposed, stats.candidates_validated,
                stats.candidates_refuted, stats.cex_patterns, stats.rewrites,
                stats.gain, checksum(aig.cleanup()))

    return run


def measure(run, repeats: int = 1):
    """Best-of-*repeats* wall time plus the payload for identity checks."""
    best = None
    payload = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        payload = run()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, payload


def run_engines(quick: bool):
    if quick:
        engines = {
            "sim_multiround": bench_sim_multiround("i2c", 16),
            "npn": bench_npn(1000),
            "cuts": bench_cuts("i2c"),
            "bdd": bench_bdd(12, 800),
            "simresub": bench_simresub("i2c"),
        }
    else:
        engines = {
            "sim_multiround": bench_sim_multiround("i2c", 16),
            "npn": bench_npn(2000),
            "cuts": bench_cuts("i2c"),
            "bdd": bench_bdd(14, 4000),
            "simresub": bench_simresub("priority"),
        }
    results = {}
    for name, run in engines.items():
        hot_s, hot_payload = measure(run)
        with hotpath.disabled():
            ref_s, ref_payload = measure(run)
        if hot_payload != ref_payload:
            raise SystemExit(f"BIT-IDENTITY VIOLATION in engine {name!r}: "
                             f"hot {hot_payload!r} != ref {ref_payload!r}")
        results[name] = {
            "hot_s": round(hot_s, 4),
            "ref_s": round(ref_s, 4),
            "speedup": round(ref_s / hot_s, 2) if hot_s > 0 else None,
        }
        print(f"  {name:16s} ref {ref_s:8.3f}s  hot {hot_s:8.3f}s  "
              f"({ref_s / hot_s:5.2f}x)", flush=True)
    return results


def run_flows(names, with_ref: bool):
    results = {}
    for name in names:
        aig = get_benchmark(name, scaled=True)
        t0 = time.perf_counter()
        res, _stats = sbm_flow(aig, FlowConfig(verify_each_step=True))
        hot_s = time.perf_counter() - t0
        entry = {
            "wall_s": round(hot_s, 3),
            "size": res.num_ands,
            "depth": res.depth,
            "checksum": checksum(res),
        }
        if with_ref:
            bdd_pool.clear()
            with hotpath.disabled():
                aig = get_benchmark(name, scaled=True)
                t0 = time.perf_counter()
                ref, _stats = sbm_flow(aig, FlowConfig(verify_each_step=True))
                ref_s = time.perf_counter() - t0
            if checksum(ref) != entry["checksum"]:
                raise SystemExit(f"BIT-IDENTITY VIOLATION in flow {name!r}: "
                                 f"hot checksum {entry['checksum']} != "
                                 f"ref {checksum(ref)}")
            entry["ref_s"] = round(ref_s, 3)
            entry["speedup"] = round(ref_s / hot_s, 2)
        results[name] = entry
        print(f"  flow {name:10s} hot {hot_s:8.1f}s  size {res.num_ands}  "
              f"checksum {entry['checksum']}"
              + (f"  ref {entry['ref_s']:.1f}s ({entry['speedup']}x)"
                 if with_ref else ""), flush=True)
    return results


# -- baseline file ------------------------------------------------------------

def write_baseline(report, cmdline: str) -> None:
    lines = [
        "# repro.hotpath performance baseline",
        f"# regenerate with: {cmdline}",
        f"# mode: {'quick' if report['quick'] else 'full'}",
        "# columns: kind name ref_s hot_s speedup checksum",
    ]
    for name, e in report["engines"].items():
        lines.append(f"engine {name} {e['ref_s']} {e['hot_s']} "
                     f"{e['speedup']} -")
    for name, e in report["flows"].items():
        lines.append(f"flow {name} {e.get('ref_s', '-')} {e['wall_s']} "
                     f"{e.get('speedup', '-')} {e['checksum']}")
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"baseline written to {BASELINE_PATH}")


def read_baseline():
    entries = {}
    if not os.path.exists(BASELINE_PATH):
        return entries
    with open(BASELINE_PATH) as fh:
        for line in fh:
            line = line.strip()
            if line.startswith("# mode:"):
                entries["mode"] = line.split(":", 1)[1].strip()
                continue
            if not line or line.startswith("#"):
                continue
            kind, name, ref_s, hot_s, speedup, csum = line.split()
            entries[(kind, name)] = {
                "ref_s": None if ref_s == "-" else float(ref_s),
                "hot_s": float(hot_s),
                "speedup": None if speedup == "-" else float(speedup),
                "checksum": None if csum == "-" else csum,
            }
    return entries


def check_regressions(report, tolerance: float) -> int:
    """0 when no engine lost > tolerance of its baselined speedup."""
    baseline = read_baseline()
    if not baseline:
        print(f"no baseline at {BASELINE_PATH}; run --write-baseline first")
        return 1
    mode = "quick" if report["quick"] else "full"
    base_mode = baseline.pop("mode", None)
    engines_comparable = base_mode is None or base_mode == mode
    if not engines_comparable:
        print(f"baseline is {base_mode}-mode, this run is {mode}-mode: "
              "engine workloads differ, gating flows/checksums only")
    failures = []
    for name, e in report["engines"].items():
        base = baseline.get(("engine", name))
        if (not engines_comparable or base is None
                or base["speedup"] is None or e["speedup"] is None):
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if e["speedup"] < floor:
            failures.append(
                f"engine {name}: speedup {e['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)")
    for name, e in report["flows"].items():
        base = baseline.get(("flow", name))
        if base is None:
            continue
        if base["checksum"] and e["checksum"] != base["checksum"]:
            failures.append(
                f"flow {name}: checksum {e['checksum']} != baseline "
                f"{base['checksum']} (hot path no longer bit-identical)")
        if (base["speedup"] is not None and e.get("speedup") is not None
                and e["speedup"] < base["speedup"] * (1.0 - tolerance)):
            failures.append(
                f"flow {name}: speedup {e['speedup']:.2f}x fell below "
                f"baseline {base['speedup']:.2f}x - {tolerance:.0%}")
    for f in failures:
        print(f"REGRESSION: {f}")
    if not failures:
        print("regression gate passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: router flow + reduced microbenches")
    parser.add_argument("--check", action="store_true",
                        help="fail on >tolerance speedup regression or "
                             "checksum divergence vs results/perf_baseline.txt")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup loss (default 0.25)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="refresh results/perf_baseline.txt")
    parser.add_argument("--no-ref-flow", action="store_true",
                        help="skip the slow reference-path flow runs")
    parser.add_argument("--output", default=REPORT_PATH,
                        help="report path (default BENCH_hotpath.json)")
    args = parser.parse_args()

    cmdline = "python scripts/bench_hotpath.py " + " ".join(sys.argv[1:])
    flows = QUICK_FLOWS if args.quick else FULL_FLOWS
    print("engine microbenchmarks (hot vs reference, same process):")
    engines = run_engines(args.quick)
    print("SBM flows (verify_each_step=True):")
    flow_results = run_flows(flows, with_ref=not args.no_ref_flow)

    report = {
        "schema": "bench_hotpath_v1",
        "cmdline": cmdline,
        "quick": args.quick,
        "engines": engines,
        "flows": flow_results,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"report written to {args.output}")

    if args.write_baseline:
        write_baseline(report, cmdline)
    if args.check:
        return check_regressions(report, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
