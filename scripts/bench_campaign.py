#!/usr/bin/env python3
"""Benchmark harness for the ``repro.campaign`` result cache.

Runs one campaign three times against the same cache directory:

1. **cold** — empty cache, every job is a miss and gets committed;
2. **warm** — same jobs again, every job must hit and decode to a network
   bit-identical to the cold result (the warm == cold contract);
3. **partial** — a subset of entries is invalidated (deleted), so the
   campaign recomputes exactly those jobs and hits on the rest.

Writes ``BENCH_campaign.json`` with wall times, hit/miss counters, the
realized warm-over-cold speedup, and structural checksums of every job's
result network.  The gate (``--check``) is machine-independent — it
asserts *behavior*, not absolute seconds:

* warm runs at least ``--min-speedup`` (default 5×) faster than cold,
* warm and partial checksums equal the cold checksums on every job,
* warm is all hits; partial misses exactly the invalidated jobs.

Usage:
    python scripts/bench_campaign.py --quick          # CI smoke (~1 min)
    python scripts/bench_campaign.py                  # full EPFL subset
    python scripts/bench_campaign.py --quick --check  # gate the contract
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.campaign import jobs_from_benchmarks, run_campaign  # noqa: E402
from repro.sbm.config import FlowConfig                        # noqa: E402

REPORT_PATH = os.path.join(ROOT, "BENCH_campaign.json")

QUICK_BENCHMARKS = ["router", "i2c"]
FULL_BENCHMARKS = ["router", "i2c", "cavlc", "priority", "arbiter", "bar",
                   "adder", "max", "square"]


def checksum(aig) -> str:
    """Structural sha256 over the remapped topological order (16 hex)."""
    h = hashlib.sha256()
    h.update(f"{aig.num_pis}/{aig.num_pos}/".encode())
    order = aig.topological_order()
    remap = {0: 0}
    for i, p in enumerate(aig.pis()):
        remap[p] = i + 1
    for n in order:
        remap[n] = len(remap)
    for n in order:
        f0, f1 = aig.fanins(n)
        h.update(f"{remap[f0 >> 1]}.{f0 & 1},"
                 f"{remap[f1 >> 1]}.{f1 & 1};".encode())
    for po in aig.pos():
        h.update(f"o{remap[po >> 1]}.{po & 1};".encode())
    return h.hexdigest()[:16]


def run_once(benchmarks, cache_dir: str, workers: int, label: str) -> dict:
    """One campaign pass; returns its measurement record."""
    jobs = jobs_from_benchmarks(benchmarks, config=FlowConfig(iterations=1))
    start = time.perf_counter()
    report = run_campaign(jobs, cache_dir=cache_dir, workers=workers,
                          suite=f"bench-{label}")
    wall = time.perf_counter() - start
    record = {
        "label": label,
        "wall_s": wall,
        "hits": report.hits,
        "misses": report.misses,
        "errors": report.errors,
        "corrupt_entries": report.corrupt_entries,
        "stolen_windows": report.stolen_windows,
        "checksums": {row.name: checksum(row.network)
                      for row in report.results if row.network is not None},
        "outcomes": {row.name: row.outcome for row in report.results},
    }
    print(f"{label:8s} wall={wall:7.2f}s  hits={report.hits}  "
          f"misses={report.misses}  errors={report.errors}")
    return record


def invalidate(cache_dir: str, keys_to_drop: int) -> int:
    """Delete *keys_to_drop* entry files from the cache; returns the count."""
    entries = []
    for dirpath, _dirnames, filenames in os.walk(cache_dir):
        entries.extend(os.path.join(dirpath, name)
                       for name in filenames if name.endswith(".json"))
    entries.sort()  # deterministic victim selection
    victims = entries[:keys_to_drop]
    for path in victims:
        os.unlink(path)
    return len(victims)


def run_bench(benchmarks, workers: int, cache_dir: str) -> dict:
    cold = run_once(benchmarks, cache_dir, workers, "cold")
    warm = run_once(benchmarks, cache_dir, workers, "warm")
    dropped = invalidate(cache_dir, max(1, len(benchmarks) // 2))
    partial = run_once(benchmarks, cache_dir, workers, "partial")
    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    print(f"warm speedup: {speedup:.1f}x  "
          f"(invalidated {dropped} entries for the partial pass)")
    return {
        "schema": "repro.campaign/bench-v1",
        "benchmarks": list(benchmarks),
        "workers": workers,
        "invalidated": dropped,
        "cold": cold,
        "warm": warm,
        "partial": partial,
        "warm_speedup": speedup,
    }


def check(report: dict, min_speedup: float) -> int:
    """Gate the cache contract; returns a process exit status."""
    failures = []
    cold, warm, partial = report["cold"], report["warm"], report["partial"]
    for run in (cold, warm, partial):
        if run["errors"]:
            failures.append(f"{run['label']}: {run['errors']} job errors")
    if warm["checksums"] != cold["checksums"]:
        failures.append("warm checksums differ from cold "
                        "(warm == cold bit-identity broken)")
    if partial["checksums"] != cold["checksums"]:
        failures.append("partial checksums differ from cold")
    if warm["misses"] != 0:
        failures.append(f"warm run missed {warm['misses']} jobs "
                        f"(expected all hits)")
    expected_misses = report["invalidated"]
    if partial["misses"] != expected_misses:
        failures.append(f"partial run missed {partial['misses']} jobs, "
                        f"expected exactly {expected_misses}")
    if report["warm_speedup"] < min_speedup:
        failures.append(f"warm speedup {report['warm_speedup']:.1f}x "
                        f"below the {min_speedup:.1f}x gate")
    if failures:
        print("CAMPAIGN CACHE GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"campaign cache gate OK: warm {report['warm_speedup']:.1f}x "
          f">= {min_speedup:.1f}x, bit-identical across all passes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="2-benchmark CI smoke instead of the EPFL subset")
    parser.add_argument("--check", action="store_true",
                        help="gate: warm >= --min-speedup and bit-identical")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="warm-over-cold wall-clock gate (default 5x)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="shared-pool workers (1 = serial inline)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: fresh temp dir)")
    parser.add_argument("--output", default=REPORT_PATH,
                        help="report path (default BENCH_campaign.json)")
    args = parser.parse_args()

    benchmarks = QUICK_BENCHMARKS if args.quick else FULL_BENCHMARKS
    temp = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        temp = tempfile.mkdtemp(prefix="bench_campaign_")
        cache_dir = temp
    try:
        report = run_bench(benchmarks, args.jobs, cache_dir)
    finally:
        if temp is not None:
            shutil.rmtree(temp, ignore_errors=True)
    report["quick"] = args.quick
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    if args.check:
        return check(report, args.min_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
