#!/usr/bin/env python3
"""Chaos soak: run the SBM flow under deterministic fault injection.

For each seed the soak runs the full flow on an EPFL benchmark with a
:class:`repro.guard.chaos.FaultPlan` injecting worker crashes, window
timeouts, corrupt (non-equivalent) results, and forced BDD bailouts, plus
stage-level result corruption — and then asserts the robustness contract:

* the flow **completes** (faults degrade, they never abort),
* the output is **SAT-equivalent** to the input,
* every injected fault is **visible in the guard report**,
* every stage-level corruption was **rolled back** by the equivalence
  guard,
* an **interrupted + resumed** run produces the *same network* as an
  uninterrupted run with the same seed.

Exit status 0 means every seed upheld the contract.  This is the script
behind the CI chaos job:

    python scripts/chaos_soak.py --bench i2c --seeds 7 1234
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "..", "src"))

from repro.bench.registry import get_benchmark  # noqa: E402
from repro.guard.chaos import ChaosInterrupt, FaultPlan  # noqa: E402
from repro.parallel.window_io import CompactAig  # noqa: E402
from repro.sat.equivalence import check_equivalence  # noqa: E402
from repro.sbm.config import FlowConfig  # noqa: E402
from repro.sbm.flow import sbm_flow  # noqa: E402


def signature(aig):
    compact = CompactAig.from_aig(aig)
    return (compact.num_pis, tuple(compact.gates), tuple(compact.outputs))


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    raise SystemExit(1)


def soak_one(aig, seed: int, jobs: int, rate: float,
             stage_corrupt_rate: float) -> None:
    """One chaos run; asserts completion, equivalence, fault visibility."""
    plan = FaultPlan(seed=seed, rate=rate,
                     stage_corrupt_rate=stage_corrupt_rate)
    config = FlowConfig(iterations=1, jobs=jobs, verify_each_step=True,
                        chaos=plan)
    out, stats = sbm_flow(aig, config)
    guard = stats.guard
    ok, _ = check_equivalence(aig, out)
    if not ok:
        fail(f"seed {seed}: output not equivalent under chaos")
    if len(guard.faults) != len(plan.injected):
        fail(f"seed {seed}: {len(plan.injected)} faults injected but "
             f"{len(guard.faults)} reported")
    stage_corruptions = [site for site, kind in guard.faults
                         if site.startswith("stage:")
                         and kind == "corrupt-result"]
    if guard.rollbacks < len(stage_corruptions):
        fail(f"seed {seed}: {len(stage_corruptions)} stage corruptions but "
             f"only {guard.rollbacks} rollbacks")
    print(f"  seed {seed}: {aig.num_ands} -> {out.num_ands} ands, "
          f"faults={len(guard.faults)} rollbacks={guard.rollbacks} "
          f"equivalent=True")


def soak_resume(aig, seed: int, interrupt_after: int) -> None:
    """Interrupt at a checkpoint, resume, compare against uninterrupted."""
    base, _ = sbm_flow(aig, FlowConfig(iterations=1))
    ckpt = tempfile.mkdtemp(prefix="chaos-ckpt-")
    try:
        plan = FaultPlan(seed=seed, rate=0.0,
                         interrupt_after=interrupt_after)
        try:
            sbm_flow(aig, FlowConfig(iterations=1, checkpoint_dir=ckpt,
                                     chaos=plan))
        except ChaosInterrupt as exc:
            print(f"  interrupted after stage #{exc.stage_index} "
                  f"(checkpoint committed)")
        else:
            fail(f"seed {seed}: interrupt_after={interrupt_after} "
                 f"never fired")
        out, stats = sbm_flow(aig, FlowConfig(iterations=1),
                              resume_from=ckpt)
        if signature(out) != signature(base):
            fail(f"seed {seed}: resumed network differs from "
                 f"uninterrupted run")
        ok, _ = check_equivalence(aig, out)
        if not ok:
            fail(f"seed {seed}: resumed output not equivalent")
        print(f"  resumed from stage #{stats.guard.resumed_from}: "
              f"identical to uninterrupted run")
    finally:
        shutil.rmtree(ckpt, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="i2c",
                        help="EPFL benchmark name (default: i2c)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[7, 1234],
                        help="chaos seeds to soak (default: 7 1234)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default: 2)")
    parser.add_argument("--rate", type=float, default=0.2,
                        help="window fault rate (default: 0.2)")
    parser.add_argument("--stage-corrupt-rate", type=float, default=0.15,
                        help="stage corruption rate (default: 0.15)")
    parser.add_argument("--interrupt-after", type=int, default=3,
                        help="stage index for the resume check (default: 3)")
    args = parser.parse_args(argv)

    aig = get_benchmark(args.bench, scaled=True)
    print(f"chaos soak on {args.bench}: {aig.stats()}")
    for seed in args.seeds:
        soak_one(aig, seed, args.jobs, args.rate, args.stage_corrupt_rate)
    print(f"resume-after-interrupt check (seed {args.seeds[0]}):")
    soak_resume(aig, args.seeds[0], args.interrupt_after)
    print("chaos soak PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
