#!/usr/bin/env python3
"""Run every experiment of the reproduction and record the results.

Writes incremental, human-readable results to ``results/`` so EXPERIMENTS.md
can be assembled from real measurements.  Each artifact is skipped when its
file already exists (delete ``results/`` to rerun from scratch), and tables
are written batch-by-batch so partial runs still produce usable rows.

Usage:  python scripts/run_experiments.py [--fast] [--jobs N]
                                          [--trace] [--report-json PATH]
                                          [--cache-dir DIR] [--no-simresub]
                                          [--orchestrate K]
                                          [--progress] [--progress-jsonl PATH]

``--jobs N`` (or ``-j N``) fans the partition-based engines out over N
worker processes (0 = all cores); results are identical to the serial run.

``--cache-dir DIR`` activates the campaign result cache
(``repro.campaign``): every ``sbm_flow`` invocation inside the experiment
sweep is keyed by (network, config, code version) and replayed from DIR
when already computed — a warm rerun only pays for mapping, equivalence
checking, and the baseline scripts.

``--no-simresub`` disables the simulation-guided resubstitution stage in
every flow of the sweep (for before/after comparisons of the fifth
engine; enabled by default).

``--orchestrate K`` replaces every flow's fixed stage waterfall with the
``repro.orchestrate`` pass-ordering search (K candidate orderings per
round).  Combine with ``--cache-dir`` so the per-stage memo persists and
repeat sweeps recompute nothing.

``--trace`` enables the ``repro.obs`` tracer and writes the span/metrics
tables to ``results/obs_trace.txt``; ``--report-json PATH`` writes the
machine-readable run report (stable schema, every flow and parallel pass
of the experiment sweep included).
"""

from __future__ import annotations

import os
import sys
import time

RESULTS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                       "results")


def save(name: str, text: str) -> None:
    os.makedirs(RESULTS, exist_ok=True)
    with open(os.path.join(RESULTS, name), "w") as handle:
        handle.write(text + "\n")
    print(f"--- {name} ---")
    print(text)
    sys.stdout.flush()


def done(name: str) -> bool:
    return os.path.exists(os.path.join(RESULTS, name))


def parse_jobs(argv) -> int:
    """Read ``--jobs N`` / ``-j N`` / ``--jobs=N`` from *argv* (default 1)."""
    jobs = 1
    for i, arg in enumerate(argv):
        value = None
        if arg in ("--jobs", "-j") and i + 1 < len(argv):
            value = argv[i + 1]
        elif arg.startswith("--jobs="):
            value = arg.split("=", 1)[1]
        if value is not None:
            try:
                jobs = int(value)
            except ValueError:
                raise SystemExit(
                    f"--jobs expects an integer, got {value!r}") from None
    return jobs


def parse_value(argv, flag):
    """Read ``flag PATH`` (or ``flag=PATH``) from *argv*."""
    for i, arg in enumerate(argv):
        if arg == flag and i + 1 < len(argv):
            return argv[i + 1]
        if arg.startswith(flag + "="):
            return arg.split("=", 1)[1]
    return None


def main() -> None:
    fast = "--fast" in sys.argv
    jobs = parse_jobs(sys.argv)
    trace = "--trace" in sys.argv
    report_json = parse_value(sys.argv, "--report-json")
    cache_dir = parse_value(sys.argv, "--cache-dir")
    progress = "--progress" in sys.argv
    progress_jsonl = parse_value(sys.argv, "--progress-jsonl")
    session = None
    if trace or report_json:
        from repro import obs
        session = obs.enable()
    from repro.campaign.cache import cache_context
    from repro.obs.live import live_session
    from repro.sbm.config import FlowConfig

    orchestrate_k = parse_value(sys.argv, "--orchestrate")
    orchestrate = None
    if orchestrate_k is not None:
        from repro.sbm.config import OrchestrateConfig
        try:
            orchestrate = OrchestrateConfig(k=int(orchestrate_k))
        except ValueError:
            raise SystemExit(f"--orchestrate expects an integer K, "
                             f"got {orchestrate_k!r}") from None

    flow = FlowConfig(iterations=1, jobs=jobs,
                      enable_simresub="--no-simresub" not in sys.argv,
                      orchestrate=orchestrate)
    t0 = time.time()
    with cache_context(cache_dir), \
            live_session(progress=progress, jsonl_path=progress_jsonl):
        _run_all(fast, flow, t0)

    if session is not None:
        from repro import obs
        from repro.obs.report import (
            build_report,
            format_metrics_table,
            format_trace_table,
            write_report,
        )
        obs.disable()
        if trace:
            table = format_trace_table(
                [s.to_dict() for s in session.tracer.roots])
            save("obs_trace.txt",
                 table + "\n" + format_metrics_table(session.metrics.to_dict()))
        if report_json:
            report = build_report(session,
                                  command=" ".join(sys.argv[1:]))
            write_report(report_json, report)
            print(f"run report written to {report_json}")


def _run_all(fast: bool, flow, t0: float) -> None:

    if not done("fig1.txt"):
        from repro.experiments.fig1 import format_result, run_fig1
        save("fig1.txt", format_result(run_fig1()))

    if not done("runtime.txt"):
        from repro.experiments.runtime import format_results as fmt_rt
        from repro.experiments.runtime import run_monolithic
        save("runtime.txt", fmt_rt(run_monolithic()))

    if not done("ablation.txt"):
        from repro.experiments.ablation import (
            ablate_bdd_reordering,
            ablate_bdd_size_limit,
            ablate_gradient_budget,
            ablate_hetero_vs_homogeneous,
            ablate_mspf_engine,
            ablate_xor_cost,
            format_points,
        )
        save("ablation.txt", "\n\n".join([
            format_points("BDD size filter (Section III-C)",
                          ablate_bdd_size_limit()),
            format_points("xor_cost (Section III-C)", ablate_xor_cost()),
            format_points("Gradient cost budget (Section IV-A)",
                          ablate_gradient_budget()),
            format_points("Hetero vs homogeneous eliminate (Section IV-B)",
                          ablate_hetero_vs_homogeneous()),
            format_points("BDD reordering, extension (Section III-C)",
                          ablate_bdd_reordering()),
            format_points("TT-MSPF [1] vs BDD-MSPF (Section IV-C)",
                          ablate_mspf_engine()),
        ]))

    if not done("simresub_large_arith.txt"):
        from repro.experiments.simresub_large import (
            format_simresub_rows,
            run_simresub_large,
        )
        save("simresub_large_arith.txt",
             format_simresub_rows(run_simresub_large(jobs=flow.jobs)))

    small = ["router", "cavlc", "i2c", "priority", "arbiter", "bar", "adder"]
    medium = ["max", "square", "mult", "sqrt", "mem_ctrl"]
    large = ["div", "log2", "voter", "sin", "hypotenuse"]

    from repro.experiments.table1 import format_results as fmt_t1
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import format_results as fmt_t2
    from repro.experiments.table2 import run_table2

    # Priority order: small batches of both tables, then Table III, then
    # the arithmetic giants — so a bounded run covers every table.
    all_t1, all_t2 = [], []
    if not done("table1_small.txt"):
        all_t1 += run_table1(benchmarks=small, flow_config=flow)
        save("table1_small.txt", fmt_t1(all_t1))
    if not done("table2_small.txt"):
        all_t2 += run_table2(benchmarks=small, flow_config=flow)
        save("table2_small.txt", fmt_t2(all_t2))

    if not done("table3.txt"):
        from repro.experiments.table3 import format_summary, run_table3
        count = 6 if fast else 33
        summary = run_table3(num_designs=count, sbm_config=flow)
        save("table3.txt", format_summary(summary))

    if not fast:
        if not done("table2_medium.txt"):
            rows = run_table2(benchmarks=medium, flow_config=flow)
            save("table2_medium.txt", fmt_t2(rows))
        if not done("table1_medium.txt"):
            rows = run_table1(benchmarks=medium, flow_config=flow)
            save("table1_medium.txt", fmt_t1(rows))
        for name in large:
            artifact = f"table2_large_{name}.txt"
            if not done(artifact):
                rows = run_table2(benchmarks=[name], flow_config=flow)
                save(artifact, fmt_t2(rows))

    save("DONE.txt", f"experiments finished in {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
