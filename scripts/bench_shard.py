#!/usr/bin/env python3
"""Fleet verifier for the sharded campaign (``repro.campaign.shard``).

Runs the same suite two ways against fresh caches and asserts the fleet
contract — the combined output of N shard workers equals a single
worker's, key for key and bit for bit:

1. **solo** — one worker runs every job into one cache;
2. **fleet** — the deterministic shard planner splits the jobs into N
   disjoint shards; each shard runs into its own cache, packs it to an
   archive (``repro.campaign.sync``), and the archives merge into one
   combined cache;
3. **warm** — the whole suite reruns against the merged cache and must
   be all hits with zero misses (every worker benefits from every other
   worker's cold work).

The gate (``--check``) is machine-independent — it asserts behavior,
never absolute seconds:

* every job lands on exactly one shard (disjoint cover);
* the merged cache inventory (key → payload digest, both slots) equals
  the solo cache's — same keys, bit-identical result payloads (the
  payload excludes only the cold run's wall-time telemetry, which is
  measurement, not result);
* the fleet's combined per-job report rows (key, outcome, node counts)
  equal the solo rows, in suite order;
* the warm cross-shard rerun has zero misses, zero errors, and networks
  bit-identical to solo;
* a second merge of the same archives is a pure no-op (idempotence).

Usage:
    python scripts/bench_shard.py --quick --check   # CI smoke (2 shards)
    python scripts/bench_shard.py --check           # full gate (3 shards)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.campaign import (                                   # noqa: E402
    cache_inventory,
    jobs_from_benchmarks,
    merge_cache,
    pack_cache,
    plan_shards,
    run_campaign,
)
from repro.sbm.config import FlowConfig                        # noqa: E402

REPORT_PATH = os.path.join(ROOT, "BENCH_shard.json")

QUICK_BENCHMARKS = ["router", "i2c", "cavlc", "priority"]
FULL_BENCHMARKS = ["router", "i2c", "cavlc", "priority", "arbiter", "bar",
                   "adder", "max", "square"]


def checksum(aig) -> str:
    """Structural sha256 over the remapped topological order (16 hex)."""
    h = hashlib.sha256()
    h.update(f"{aig.num_pis}/{aig.num_pos}/".encode())
    order = aig.topological_order()
    remap = {0: 0}
    for i, p in enumerate(aig.pis()):
        remap[p] = i + 1
    for n in order:
        remap[n] = len(remap)
    for n in order:
        f0, f1 = aig.fanins(n)
        h.update(f"{remap[f0 >> 1]}.{f0 & 1},"
                 f"{remap[f1 >> 1]}.{f1 & 1};".encode())
    for po in aig.pos():
        h.update(f"o{remap[po >> 1]}.{po & 1};".encode())
    return h.hexdigest()[:16]


def rows_of(report) -> dict:
    """The determinism-covered slice of every job row, keyed by name."""
    return {row.name: {"key": row.key, "outcome": row.outcome,
                       "nodes_before": row.nodes_before,
                       "nodes_after": row.nodes_after}
            for row in report.results}


def run_pass(jobs, cache_dir: str, workers: int, label: str,
             shard=None) -> tuple:
    """One campaign pass; returns (report, measurement record)."""
    start = time.perf_counter()
    report = run_campaign(jobs, cache_dir=cache_dir, workers=workers,
                          suite=f"bench-shard-{label}", shard=shard)
    wall = time.perf_counter() - start
    record = {
        "label": label,
        "wall_s": wall,
        "jobs": report.jobs,
        "hits": report.hits,
        "misses": report.misses,
        "errors": report.errors,
        "rows": rows_of(report),
        "checksums": {row.name: checksum(row.network)
                      for row in report.results if row.network is not None},
    }
    print(f"{label:12s} wall={wall:7.2f}s  jobs={report.jobs}  "
          f"hits={report.hits}  misses={report.misses}  "
          f"errors={report.errors}")
    return report, record


def run_bench(benchmarks, shards: int, workers: int, workdir: str) -> dict:
    jobs = jobs_from_benchmarks(benchmarks, config=FlowConfig(iterations=1))
    solo_dir = os.path.join(workdir, "solo_cache")
    merged_dir = os.path.join(workdir, "merged_cache")

    _solo_report, solo = run_pass(jobs, solo_dir, workers, "solo")

    plan = plan_shards(jobs, shards)
    covered = sorted(p for i in range(shards) for p in plan.positions(i))
    disjoint = covered == list(range(len(jobs)))
    print(f"plan ({plan.planner}): "
          + "  ".join(f"shard{i}={len(plan.positions(i))}"
                      for i in range(shards)))

    archives = []
    shard_records = []
    for index in range(shards):
        shard_dir = os.path.join(workdir, f"shard{index}_cache")
        selected = plan.select(jobs, index)
        report, record = run_pass(selected, shard_dir, workers,
                                  f"shard {index}/{shards}",
                                  shard=plan.tag(index))
        archive = os.path.join(workdir, f"shard{index}.tar.gz")
        manifest = pack_cache(shard_dir, archive,
                              slot_stats=report.cache_slots)
        record["packed_entries"] = len(manifest["entries"])
        archives.append(archive)
        shard_records.append(record)

    merge_report = merge_cache(archives, merged_dir)
    print(merge_report.describe())
    remerge = merge_cache(archives, merged_dir)

    # The fleet's combined report: shard rows reassembled in suite order.
    fleet_rows = {}
    for record in shard_records:
        fleet_rows.update(record["rows"])
    fleet_rows = {job.name: fleet_rows.get(job.name) for job in jobs}

    _warm_report, warm = run_pass(jobs, merged_dir, workers, "warm")

    return {
        "schema": "repro.campaign/bench-shard-v1",
        "benchmarks": list(benchmarks),
        "shards": shards,
        "workers": workers,
        "plan": plan.to_dict(),
        "disjoint_cover": disjoint,
        "solo": solo,
        "fleet": shard_records,
        "fleet_rows": fleet_rows,
        "merge": merge_report.to_dict(),
        "remerge": remerge.to_dict(),
        "solo_inventory": cache_inventory(solo_dir),
        "merged_inventory": cache_inventory(merged_dir),
        "warm": warm,
    }


def check(report: dict) -> int:
    """Gate the fleet contract; returns a process exit status."""
    failures = []
    solo, warm = report["solo"], report["warm"]
    for record in [solo, warm] + report["fleet"]:
        if record["errors"]:
            failures.append(f"{record['label']}: {record['errors']} "
                            f"job errors")
    if not report["disjoint_cover"]:
        failures.append("shard plan is not a disjoint cover of the suite")
    if report["merged_inventory"] != report["solo_inventory"]:
        solo_keys = {slot: sorted(keys)
                     for slot, keys in report["solo_inventory"].items()}
        merged_keys = {slot: sorted(keys)
                       for slot, keys in report["merged_inventory"].items()}
        if solo_keys != merged_keys:
            failures.append("merged cache keys differ from solo keys")
        else:
            failures.append("merged cache payloads differ from solo "
                            "(bit-identity broken)")
    if report["fleet_rows"] != solo["rows"]:
        failures.append("fleet job rows differ from the single-worker rows")
    if warm["misses"] != 0:
        failures.append(f"warm cross-shard rerun missed {warm['misses']} "
                        f"jobs (expected zero: every shard's work must be "
                        f"visible after the merge)")
    if warm["checksums"] != solo["checksums"]:
        failures.append("warm networks differ from solo (bit-identity "
                        "broken)")
    if report["merge"]["corrupt_skipped"]:
        failures.append(f"merge skipped {report['merge']['corrupt_skipped']} "
                        f"corrupt entr(ies)")
    if report["remerge"]["imported"] != 0:
        failures.append(f"re-merge imported "
                        f"{report['remerge']['imported']} entr(ies) "
                        f"(expected an idempotent no-op)")
    store_failures = sum(report["merge"]["store_failures"].values())
    if store_failures:
        failures.append(f"shards recorded {store_failures} cache store "
                        f"failure(s)")
    if failures:
        print("SHARD FLEET GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    total = sum(len(keys) for keys in report["solo_inventory"].values())
    print(f"shard fleet gate OK: {report['shards']} merged shards == "
          f"1 worker on {total} cache entr(ies), warm rerun all hits, "
          f"re-merge idempotent")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="4-benchmark, 2-shard CI smoke")
    parser.add_argument("--check", action="store_true",
                        help="gate: merged == solo, warm all hits")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count (default: 2 quick, 3 full)")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="shared-pool workers per campaign pass")
    parser.add_argument("--output", default=REPORT_PATH,
                        help="report path (default BENCH_shard.json)")
    args = parser.parse_args()

    benchmarks = QUICK_BENCHMARKS if args.quick else FULL_BENCHMARKS
    shards = args.shards if args.shards is not None \
        else (2 if args.quick else 3)
    if shards < 1:
        parser.error("--shards must be >= 1")
    workdir = tempfile.mkdtemp(prefix="bench_shard_")
    try:
        report = run_bench(benchmarks, shards, args.jobs, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report["quick"] = args.quick
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    if args.check:
        return check(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
