#!/usr/bin/env python3
"""Benchmark harness for the ``repro.orchestrate`` pass-ordering search.

Runs the K-candidate ordering search twice against the same cache
directory, plus the classic fixed waterfall for a QoR reference:

1. **waterfall** — ``sbm_flow`` with ``orchestrate=None`` (the baseline
   the search must beat or match on node count);
2. **cold** — the search with an empty cache: every distinct
   (network, stage, config) evaluation is computed and committed to the
   per-stage memo slot;
3. **warm** — the same search again: every stage evaluation must replay
   from the memo (zero recomputes) and the chosen ordering and final
   network must be bit-identical to the cold pass.

Writes ``BENCH_orchestrate.json`` with wall times, per-benchmark memo
counters, chosen orderings, and structural checksums.  The gate
(``--check``) is machine-independent — it asserts *behavior*, not
absolute seconds:

* warm runs at least ``--min-speedup`` (default 5×) faster than cold,
* the warm pass recomputes **zero** stages (``misses == 0``),
* warm checksums and chosen orderings equal the cold ones on every
  benchmark,
* the searched result is never worse than the fixed waterfall on nodes.

Usage:
    python scripts/bench_orchestrate.py --quick          # CI smoke
    python scripts/bench_orchestrate.py                  # full EPFL subset
    python scripts/bench_orchestrate.py --quick --check  # gate the contract
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.bench.registry import get_benchmark      # noqa: E402
from repro.campaign import cache_context            # noqa: E402
from repro.sbm.config import FlowConfig, OrchestrateConfig  # noqa: E402
from repro.sbm.flow import sbm_flow                 # noqa: E402

REPORT_PATH = os.path.join(ROOT, "BENCH_orchestrate.json")

QUICK_BENCHMARKS = ["router", "cavlc"]
FULL_BENCHMARKS = ["router", "cavlc", "i2c", "priority", "bar"]


def checksum(aig) -> str:
    """Structural sha256 over the remapped topological order (16 hex)."""
    h = hashlib.sha256()
    h.update(f"{aig.num_pis}/{aig.num_pos}/".encode())
    order = aig.topological_order()
    remap = {0: 0}
    for i, p in enumerate(aig.pis()):
        remap[p] = i + 1
    for n in order:
        remap[n] = len(remap)
    for n in order:
        f0, f1 = aig.fanins(n)
        h.update(f"{remap[f0 >> 1]}.{f0 & 1},"
                 f"{remap[f1 >> 1]}.{f1 & 1};".encode())
    for po in aig.pos():
        h.update(f"o{remap[po >> 1]}.{po & 1};".encode())
    return h.hexdigest()[:16]


def run_search(benchmarks, config: FlowConfig, cache_dir: str,
               label: str) -> dict:
    """One searched pass over every benchmark; returns its record."""
    per_bench = {}
    start = time.perf_counter()
    with cache_context(cache_dir):
        for name in benchmarks:
            aig = get_benchmark(name)
            optimized, stats = sbm_flow(aig, config)
            doc = stats.orchestrate
            memo = doc["stage_memo"] or {}
            per_bench[name] = {
                "nodes": optimized.num_ands,
                "checksum": checksum(optimized),
                "chosen": doc["chosen"],
                "recomputes": memo.get("misses"),
                "disk_hits": memo.get("disk_hits"),
                "memory_hits": memo.get("memory_hits"),
            }
    wall = time.perf_counter() - start
    recomputes = sum(row["recomputes"] or 0 for row in per_bench.values())
    print(f"{label:10s} wall={wall:7.2f}s  stage recomputes={recomputes}")
    return {"label": label, "wall_s": wall, "recomputes": recomputes,
            "benchmarks": per_bench}


def run_waterfall(benchmarks) -> dict:
    """The classic fixed waterfall: QoR reference, never cached here."""
    per_bench = {}
    start = time.perf_counter()
    for name in benchmarks:
        aig = get_benchmark(name)
        optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
        per_bench[name] = {"nodes": optimized.num_ands,
                           "checksum": checksum(optimized)}
    wall = time.perf_counter() - start
    print(f"{'waterfall':10s} wall={wall:7.2f}s")
    return {"label": "waterfall", "wall_s": wall, "benchmarks": per_bench}


def run_bench(benchmarks, k: int, rounds: int, cache_dir: str) -> dict:
    config = FlowConfig(iterations=1,
                        orchestrate=OrchestrateConfig(k=k, rounds=rounds))
    waterfall = run_waterfall(benchmarks)
    cold = run_search(benchmarks, config, cache_dir, "cold")
    warm = run_search(benchmarks, config, cache_dir, "warm")
    speedup = cold["wall_s"] / max(warm["wall_s"], 1e-9)
    print(f"warm speedup: {speedup:.1f}x")
    return {
        "schema": "repro.orchestrate/bench-v1",
        "benchmarks": list(benchmarks),
        "k": k,
        "rounds": rounds,
        "waterfall": waterfall,
        "cold": cold,
        "warm": warm,
        "warm_speedup": speedup,
    }


def check(report: dict, min_speedup: float) -> int:
    """Gate the search + memo contract; returns a process exit status."""
    failures = []
    cold, warm = report["cold"], report["warm"]
    waterfall = report["waterfall"]["benchmarks"]
    if warm["recomputes"] != 0:
        failures.append(f"warm pass recomputed {warm['recomputes']} stages "
                        f"(expected zero)")
    for name, cold_row in cold["benchmarks"].items():
        warm_row = warm["benchmarks"][name]
        if warm_row["checksum"] != cold_row["checksum"]:
            failures.append(f"{name}: warm network differs from cold")
        if warm_row["chosen"] != cold_row["chosen"]:
            failures.append(f"{name}: warm chose a different ordering")
        if cold_row["nodes"] > waterfall[name]["nodes"]:
            failures.append(
                f"{name}: searched result ({cold_row['nodes']} nodes) worse "
                f"than the fixed waterfall ({waterfall[name]['nodes']})")
    if report["warm_speedup"] < min_speedup:
        failures.append(f"warm speedup {report['warm_speedup']:.1f}x "
                        f"below the {min_speedup:.1f}x gate")
    if failures:
        print("ORCHESTRATE GATE FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"orchestrate gate OK: warm {report['warm_speedup']:.1f}x "
          f">= {min_speedup:.1f}x, zero recomputes, bit-identical winners, "
          f"QoR never worse than the waterfall")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="2-benchmark CI smoke instead of the EPFL subset")
    parser.add_argument("--check", action="store_true",
                        help="gate: zero warm recomputes, >= --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="warm-over-cold wall-clock gate (default 5x)")
    parser.add_argument("--k", type=int, default=3,
                        help="candidate orderings per round (default 3)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="search rounds (default 2)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: fresh temp dir)")
    parser.add_argument("--output", default=REPORT_PATH,
                        help="report path (default BENCH_orchestrate.json)")
    args = parser.parse_args()

    benchmarks = QUICK_BENCHMARKS if args.quick else FULL_BENCHMARKS
    temp = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        temp = tempfile.mkdtemp(prefix="bench_orchestrate_")
        cache_dir = temp
    try:
        report = run_bench(benchmarks, args.k, args.rounds, cache_dir)
    finally:
        if temp is not None:
            shutil.rmtree(temp, ignore_errors=True)
    report["quick"] = args.quick
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    if args.check:
        return check(report, args.min_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
