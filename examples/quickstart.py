#!/usr/bin/env python3
"""Quickstart: build a circuit, optimize it with SBM, verify, and map it.

Run:  python examples/quickstart.py
"""

from repro.aig import Aig
from repro.aig.compose import multiplier
from repro.mapping.lut import map_luts
from repro.sat.equivalence import check_equivalence
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow


def main() -> None:
    # 1. Build a circuit with the word-level composition helpers: here a
    #    6x6 unsigned array multiplier.
    aig = Aig("mult6")
    a = aig.add_pis(6, "a")
    b = aig.add_pis(6, "b")
    for i, bit in enumerate(multiplier(aig, a, b)):
        aig.add_po(bit, f"p{i}")
    print(f"built       : {aig.stats()}")

    # 2. Run the Scalable Boolean Method flow (Section V-A of the paper):
    #    gradient-based AIG optimization, heterogeneous kerneling, BDD MSPF,
    #    Boolean difference resubstitution, SAT sweeping.
    optimized, stats = sbm_flow(aig, FlowConfig(iterations=1))
    print(f"optimized   : {optimized.stats()}  ({stats.runtime_s:.1f}s)")
    for record in stats.records:
        print(f"   {record.name:24s} {record.size:6d}  "
              f"{record.elapsed_s:6.2f}s")

    # 3. Verify the result formally (SAT-based equivalence check).
    equivalent, counterexample = check_equivalence(aig, optimized)
    print(f"equivalent  : {equivalent}")
    assert equivalent, counterexample

    # 4. Map onto 6-input LUTs, like the paper's EPFL area experiment.
    mapping = map_luts(optimized, k=6)
    print(f"LUT-6 map   : {mapping.area} LUTs, depth {mapping.depth}")


if __name__ == "__main__":
    main()
