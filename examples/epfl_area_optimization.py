#!/usr/bin/env python3
"""EPFL-style area optimization: the Table I / Table II workload.

Optimizes a selection of (scaled) EPFL benchmarks with the baseline script
and with the SBM flow, reports AIG sizes and LUT-6 mappings side by side
with the paper's native-width reference numbers, and formally verifies every
result.

Run:  python examples/epfl_area_optimization.py [benchmark ...]
"""

import sys
import time

from repro.bench.registry import BENCHMARKS, get_benchmark
from repro.mapping.lut import map_luts
from repro.opt.scripts import resyn2rs
from repro.sat.equivalence import check_equivalence
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow

DEFAULT = ["router", "cavlc", "priority", "i2c"]


def optimize_one(name: str) -> None:
    bench = BENCHMARKS[name]
    aig = get_benchmark(name, scaled=True)
    print(f"\n=== {name} (scaled {aig.num_pis}/{aig.num_pos}, "
          f"paper native {bench.reference.io[0]}/{bench.reference.io[1]}) ===")
    print(f"  original      : {aig.num_ands:6d} ANDs, {aig.depth} levels")

    start = time.time()
    baseline = resyn2rs(aig.cleanup(), max_iterations=2)
    print(f"  resyn2rs      : {baseline.num_ands:6d} ANDs "
          f"({time.time() - start:5.1f}s)")

    start = time.time()
    optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1))
    print(f"  SBM flow      : {optimized.num_ands:6d} ANDs "
          f"({time.time() - start:5.1f}s)")

    ok, _ = check_equivalence(aig, optimized)
    print(f"  verified      : {ok}")

    base_map = map_luts(baseline, k=6)
    sbm_map = map_luts(optimized, k=6)
    print(f"  LUT-6 (base)  : {base_map.area:6d} LUTs, depth {base_map.depth}")
    print(f"  LUT-6 (SBM)   : {sbm_map.area:6d} LUTs, depth {sbm_map.depth}")
    if bench.reference.table1_luts:
        print(f"  paper Table I : {bench.reference.table1_luts:6d} LUTs "
              f"(native width)")
    if bench.reference.table2_size:
        print(f"  paper Table II: {bench.reference.table2_size:6d} ANDs "
              f"(native width)")


def main() -> None:
    names = sys.argv[1:] or DEFAULT
    for name in names:
        optimize_one(name)


if __name__ == "__main__":
    main()
