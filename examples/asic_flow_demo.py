#!/usr/bin/env python3
"""Full ASIC implementation flow on a synthetic industrial design.

Walks the Table III pipeline once: generate an "industrial" design, run the
baseline flow and the SBM-enhanced flow through tech mapping, placement,
STA and power analysis, and print the relative deltas the paper reports.

Run:  python examples/asic_flow_demo.py [design_index]
"""

import sys

from repro.asic.designs import generate_design
from repro.asic.flow import baseline_flow, proposed_flow
from repro.asic.place import place
from repro.asic.sta import analyze_timing
from repro.sbm.config import FlowConfig


def main() -> None:
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    design = generate_design(index)
    print(f"design {design.name}: {design.stats()}")

    # Derive a tight clock from the baseline's own achieved timing, as the
    # Table III experiment does.
    base = baseline_flow(design, clock_period=1e9, keep_netlist=True)
    placement = place(base.netlist)
    unconstrained = analyze_timing(base.netlist, 1e9, placement)
    period = unconstrained.critical_path_delay * 0.96
    base_timing = analyze_timing(base.netlist, period, placement)
    print(f"\nclock target: {period:.3f} (96% of baseline critical path)")

    prop = proposed_flow(design, period, sbm_config=FlowConfig(iterations=1))

    def row(label, b, p, fmt="{:10.2f}"):
        delta = ""
        if b:
            delta = f"  ({100.0 * (p - b) / abs(b):+.2f}%)"
        print(f"  {label:18s} " + fmt.format(b) + "  ->  "
              + fmt.format(p) + delta)

    print("\n                      baseline        proposed")
    row("comb. area", base.combinational_area, prop.combinational_area)
    row("dynamic power", base.dynamic_power, prop.dynamic_power)
    row("gates", base.gates, prop.gates, fmt="{:10d}")
    row("WNS", base_timing.wns, prop.wns)
    row("TNS", base_timing.tns, prop.tns)
    row("runtime [s]", base.runtime_s, prop.runtime_s)
    print(f"\n  equivalence checks: baseline={base.verified} "
          f"proposed={prop.verified}")
    print("  (paper Table III averages: area -2.20%, power -1.15%, "
          "WNS -0.56%, TNS -5.99%, runtime +1.75%)")


if __name__ == "__main__":
    main()
