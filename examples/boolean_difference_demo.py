#!/usr/bin/env python3
"""Figure 1 walk-through: rewriting f as ∂f/∂g ⊕ g, step by step.

Shows the internals of the paper's Section III on the Figure 1 example:
the partition BDDs, the difference BDD and its size, the filters of Alg. 1,
and the final strashed implementation.

Run:  python examples/boolean_difference_demo.py
"""

from repro.bdd.manager import BddManager
from repro.bdd.to_aig import aig_window_to_bdds, bdd_to_aig
from repro.experiments.fig1 import build_fig1_network
from repro.partition.partitioner import PartitionConfig, partition_network
from repro.sat.equivalence import check_equivalence
from repro.sbm.boolean_difference import boolean_difference_pass
from repro.sbm.config import BooleanDifferenceConfig


def main() -> None:
    aig = build_fig1_network()
    print("Fig. 1(a)-style network")
    print(f"  size = {aig.num_ands}, depth = {aig.depth}")
    print(f"  POs: f (expansive cone) and g (compact shared function)")

    # Peek inside the engine: one partition covering the whole network.
    window = partition_network(aig, PartitionConfig(max_levels=10 ** 6,
                                                    max_size=10 ** 6,
                                                    max_leaves=10 ** 6))[0]
    manager = BddManager(len(window.leaves))
    leaf_bdds = {leaf: manager.var(i) for i, leaf in enumerate(window.leaves)}
    all_bdds = aig_window_to_bdds(aig, window.nodes, leaf_bdds, manager)
    from repro.aig.aig import lit_node
    f_node = lit_node(aig.pos()[0])
    g_node = lit_node(aig.pos()[1])
    diff = manager.apply_xor(all_bdds[f_node], all_bdds[g_node])
    print("\nAlg. 1 by hand on the (f, g) pair:")
    print(f"  BDD(f) size            = {manager.size(all_bdds[f_node])}")
    print(f"  BDD(g) size            = {manager.size(all_bdds[g_node])}")
    print(f"  BDD(∂f/∂g) = BDD(f⊕g)  size = {manager.size(diff)}  "
          f"(filter: ≤ {BooleanDifferenceConfig().bdd_size_limit})")
    print(f"  MFFC(f) to reclaim     = {aig.mffc_size(f_node)}")

    # Now let the engine do it end to end.
    reference = aig.cleanup()
    stats = boolean_difference_pass(aig)
    after = aig.cleanup()
    print("\nEngine result (Alg. 2):")
    print(f"  pairs tried   = {stats.pairs_tried}")
    print(f"  rewrites      = {stats.rewrites}")
    print(f"  size          = {reference.num_ands} -> {after.num_ands}")
    ok, _ = check_equivalence(reference, after)
    print(f"  verified      = {ok}")
    assert ok


if __name__ == "__main__":
    main()
