"""Tests for ASCII AIGER reading/writing."""

import io

import pytest

from repro.aig.aig import Aig, lit_not
from repro.aig.io_aiger import read_aag, write_aag, write_aag_string
from repro.aig.simulate import po_tables
from repro.errors import AigError


def test_round_trip_function(random_aig_factory):
    for seed in range(4):
        aig = random_aig_factory(6, 50, seed=seed)
        text = write_aag_string(aig)
        back = read_aag(text)
        assert back.num_pis == aig.num_pis
        assert back.num_pos == aig.num_pos
        assert po_tables(back) == po_tables(aig)


def test_round_trip_names():
    aig = Aig()
    a = aig.add_pi("data_in")
    aig.add_po(lit_not(a), "data_out")
    back = read_aag(write_aag_string(aig))
    assert back.pi_name(0) == "data_in"
    assert back.po_name(0) == "data_out"


def test_write_to_file(tmp_path, random_aig_factory):
    aig = random_aig_factory(4, 20, seed=1)
    path = str(tmp_path / "net.aag")
    write_aag(aig, path)
    back = read_aag(path)
    assert po_tables(back) == po_tables(aig)


def test_constant_po():
    aig = Aig()
    aig.add_pi()
    aig.add_po(0, "zero")
    aig.add_po(1, "one")
    back = read_aag(write_aag_string(aig))
    assert back.pos() == [0, 1]


def test_header_with_known_example():
    # Half adder in AIGER: s = a^b needs 3 ANDs, c = a&b reuses one
    text = """aag 5 2 0 2 3
2
4
10
6
6 2 4
8 3 5
10 9 7
"""
    aig = read_aag(text)
    assert aig.num_pis == 2
    assert aig.num_ands == 3
    tables = po_tables(aig)
    assert tables[0] == 0b0110  # xor
    assert tables[1] == 0b1000  # and


def test_rejects_sequential():
    with pytest.raises(AigError):
        read_aag("aag 1 0 1 0 0\n")


def test_rejects_garbage_header():
    with pytest.raises(AigError):
        read_aag(io.StringIO("not an aiger file\n"))
