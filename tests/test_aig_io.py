"""Tests for ASCII AIGER reading/writing."""

import io

import pytest

from repro.aig.aig import Aig, lit_not
from repro.aig.io_aiger import read_aag, write_aag, write_aag_string
from repro.aig.simulate import po_tables
from repro.errors import AigError


def test_round_trip_function(random_aig_factory):
    for seed in range(4):
        aig = random_aig_factory(6, 50, seed=seed)
        text = write_aag_string(aig)
        back = read_aag(text)
        assert back.num_pis == aig.num_pis
        assert back.num_pos == aig.num_pos
        assert po_tables(back) == po_tables(aig)


def test_round_trip_names():
    aig = Aig()
    a = aig.add_pi("data_in")
    aig.add_po(lit_not(a), "data_out")
    back = read_aag(write_aag_string(aig))
    assert back.pi_name(0) == "data_in"
    assert back.po_name(0) == "data_out"


def test_write_to_file(tmp_path, random_aig_factory):
    aig = random_aig_factory(4, 20, seed=1)
    path = str(tmp_path / "net.aag")
    write_aag(aig, path)
    back = read_aag(path)
    assert po_tables(back) == po_tables(aig)


def test_constant_po():
    aig = Aig()
    aig.add_pi()
    aig.add_po(0, "zero")
    aig.add_po(1, "one")
    back = read_aag(write_aag_string(aig))
    assert back.pos() == [0, 1]


def test_header_with_known_example():
    # Half adder in AIGER: s = a^b needs 3 ANDs, c = a&b reuses one
    text = """aag 5 2 0 2 3
2
4
10
6
6 2 4
8 3 5
10 9 7
"""
    aig = read_aag(text)
    assert aig.num_pis == 2
    assert aig.num_ands == 3
    tables = po_tables(aig)
    assert tables[0] == 0b0110  # xor
    assert tables[1] == 0b1000  # and


def test_rejects_sequential():
    with pytest.raises(AigError):
        read_aag("aag 1 0 1 0 0\n")


def test_rejects_garbage_header():
    with pytest.raises(AigError):
        read_aag(io.StringIO("not an aiger file\n"))


class TestMalformedAscii:
    """Every malformed input raises AigerParseError naming its line."""

    CASES = {
        "non_integer_header": "aag x 1 0 1 1\n",
        "negative_count": "aag 1 -1 0 0 0\n",
        "sequential": "aag 1 0 1 0 0\n",
        "truncated_inputs": "aag 1 1 0 0 0\n",
        "blank_where_input": "aag 1 1 0 0 0\n\n",
        "complemented_input": "aag 1 1 0 0 0\n3\n",
        "duplicate_input": "aag 2 2 0 0 0\n2\n2\n",
        "input_out_of_range": "aag 1 1 0 0 0\n9\n",
        "and_arity": "aag 2 1 0 0 1\n2\n4 2\n",
        "complemented_and_lhs": "aag 2 1 0 0 1\n2\n5 2 2\n",
        "and_redefines_input": "aag 2 1 0 0 1\n2\n2 0 0\n",
        "output_use_before_def": "aag 2 1 0 1 0\n2\n4\n",
        "symbol_index_range": "aag 1 1 0 1 0\n2\n2\ni5 foo\n",
    }

    @pytest.mark.parametrize("label", sorted(CASES))
    def test_rejected_with_location(self, label):
        from repro.errors import AigerParseError
        with pytest.raises(AigerParseError) as info:
            read_aag(self.CASES[label])
        assert isinstance(info.value, AigError)

    def test_error_names_the_line(self):
        from repro.errors import AigerParseError
        with pytest.raises(AigerParseError) as info:
            read_aag("aag 2 1 0 1 1\n2\n4\n4 9 9\n")
        assert info.value.line == 4
        assert "line 4" in str(info.value)

    def test_never_leaks_bare_value_error(self):
        # A malformed file must raise AigerParseError, never ValueError
        # or IndexError from the parsing internals.
        for text in self.CASES.values():
            try:
                read_aag(text)
            except AigError:
                pass
