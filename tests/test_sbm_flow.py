"""Tests for the integrated SBM Boolean resynthesis flow (Section V-A)."""


from repro.sat.equivalence import assert_equivalent
from repro.sbm.config import FlowConfig
from repro.sbm.flow import sbm_flow


def test_flow_preserves_function_and_reduces(small_mult):
    optimized, stats = sbm_flow(small_mult, FlowConfig(iterations=1))
    assert_equivalent(small_mult, optimized)
    assert optimized.num_ands <= small_mult.num_ands


def test_flow_on_random_logic(random_aig_factory):
    aig = random_aig_factory(10, 200, seed=0)
    optimized, stats = sbm_flow(aig, FlowConfig(iterations=1))
    assert_equivalent(aig, optimized)
    assert optimized.num_ands < aig.num_ands


def test_input_not_modified(small_mult):
    size = small_mult.num_ands
    sbm_flow(small_mult, FlowConfig(iterations=1))
    assert small_mult.num_ands == size


def test_stage_checkpoints_recorded(random_aig_factory):
    aig = random_aig_factory(8, 120, seed=1)
    _optimized, stats = sbm_flow(aig, FlowConfig(iterations=1))
    names = [record.name for record in stats.records]
    assert names[0] == "initial"
    assert names[-1] == "final"
    assert any("gradient" in n for n in names)
    assert any("mspf" in n for n in names)
    assert any("boolean_diff" in n for n in names)
    assert any("kernel" in n for n in names)
    assert stats.runtime_s > 0
    assert any(r.elapsed_s > 0 for r in stats.records)
    assert sum(r.elapsed_s for r in stats.records) <= stats.runtime_s


def test_two_iterations_not_worse_than_one(random_aig_factory):
    aig = random_aig_factory(10, 180, seed=2)
    one, _s1 = sbm_flow(aig, FlowConfig(iterations=1))
    two, _s2 = sbm_flow(aig, FlowConfig(iterations=2))
    assert two.num_ands <= one.num_ands
    assert_equivalent(aig, two)


def test_verify_each_step_mode(random_aig_factory):
    aig = random_aig_factory(8, 100, seed=3)
    optimized, _stats = sbm_flow(aig, FlowConfig(iterations=1,
                                                 verify_each_step=True))
    assert_equivalent(aig, optimized)


def test_redundancy_removal_stage(random_aig_factory):
    aig = random_aig_factory(8, 80, seed=4)
    config = FlowConfig(iterations=1, enable_redundancy_removal=True)
    optimized, stats = sbm_flow(aig, config)
    assert_equivalent(aig, optimized)
    assert any("redundancy" in r.name for r in stats.records)
