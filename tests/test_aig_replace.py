"""Tests for the in-place ``replace`` editing primitive.

These include regression tests for two subtle garbage-collection bugs found
during development: a queued cascade-merge target being collected before
processing, and a strash-merge literal being collected by the dereference
cascade inside the fanin patch.
"""

import random

import pytest

from repro.aig.aig import (
    CONST0,
    Aig,
    lit,
    lit_is_compl,
    lit_node,
    lit_not,
    lit_notcond,
)
from repro.aig.simulate import po_tables
from repro.errors import AigError


def test_replace_with_equal_function_preserves_outputs():
    aig = Aig()
    a, b, c = aig.add_pis(3)
    ab = aig.add_and(a, b)
    ac = aig.add_and(a, c)
    f = aig.add_or(ab, ac)
    aig.add_po(f)
    before = po_tables(aig)
    # a&(b|c) equals ab|ac; build and splice it (watch the phase: the OR
    # literal is complemented with respect to its underlying AND node)
    alt = aig.add_and(a, aig.add_or(b, c))
    aig.replace(lit_node(f), lit_notcond(alt, lit_is_compl(f)))
    aig.check()
    assert po_tables(aig) == before


def test_replace_simplification_cascade():
    aig = Aig()
    a, b, c = aig.add_pis(3)
    ab = aig.add_and(a, b)
    ac = aig.add_and(a, c)
    f = aig.add_or(ab, ac)
    aig.add_po(f)
    # replacing ac by ab turns the OR into a copy of ab
    aig.replace(lit_node(ac), ab)
    aig.check()
    assert aig.num_ands == 1
    assert aig.pos()[0] == ab


def test_replace_with_constant_propagates_to_po():
    aig = Aig()
    a, b = aig.add_pis(2)
    n1 = aig.add_and(a, b)
    n2 = aig.add_and(n1, lit_not(a))
    aig.add_po(n2)
    aig.replace(lit_node(n1), CONST0)
    aig.check()
    assert aig.pos()[0] == CONST0
    assert aig.num_ands == 0


def test_replace_merges_structural_duplicates():
    aig = Aig()
    a, b, c = aig.add_pis(3)
    x = aig.add_and(a, b)
    y = aig.add_and(a, c)
    top1 = aig.add_and(x, c)
    top2 = aig.add_and(y, c)
    aig.add_po(top1)
    aig.add_po(top2)
    # replacing y by x rewrites top2 into x & c, which strash-merges it
    # with top1 (the cascade path of replace)
    aig.replace(lit_node(y), x)
    aig.check()
    assert aig.pos()[0] == aig.pos()[1]
    assert aig.num_ands == 2  # x and the merged top


def test_replace_rejects_self():
    aig = Aig()
    a, b = aig.add_pis(2)
    f = aig.add_and(a, b)
    aig.add_po(f)
    with pytest.raises(AigError):
        aig.replace(lit_node(f), f)


def test_replace_dead_node_rejected():
    aig = Aig()
    a, b = aig.add_pis(2)
    f = aig.add_and(a, b)
    aig.add_po(f)
    aig.replace(lit_node(f), a)
    with pytest.raises(AigError):
        aig.replace(lit_node(f), b)


def test_replace_updates_complemented_po():
    aig = Aig()
    a, b = aig.add_pis(2)
    f = aig.add_and(a, b)
    aig.add_po(lit_not(f))
    aig.replace(lit_node(f), a)
    assert aig.pos()[0] == lit_not(a)


def test_protect_keeps_dangling_logic_alive():
    aig = Aig()
    a, b, c = aig.add_pis(3)
    f = aig.add_and(a, b)
    aig.add_po(f)
    pending = aig.add_and(aig.add_and(a, c), b)
    aig.protect(pending)
    aig.replace(lit_node(f), aig.add_and(a, c))
    assert not aig.is_dead(lit_node(pending))
    aig.unprotect(pending)
    aig.check()


def test_random_replace_sequences_keep_invariants(random_aig_factory):
    """Regression net for the cascade-collection bugs: random replacements
    of nodes by functionally arbitrary literals must never corrupt
    refcounts, strash, or leave dead fanins (function changes are fine —
    only structural integrity is asserted here)."""
    rng = random.Random(99)
    for seed in range(8):
        aig = random_aig_factory(8, 120, seed=seed)
        for _ in range(25):
            live = [n for n in aig.ands()]
            if len(live) < 3:
                break
            target = rng.choice(live)
            # pick a replacement that cannot create a cycle: a node from
            # the target's own transitive fanin
            from repro.aig.traversal import transitive_fanin
            cone = [n for n in transitive_fanin(aig, [target])
                    if n != target]
            repl_node = rng.choice(cone)
            aig.replace(target, lit(repl_node, rng.random() < 0.5))
            aig.check()


def test_replace_preserves_function_when_equivalent(random_aig_factory):
    """Replacing nodes with SAT-proven equivalents keeps the global
    function (the contract every optimization engine relies on)."""
    from repro.sat.cnf import AigCnf, prove_equivalent
    rng = random.Random(5)
    aig = random_aig_factory(6, 80, seed=7)
    reference = po_tables(aig)
    cnf = AigCnf(aig)
    nodes = list(aig.ands())
    merged = 0
    for i, n in enumerate(nodes):
        if aig.is_dead(n):
            continue
        for m in nodes[i + 1:]:
            if aig.is_dead(m) or aig.is_dead(n):
                continue
            eq, _ = prove_equivalent(cnf, lit(n), lit(m))
            if eq:
                from repro.aig.traversal import transitive_fanin
                if m in transitive_fanin(aig, [n]):
                    continue
                aig.replace(m, lit(n))
                merged += 1
                break
        if merged >= 3:
            break
    aig.check()
    assert po_tables(aig) == reference
