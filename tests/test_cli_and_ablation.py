"""Tests for the CLI entry point and the ablation API."""


from repro.__main__ import main as cli_main
from repro.experiments.ablation import (
    AblationPoint,
    ablate_bdd_reordering,
    ablate_mspf_engine,
    ablate_xor_cost,
    format_points,
)


class TestCli:
    def test_no_args_prints_usage(self, capsys):
        assert cli_main([]) == 1
        assert "Commands" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert cli_main(["frobnicate"]) == 1

    def test_bench_command(self, capsys):
        assert cli_main(["bench", "router"]) == 0
        out = capsys.readouterr().out
        assert "router" in out and "ands" in out

    def test_fig1_command(self, capsys):
        assert cli_main(["fig1"]) == 0
        assert "Boolean difference example" in capsys.readouterr().out

    def test_optimize_command(self, tmp_path, capsys, random_aig_factory):
        from repro.aig.io_aiger import read_aag, write_aag
        from repro.sat.equivalence import assert_equivalent
        aig = random_aig_factory(6, 60, seed=1)
        src = str(tmp_path / "in.aag")
        dst = str(tmp_path / "out.aag")
        write_aag(aig, src)
        assert cli_main(["optimize", src, dst]) == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert_equivalent(aig, read_aag(dst))


class TestAblationApi:
    def test_xor_cost_points_structured(self):
        points = ablate_xor_cost("router", costs=(0, 6))
        assert len(points) == 2
        for p in points:
            assert isinstance(p, AblationPoint)
            assert p.size_after > 0
            assert p.runtime_s >= 0

    def test_reorder_points(self):
        points = ablate_bdd_reordering("router")
        labels = {p.label for p in points}
        assert any("paper" in l for l in labels)
        assert any("sifting" in l for l in labels)
        off = next(p for p in points if "paper" in p.label)
        on = next(p for p in points if "sifting" in p.label)
        assert on.extra["bdd_nodes"] <= off.extra["bdd_nodes"]

    def test_mspf_engine_points(self):
        points = ablate_mspf_engine("router")
        tt = next(p for p in points if "truth-table" in p.label)
        bdd = next(p for p in points if "BDD" in p.label)
        assert bdd.extra["processed"] >= tt.extra["processed"]

    def test_format_points(self):
        text = format_points("T", [AblationPoint("x", 5, 0.1)])
        assert "T" in text and "x" in text
