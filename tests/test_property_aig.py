"""Property-based tests (hypothesis) for the AIG and its optimizers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aig import Aig, lit_node
from repro.aig.simulate import po_tables
from repro.opt.balance import balance
from repro.opt.resub import resub
from repro.opt.rewrite import rewrite


def aig_strategy(max_pis=6, max_nodes=60):
    return st.tuples(
        st.integers(min_value=2, max_value=max_pis),
        st.integers(min_value=5, max_value=max_nodes),
        st.randoms(use_true_random=False),
    )


def build_random(num_pis, num_nodes, rng):
    aig = Aig()
    literals = aig.add_pis(num_pis)
    for _ in range(num_nodes):
        a = rng.choice(literals) ^ rng.getrandbits(1)
        b = rng.choice(literals) ^ rng.getrandbits(1)
        literals.append(aig.add_and(a, b))
    for literal in literals[-4:]:
        aig.add_po(literal)
    return aig.cleanup()


@given(aig_strategy())
@settings(max_examples=25, deadline=None)
def test_strash_never_duplicates(spec):
    num_pis, num_nodes, rng = spec
    aig = build_random(num_pis, num_nodes, rng)
    seen = set()
    for n in aig.ands():
        key = aig.fanins(n)
        assert key not in seen
        seen.add(key)


@given(aig_strategy())
@settings(max_examples=25, deadline=None)
def test_invariants_after_construction(spec):
    num_pis, num_nodes, rng = spec
    aig = build_random(num_pis, num_nodes, rng)
    aig.check()


@given(aig_strategy())
@settings(max_examples=15, deadline=None)
def test_balance_function_size_depth(spec):
    num_pis, num_nodes, rng = spec
    aig = build_random(num_pis, num_nodes, rng)
    balanced = balance(aig)
    assert po_tables(balanced) == po_tables(aig)
    assert balanced.num_ands <= aig.num_ands
    assert balanced.depth <= aig.depth


@given(aig_strategy())
@settings(max_examples=10, deadline=None)
def test_rewrite_invariant(spec):
    num_pis, num_nodes, rng = spec
    aig = build_random(num_pis, num_nodes, rng)
    before_tables = po_tables(aig)
    before_size = aig.num_ands
    rewrite(aig)
    aig.check()
    assert po_tables(aig) == before_tables
    assert aig.cleanup().num_ands <= before_size


@given(aig_strategy())
@settings(max_examples=10, deadline=None)
def test_resub_invariant(spec):
    num_pis, num_nodes, rng = spec
    aig = build_random(num_pis, num_nodes, rng)
    before_tables = po_tables(aig)
    before_size = aig.num_ands
    resub(aig)
    aig.check()
    assert po_tables(aig) == before_tables
    assert aig.cleanup().num_ands <= before_size


@given(aig_strategy())
@settings(max_examples=15, deadline=None)
def test_aag_round_trip(spec):
    from repro.aig.io_aiger import read_aag, write_aag_string
    num_pis, num_nodes, rng = spec
    aig = build_random(num_pis, num_nodes, rng)
    back = read_aag(write_aag_string(aig))
    assert po_tables(back) == po_tables(aig)


@given(aig_strategy())
@settings(max_examples=10, deadline=None)
def test_random_equivalent_replace_preserves_function(spec):
    """Replacing a node by a re-built copy of its own cone is a no-op
    functionally, whatever the strash table does structurally."""
    num_pis, num_nodes, rng = spec
    aig = build_random(num_pis, num_nodes, rng)
    tables = po_tables(aig)
    nodes = list(aig.ands())
    for _ in range(3):
        if not nodes:
            break
        target = rng.choice(nodes)
        if aig.is_dead(target):
            continue
        f0, f1 = aig.fanins(target)
        rebuilt = aig.add_and(f0, f1)  # strashes straight back
        if lit_node(rebuilt) != target:
            aig.replace(target, rebuilt)
            aig.check()
    assert po_tables(aig) == tables
