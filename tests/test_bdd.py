"""Tests for the BDD manager, cross-checked against truth tables."""

import random

import pytest

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddLimitError
from repro.tt.truthtable import TruthTable


def build_from_table(mgr: BddManager, table: TruthTable) -> int:
    """Shannon-expand a truth table into the manager."""
    def rec(t, var):
        if t.is_const0():
            return FALSE
        if t.is_const1():
            return TRUE
        lo = rec(t.cofactor(var, False), var + 1)
        hi = rec(t.cofactor(var, True), var + 1)
        return mgr.ite(mgr.var(var), hi, lo)
    return rec(table, 0)


class TestBasics:
    def test_terminals(self):
        mgr = BddManager(2)
        assert mgr.is_terminal(FALSE)
        assert mgr.is_terminal(TRUE)
        assert not mgr.is_terminal(mgr.var(0))

    def test_var_structure(self):
        mgr = BddManager(2)
        x = mgr.var(0)
        assert mgr.var_of(x) == 0
        assert mgr.low(x) == FALSE
        assert mgr.high(x) == TRUE

    def test_nvar(self):
        mgr = BddManager(1)
        nx = mgr.nvar(0)
        assert nx == mgr.negate(mgr.var(0))

    def test_reduction_rule(self):
        mgr = BddManager(2)
        # ite(x, y, y) must not create a node
        y = mgr.var(1)
        assert mgr.ite(mgr.var(0), y, y) == y


class TestCanonicity:
    def test_same_function_same_node(self):
        rng = random.Random(0)
        for _ in range(40):
            n = rng.randint(1, 5)
            mgr = BddManager(n)
            t = TruthTable(rng.getrandbits(1 << n), n)
            assert build_from_table(mgr, t) == build_from_table(mgr, t)

    def test_different_functions_different_nodes(self):
        mgr = BddManager(2)
        a, b = mgr.var(0), mgr.var(1)
        assert mgr.apply_and(a, b) != mgr.apply_or(a, b)


class TestOperations:
    def test_ops_match_truth_tables(self):
        rng = random.Random(1)
        for _ in range(50):
            n = rng.randint(1, 5)
            mgr = BddManager(n)
            t1 = TruthTable(rng.getrandbits(1 << n), n)
            t2 = TruthTable(rng.getrandbits(1 << n), n)
            b1 = build_from_table(mgr, t1)
            b2 = build_from_table(mgr, t2)
            assert mgr.to_truth_bits(mgr.apply_and(b1, b2), n) == (t1 & t2).bits
            assert mgr.to_truth_bits(mgr.apply_or(b1, b2), n) == (t1 | t2).bits
            assert mgr.to_truth_bits(mgr.apply_xor(b1, b2), n) == (t1 ^ t2).bits
            assert mgr.to_truth_bits(mgr.apply_xnor(b1, b2), n) == (~(t1 ^ t2)).bits
            assert mgr.to_truth_bits(mgr.negate(b1), n) == (~t1).bits

    def test_cofactor_and_quantify(self):
        rng = random.Random(2)
        for _ in range(40):
            n = rng.randint(2, 5)
            mgr = BddManager(n)
            t = TruthTable(rng.getrandbits(1 << n), n)
            b = build_from_table(mgr, t)
            v = rng.randrange(n)
            assert mgr.to_truth_bits(mgr.cofactor(b, v, True), n) == \
                t.cofactor(v, True).bits
            assert mgr.to_truth_bits(mgr.exists(b, [v]), n) == t.exists(v).bits
            assert mgr.to_truth_bits(mgr.forall(b, [v]), n) == t.forall(v).bits

    def test_compose(self):
        mgr = BddManager(3)
        a, b, c = mgr.var(0), mgr.var(1), mgr.var(2)
        f = mgr.apply_and(a, b)
        # substitute b := c  ->  a & c
        assert mgr.compose(f, 1, c) == mgr.apply_and(a, c)

    def test_multi_ops_short_circuit(self):
        mgr = BddManager(3)
        assert mgr.and_multi([mgr.var(0), FALSE, mgr.var(1)]) == FALSE
        assert mgr.or_multi([mgr.var(0), TRUE]) == TRUE


class TestQueries:
    def test_size_support_satcount(self):
        rng = random.Random(3)
        for _ in range(40):
            n = rng.randint(1, 5)
            mgr = BddManager(n)
            t = TruthTable(rng.getrandbits(1 << n), n)
            b = build_from_table(mgr, t)
            assert mgr.satcount(b, n) == t.count_ones()
            assert mgr.support(b) == t.support()
            if b <= 1:
                assert mgr.size(b) == 0
            else:
                assert mgr.size(b) >= 1

    def test_pick_cube_satisfies(self):
        rng = random.Random(4)
        for _ in range(30):
            n = rng.randint(1, 5)
            mgr = BddManager(n)
            bits = rng.getrandbits(1 << n)
            if bits == 0:
                continue
            b = build_from_table(mgr, TruthTable(bits, n))
            cube = mgr.pick_cube(b)
            assignment = [cube.get(i, False) for i in range(n)]
            assert mgr.eval(b, assignment)

    def test_pick_cube_unsat(self):
        mgr = BddManager(2)
        assert mgr.pick_cube(FALSE) is None


class TestNodeLimit:
    def test_limit_raises(self):
        mgr = BddManager(12, node_limit=20)
        with pytest.raises(BddLimitError):
            acc = TRUE
            for i in range(0, 12, 2):
                acc = mgr.apply_and(acc,
                                    mgr.apply_xor(mgr.var(i), mgr.var(i + 1)))

    def test_limit_allows_small_functions(self):
        mgr = BddManager(4, node_limit=50)
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.size(f) == 2

    def test_clear_caches_keeps_functions(self):
        mgr = BddManager(3)
        f = mgr.apply_xor(mgr.var(0), mgr.var(1))
        mgr.clear_caches()
        # same function is still canonical after cache clear
        assert mgr.apply_xor(mgr.var(0), mgr.var(1)) == f
